//! Property-based tests for the energy models.

use energy::{DacEnergyModel, KambleGhoseModel, SramPart};
use memsim::CacheConfig;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    (2u32..8, 2u32..6, 0u32..4).prop_filter_map("valid geometry", |(ts, ls, ss)| {
        let t = 1usize << (ts + 3);
        let l = 1usize << ls;
        let s = 1usize << ss;
        CacheConfig::new(t, l, s).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn miss_energy_strictly_exceeds_hit_energy(cfg in arb_geometry(), em in 0.1f64..50.0) {
        let m = DacEnergyModel::new(SramPart::custom("sweep", em));
        prop_assert!(m.miss_energy_nj(&cfg, 1.0) > m.hit_energy_nj(&cfg, 1.0));
    }

    #[test]
    fn energy_is_monotone_in_em(cfg in arb_geometry(), em in 0.1f64..40.0) {
        let lo = DacEnergyModel::new(SramPart::custom("lo", em));
        let hi = DacEnergyModel::new(SramPart::custom("hi", em * 2.0));
        prop_assert!(hi.miss_energy_nj(&cfg, 1.0) > lo.miss_energy_nj(&cfg, 1.0));
        // Hit energy does not involve the off-chip part at all.
        prop_assert_eq!(hi.hit_energy_nj(&cfg, 1.0), lo.hit_energy_nj(&cfg, 1.0));
    }

    #[test]
    fn access_energy_is_bounded_by_hit_and_miss(
        cfg in arb_geometry(),
        hit_rate in 0.0f64..=1.0,
        add_bs in 0.0f64..8.0,
    ) {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let e = m.access_energy_nj(&cfg, hit_rate, add_bs);
        let e_hit = m.hit_energy_nj(&cfg, add_bs);
        let e_miss = m.miss_energy_nj(&cfg, add_bs);
        prop_assert!(e >= e_hit - 1e-12 && e <= e_miss + 1e-12);
    }

    #[test]
    fn access_energy_is_monotone_decreasing_in_hit_rate(
        cfg in arb_geometry(),
        hr in 0.0f64..0.9,
    ) {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        prop_assert!(
            m.access_energy_nj(&cfg, hr + 0.1, 1.0) < m.access_energy_nj(&cfg, hr, 1.0)
        );
    }

    #[test]
    fn breakdown_components_sum_to_the_total(cfg in arb_geometry(), add_bs in 0.0f64..8.0) {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let b = m.miss_breakdown(&cfg, add_bs);
        let total = b.dec_nj + b.cell_nj + b.io_nj + b.main_nj;
        prop_assert!((total - b.total_nj()).abs() < 1e-12);
        prop_assert!((b.total_nj() - m.miss_energy_nj(&cfg, add_bs)).abs() < 1e-12);
    }

    #[test]
    fn cell_energy_depends_only_on_capacity(cfg in arb_geometry()) {
        // The paper's E_cell = β·8·T is organisation-invariant: any line
        // size / associativity split of the same capacity gives the same
        // cell energy.
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let reference = m.hit_breakdown(&cfg, 0.0).cell_nj;
        let other = CacheConfig::new(cfg.size(), cfg.size().min(cfg.line() * 2), 1);
        if let Ok(other) = other {
            prop_assert!((m.hit_breakdown(&other, 0.0).cell_nj - reference).abs() < 1e-12);
        }
    }

    #[test]
    fn kamble_ghose_miss_also_exceeds_hit(cfg in arb_geometry()) {
        let m = KambleGhoseModel::new(SramPart::cy7c_2mbit());
        prop_assert!(m.miss_energy_nj(&cfg) > m.hit_energy_nj(&cfg));
    }

    #[test]
    fn both_models_grow_hit_energy_with_capacity(ls in 2u32..5) {
        let l = 1usize << ls;
        let dac = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let kg = KambleGhoseModel::new(SramPart::cy7c_2mbit());
        let mut prev_dac = 0.0;
        let mut prev_kg = 0.0;
        for ts in 0..5 {
            let t = (l * 4) << ts;
            let cfg = CacheConfig::new(t, l, 1).expect("valid");
            let e_dac = dac.hit_energy_nj(&cfg, 0.0);
            let e_kg = kg.hit_energy_nj(&cfg);
            prop_assert!(e_dac > prev_dac);
            prop_assert!(e_kg > prev_kg);
            prev_dac = e_dac;
            prev_kg = e_kg;
        }
    }
}
