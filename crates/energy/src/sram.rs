//! Off-chip SRAM part models.
//!
//! The exploration only needs one number from the datasheet — the energy per
//! access `Em` — but the part descriptor keeps the other headline figures so
//! reports stay self-describing. The three parts below are the ones the
//! paper studies (its Figs. 1, 2–4, 6–10).

use std::fmt;

/// An off-chip SRAM device characterised by its energy per access.
#[derive(Clone, PartialEq, Debug)]
pub struct SramPart {
    /// Device name, e.g. `"Cypress CY7C (2 Mbit)"`.
    pub name: String,
    /// Capacity in bits.
    pub capacity_bits: u64,
    /// Access time in nanoseconds.
    pub access_time_ns: f64,
    /// Supply voltage in volts.
    pub voltage_v: f64,
    /// Energy per access in nanojoules — the model's `Em`.
    pub energy_per_access_nj: f64,
}

impl SramPart {
    /// The paper's reference part: Cypress CY7C 2 Mbit, 4 ns, 3.3 V,
    /// 375 mA — `Em = 4.95 nJ` per access (§2.3).
    pub fn cy7c_2mbit() -> Self {
        SramPart {
            name: "Cypress CY7C (2 Mbit)".to_string(),
            capacity_bits: 2 * 1024 * 1024,
            access_time_ns: 4.0,
            voltage_v: 3.3,
            energy_per_access_nj: 4.95,
        }
    }

    /// The low-energy end of the paper's spectrum: a 2 Mbit SRAM with
    /// `Em = 2.31 nJ` (§3, Fig. 1 right).
    pub fn low_power_2mbit() -> Self {
        SramPart {
            name: "low-power SRAM (2 Mbit)".to_string(),
            capacity_bits: 2 * 1024 * 1024,
            access_time_ns: 4.0,
            voltage_v: 3.3,
            energy_per_access_nj: 2.31,
        }
    }

    /// The high-energy end: a 16 Mbit SRAM with `Em = 43.56 nJ`
    /// (§3, Fig. 1 left).
    pub fn sram_16mbit() -> Self {
        SramPart {
            name: "SRAM (16 Mbit)".to_string(),
            capacity_bits: 16 * 1024 * 1024,
            access_time_ns: 8.0,
            voltage_v: 3.3,
            energy_per_access_nj: 43.56,
        }
    }

    /// A custom part with only `Em` specified (other fields defaulted),
    /// for parameter sweeps over the off-chip energy.
    pub fn custom(name: impl Into<String>, energy_per_access_nj: f64) -> Self {
        assert!(
            energy_per_access_nj >= 0.0,
            "energy per access must be non-negative"
        );
        SramPart {
            name: name.into(),
            capacity_bits: 0,
            access_time_ns: 0.0,
            voltage_v: 0.0,
            energy_per_access_nj,
        }
    }

    /// The three parts the paper evaluates, low to high `Em`.
    pub fn paper_parts() -> Vec<SramPart> {
        vec![
            SramPart::low_power_2mbit(),
            SramPart::cy7c_2mbit(),
            SramPart::sram_16mbit(),
        ]
    }
}

impl fmt::Display for SramPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Em = {} nJ)", self.name, self.energy_per_access_nj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_em_values_match_the_text() {
        assert_eq!(SramPart::cy7c_2mbit().energy_per_access_nj, 4.95);
        assert_eq!(SramPart::low_power_2mbit().energy_per_access_nj, 2.31);
        assert_eq!(SramPart::sram_16mbit().energy_per_access_nj, 43.56);
    }

    #[test]
    fn paper_parts_sorted_by_em() {
        let parts = SramPart::paper_parts();
        assert!(parts
            .windows(2)
            .all(|w| w[0].energy_per_access_nj < w[1].energy_per_access_nj));
    }

    #[test]
    fn custom_part_carries_its_em() {
        let p = SramPart::custom("test", 10.0);
        assert_eq!(p.energy_per_access_nj, 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_em_panics() {
        let _ = SramPart::custom("bad", -1.0);
    }

    #[test]
    fn display_shows_em() {
        assert!(format!("{}", SramPart::cy7c_2mbit()).contains("4.95"));
    }
}
