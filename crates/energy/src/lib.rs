//! Cache and off-chip memory energy models.
//!
//! Implements the energy model of Shiue & Chakrabarti (DAC'99 §2.3) — a
//! rectified version of the Hicks/Walnock/Owens model, itself an extension
//! of Su & Despain — plus a Kamble–Ghose-style analytical alternative used
//! for ablation studies.
//!
//! The paper's model charges, per **read** access (reads dominate processor
//! cache accesses):
//!
//! ```text
//! Energy      = hit_rate · Energy_hit + miss_rate · Energy_miss
//! Energy_hit  = E_dec + E_cell
//! Energy_miss = E_dec + E_cell + E_io + E_main
//! E_dec  = α · Add_bs
//! E_cell = β · word_line_size · bit_line_size
//! E_io   = γ · (Data_bs · L + Add_bs)
//! E_main = γ · (Data_bs · L) + Em · L
//! ```
//!
//! with α = 0.001, β = 2, γ = 20 for 0.8 µm CMOS, Gray-coded address buses
//! (`Add_bs` = average bit switches per access), and `Em` the off-chip SRAM
//! energy per access.
//!
//! **Units.** The raw coefficients yield picojoules when `word_line_size` /
//! `bit_line_size` are counted in bit cells and `Em` is converted to pJ;
//! this calibration reproduces the paper's reported totals (e.g. ≈8.8 µJ for
//! Compress at C64L8, Fig. 9). All public APIs return nanojoules.
//!
//! # Example
//!
//! ```
//! use energy::{DacEnergyModel, SramPart};
//! use memsim::CacheConfig;
//!
//! let model = DacEnergyModel::new(SramPart::cy7c_2mbit()); // Em = 4.95 nJ
//! let cfg = CacheConfig::new(64, 8, 1)?;
//! let hit = model.hit_energy_nj(&cfg, 1.0);
//! let miss = model.miss_energy_nj(&cfg, 1.0);
//! assert!(miss > 30.0 * hit); // off-chip access dominates
//! # Ok::<(), memsim::ConfigError>(())
//! ```

pub mod kamble_ghose;
pub mod model;
pub mod sram;

pub use kamble_ghose::KambleGhoseModel;
pub use model::{CacheGeometry, DacEnergyModel, EnergyBreakdown, EnergyParams};
pub use sram::SramPart;
