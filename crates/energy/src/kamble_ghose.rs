//! A Kamble–Ghose-style analytical cache energy model.
//!
//! Kamble & Ghose (ISLPED'97) — the paper's reference \[3\] — model cache
//! power from first principles: bit-line precharge/discharge, word-line
//! drive, address decoding, tag comparison, and output drivers, with
//! capacitances from Wilton & Jouppi's 0.8 µm measurements. The DAC'99
//! paper deliberately simplifies this to the four-term model in
//! [`DacEnergyModel`](crate::DacEnergyModel); we keep a faithful-in-shape
//! Kamble–Ghose variant as an *ablation* model to check that configuration
//! rankings are robust to the energy-model choice.
//!
//! The capacitance constants below are representative 0.8 µm values (order
//! of magnitude from Wilton & Jouppi TR 93/5); the model is for relative
//! comparison, not absolute calibration.

use crate::sram::SramPart;
use memsim::{CacheConfig, SimReport};

/// Per-structure capacitance coefficients (picofarads) and supply voltage.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KambleGhoseParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Bit-line capacitance per cell attached (pF).
    pub c_bit_per_cell: f64,
    /// Word-line capacitance per cell gate (pF).
    pub c_word_per_cell: f64,
    /// Address input / decoder capacitance per address bit (pF).
    pub c_addr_per_bit: f64,
    /// Output driver capacitance per data bit (pF).
    pub c_out_per_bit: f64,
    /// Tag comparator capacitance per tag bit per way (pF).
    pub c_cmp_per_bit: f64,
    /// Tag width assumed for comparators (bits).
    pub tag_bits: u32,
}

impl Default for KambleGhoseParams {
    fn default() -> Self {
        KambleGhoseParams {
            vdd: 3.3,
            c_bit_per_cell: 0.0005,
            c_word_per_cell: 0.0003,
            c_addr_per_bit: 0.05,
            c_out_per_bit: 0.1,
            c_cmp_per_bit: 0.02,
            tag_bits: 24,
        }
    }
}

/// The ablation energy model. Same interface shape as
/// [`DacEnergyModel`](crate::DacEnergyModel): per-access hit/miss energies
/// in nanojoules plus a whole-trace accumulator.
#[derive(Clone, PartialEq, Debug)]
pub struct KambleGhoseModel {
    /// Capacitance coefficients.
    pub params: KambleGhoseParams,
    /// Off-chip part providing the miss energy's main-memory term.
    pub part: SramPart,
}

impl KambleGhoseModel {
    /// A model with default 0.8 µm coefficients.
    pub fn new(part: SramPart) -> Self {
        KambleGhoseModel {
            params: KambleGhoseParams::default(),
            part,
        }
    }

    /// Energy of the array read that every access performs (nJ):
    /// precharged bit-lines across the selected set row, one word line,
    /// decoder, and tag comparators.
    pub fn hit_energy_nj(&self, config: &CacheConfig) -> f64 {
        let p = &self.params;
        let e = 0.5 * p.vdd * p.vdd; // per pF, in pJ (pF·V² = pJ)
        let ways = config.assoc() as f64;
        let line_bits = 8.0 * config.line() as f64;
        let rows = config.num_sets() as f64;
        // All bit-lines of the accessed ways swing over `rows` cells each.
        let data_cells = ways * (line_bits + p.tag_bits as f64);
        let e_bit = e * p.c_bit_per_cell * data_cells * rows;
        // One word line drives every cell gate in the row.
        let e_word = e * p.c_word_per_cell * data_cells;
        // Decoder charges one address's worth of input lines.
        let addr_bits = 32.0_f64;
        let e_dec = e * p.c_addr_per_bit * addr_bits.min(rows.log2().max(1.0) + 8.0);
        // One tag comparison per way, every probe.
        let e_cmp = e * p.c_cmp_per_bit * p.tag_bits as f64 * ways;
        pj_to_nj(e_bit + e_word + e_dec + e_cmp)
    }

    /// Energy of a miss (nJ): the hit probe plus output drivers moving a
    /// line across the pads and the off-chip access per byte, as in the
    /// DAC'99 model's `E_main`.
    pub fn miss_energy_nj(&self, config: &CacheConfig) -> f64 {
        let p = &self.params;
        let e = 0.5 * p.vdd * p.vdd;
        let line_bits = 8.0 * config.line() as f64;
        let e_out = e * p.c_out_per_bit * line_bits;
        self.hit_energy_nj(config)
            + pj_to_nj(e_out)
            + self.part.energy_per_access_nj * config.line() as f64
    }

    /// Total energy of a simulated run (nJ), reads only, mirroring
    /// [`DacEnergyModel::trace_energy_nj`](crate::DacEnergyModel::trace_energy_nj).
    pub fn trace_energy_nj(&self, report: &SimReport) -> f64 {
        report.stats.read_hits as f64 * self.hit_energy_nj(&report.config)
            + report.stats.read_misses() as f64 * self.miss_energy_nj(&report.config)
    }
}

fn pj_to_nj(x: f64) -> f64 {
    x / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(t: usize, l: usize, s: usize) -> CacheConfig {
        CacheConfig::new(t, l, s).unwrap()
    }

    #[test]
    fn hit_energy_grows_with_cache_size() {
        let m = KambleGhoseModel::new(SramPart::cy7c_2mbit());
        assert!(m.hit_energy_nj(&cfg(512, 8, 1)) > m.hit_energy_nj(&cfg(64, 8, 1)));
    }

    #[test]
    fn associativity_costs_energy_per_probe() {
        // Reading more ways in parallel discharges more bit-lines.
        let m = KambleGhoseModel::new(SramPart::cy7c_2mbit());
        let direct = m.hit_energy_nj(&cfg(64, 8, 1));
        let four_way = m.hit_energy_nj(&cfg(64, 8, 4));
        assert!(four_way > direct);
    }

    #[test]
    fn miss_exceeds_hit_by_at_least_the_off_chip_term() {
        let m = KambleGhoseModel::new(SramPart::cy7c_2mbit());
        let c = cfg(64, 8, 1);
        let delta = m.miss_energy_nj(&c) - m.hit_energy_nj(&c);
        assert!(delta >= 4.95 * 8.0);
    }

    #[test]
    fn rankings_agree_with_dac_model_on_em_direction() {
        // Both models must agree that with an expensive off-chip memory a
        // larger cache (fewer misses) is preferable.
        use crate::model::DacEnergyModel;
        let (mr_small, mr_large) = (0.2, 0.02);
        let small = cfg(16, 4, 1);
        let large = cfg(512, 4, 1);
        let kg = KambleGhoseModel::new(SramPart::sram_16mbit());
        let dac = DacEnergyModel::new(SramPart::sram_16mbit());
        let kg_small =
            (1.0 - mr_small) * kg.hit_energy_nj(&small) + mr_small * kg.miss_energy_nj(&small);
        let kg_large =
            (1.0 - mr_large) * kg.hit_energy_nj(&large) + mr_large * kg.miss_energy_nj(&large);
        let dac_small = dac.access_energy_nj(&small, 1.0 - mr_small, 1.0);
        let dac_large = dac.access_energy_nj(&large, 1.0 - mr_large, 1.0);
        assert_eq!(kg_small > kg_large, dac_small > dac_large);
    }
}
