//! The DAC'99 energy model (rectified Hicks/Walnock/Owens).

use crate::sram::SramPart;
use memsim::{CacheConfig, SimReport};
use std::fmt;

/// Technology coefficients of the model (§2.3).
///
/// Defaults are the paper's 0.8 µm CMOS values. `data_switches_per_byte`
/// encodes the paper's assumed data-bus switching activity: 50 % of the
/// 8 data lines per byte toggle per transfer, i.e. 4 switches per byte (the
/// exact constant is garbled in the surviving text; any constant scales
/// `E_io`/`E_main` uniformly and cannot change configuration rankings).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyParams {
    /// Address-decode coefficient `α` (pJ per address-bus bit switch).
    pub alpha: f64,
    /// Cell-array coefficient `β` (pJ per word-line × bit-line cell).
    pub beta: f64,
    /// I/O-pad coefficient `γ` (pJ per pad-bit switch).
    pub gamma: f64,
    /// Data-bus switches per byte transferred (`Data_bs` per byte).
    pub data_switches_per_byte: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            alpha: 0.001,
            beta: 2.0,
            gamma: 20.0,
            data_switches_per_byte: 4.0,
        }
    }
}

/// The cell-array organisation implied by a cache configuration.
///
/// A word line holds one set row — all `S` ways of `L` bytes — and there is
/// one row per set, so `word_line_size · bit_line_size = 8 · T` bit cells
/// regardless of organisation, matching the paper's `E_cell` formula.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Bit cells on one word line (`8 · L · S`).
    pub word_line_size: u64,
    /// Bit cells on one bit line (number of rows, `T / (L · S)`).
    pub bit_line_size: u64,
}

impl CacheGeometry {
    /// Derives the geometry from a validated configuration.
    pub fn of(config: &CacheConfig) -> Self {
        CacheGeometry {
            word_line_size: 8 * (config.line() * config.assoc()) as u64,
            bit_line_size: config.num_sets() as u64,
        }
    }
}

/// Per-access energy split into the model's four components (nanojoules).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Address-decode path (`E_dec`).
    pub dec_nj: f64,
    /// Cell arrays (`E_cell`).
    pub cell_nj: f64,
    /// Host-processor I/O pads (`E_io`), misses only.
    pub io_nj: f64,
    /// Main-memory access (`E_main`), misses only.
    pub main_nj: f64,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total_nj(&self) -> f64 {
        self.dec_nj + self.cell_nj + self.io_nj + self.main_nj
    }
}

/// The paper's cache energy model.
///
/// # Example
///
/// ```
/// use energy::{DacEnergyModel, SramPart};
/// use memsim::CacheConfig;
///
/// let model = DacEnergyModel::new(SramPart::cy7c_2mbit());
/// let small = CacheConfig::new(16, 4, 1)?;
/// let large = CacheConfig::new(512, 4, 1)?;
/// // Hit energy grows with cache size (the paper's key observation).
/// assert!(model.hit_energy_nj(&large, 1.0) > model.hit_energy_nj(&small, 1.0));
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct DacEnergyModel {
    /// Technology coefficients.
    pub params: EnergyParams,
    /// The off-chip memory part providing `Em`.
    pub part: SramPart,
}

impl DacEnergyModel {
    /// A model with the paper's default 0.8 µm coefficients.
    pub fn new(part: SramPart) -> Self {
        DacEnergyModel {
            params: EnergyParams::default(),
            part,
        }
    }

    /// A model with explicit coefficients.
    pub fn with_params(part: SramPart, params: EnergyParams) -> Self {
        DacEnergyModel { params, part }
    }

    /// `E_hit` for one access, given the average address-bus switches
    /// `add_bs` (nanojoules).
    pub fn hit_energy_nj(&self, config: &CacheConfig, add_bs: f64) -> f64 {
        self.hit_breakdown(config, add_bs).total_nj()
    }

    /// `E_miss` for one access (nanojoules).
    pub fn miss_energy_nj(&self, config: &CacheConfig, add_bs: f64) -> f64 {
        self.miss_breakdown(config, add_bs).total_nj()
    }

    /// The hit-path components (`E_dec`, `E_cell`; I/O and main are zero).
    pub fn hit_breakdown(&self, config: &CacheConfig, add_bs: f64) -> EnergyBreakdown {
        let g = CacheGeometry::of(config);
        EnergyBreakdown {
            dec_nj: pj(self.params.alpha * add_bs),
            cell_nj: pj(self.params.beta * (g.word_line_size * g.bit_line_size) as f64),
            io_nj: 0.0,
            main_nj: 0.0,
        }
    }

    /// The miss-path components (`E_dec`, `E_cell`, `E_io`, `E_main`).
    pub fn miss_breakdown(&self, config: &CacheConfig, add_bs: f64) -> EnergyBreakdown {
        let mut b = self.hit_breakdown(config, add_bs);
        let line = config.line() as f64;
        let data_bs = self.params.data_switches_per_byte * line;
        b.io_nj = pj(self.params.gamma * (data_bs + add_bs));
        b.main_nj = pj(self.params.gamma * data_bs) + self.part.energy_per_access_nj * line;
        b
    }

    /// Average energy per access (nanojoules) at the given hit rate:
    /// `hit_rate · E_hit + (1 − hit_rate) · E_miss` (§2.3).
    ///
    /// # Panics
    ///
    /// Panics if `hit_rate` is outside `[0, 1]`.
    pub fn access_energy_nj(&self, config: &CacheConfig, hit_rate: f64, add_bs: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "hit rate must be in [0, 1], got {hit_rate}"
        );
        hit_rate * self.hit_energy_nj(config, add_bs)
            + (1.0 - hit_rate) * self.miss_energy_nj(config, add_bs)
    }

    /// Total energy of a simulated run (nanojoules), counting **reads
    /// only** as the paper does.
    pub fn trace_energy_nj(&self, report: &SimReport) -> f64 {
        let add_bs = report.cpu_bus.avg_switches();
        let hits = report.stats.read_hits as f64;
        let misses = report.stats.read_misses() as f64;
        hits * self.hit_energy_nj(&report.config, add_bs)
            + misses * self.miss_energy_nj(&report.config, add_bs)
    }

    /// Energy of one write-back of a dirty line to main memory
    /// (nanojoules): the line crosses the I/O pads and is stored off-chip —
    /// the same `γ·Data_bs·L + Em·L` transfer as a fill, in the other
    /// direction.
    pub fn writeback_energy_nj(&self, config: &CacheConfig) -> f64 {
        let line = config.line() as f64;
        let data_bs = self.params.data_switches_per_byte * line;
        pj(2.0 * self.params.gamma * data_bs) + self.part.energy_per_access_nj * line
    }

    /// Total energy **including the write path** (nanojoules) — the
    /// extension of the journal follow-up (Shiue & Chakrabarti, *Memory
    /// Design and Exploration for Low Power, Embedded Systems*, 2001):
    ///
    /// * write hits charge the decode + cell array like a read hit;
    /// * write misses additionally fetch the line (write-allocate);
    /// * every write-back of a dirty line pays the off-chip transfer.
    pub fn trace_energy_with_writes_nj(&self, report: &SimReport) -> f64 {
        let add_bs = report.cpu_bus.avg_switches();
        let cfg = &report.config;
        let write_hits = report.stats.write_hits as f64;
        let write_misses = report.stats.write_misses() as f64;
        let writebacks = report.stats.writebacks as f64;
        self.trace_energy_nj(report)
            + write_hits * self.hit_energy_nj(cfg, add_bs)
            + write_misses * self.miss_energy_nj(cfg, add_bs)
            + writebacks * self.writeback_energy_nj(cfg)
    }

    /// Energy of a hit served by a single-entry **line buffer** in front of
    /// the cache (nanojoules): only the address comparison/decode path
    /// switches — the cell arrays stay quiet. This is the Su–Despain block
    /// buffering optimisation contemporaneous with the paper.
    pub fn buffer_hit_energy_nj(&self, _config: &CacheConfig, add_bs: f64) -> f64 {
        pj(self.params.alpha * add_bs)
    }

    /// Total read energy when a line buffer fronts the cache: buffer hits
    /// (recorded in [`CacheStats::buffer_hits`](memsim::CacheStats)) pay
    /// only the comparator, remaining hits pay the full array access.
    pub fn trace_energy_with_buffer_nj(&self, report: &SimReport) -> f64 {
        let add_bs = report.cpu_bus.avg_switches();
        let cfg = &report.config;
        let buffered = report.stats.buffer_hits as f64;
        let array_hits = report.stats.read_hits as f64 - buffered;
        let misses = report.stats.read_misses() as f64;
        buffered * self.buffer_hit_energy_nj(cfg, add_bs)
            + array_hits.max(0.0) * self.hit_energy_nj(cfg, add_bs)
            + misses * self.miss_energy_nj(cfg, add_bs)
    }
}

/// Converts the model's raw picojoule quantities to nanojoules.
fn pj(x: f64) -> f64 {
    x / 1000.0
}

impl fmt::Display for DacEnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DAC'99 energy model (α={}, β={}, γ={}) over {}",
            self.params.alpha, self.params.beta, self.params.gamma, self.part
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{Simulator, TraceEvent};

    fn cfg(t: usize, l: usize, s: usize) -> CacheConfig {
        CacheConfig::new(t, l, s).unwrap()
    }

    #[test]
    fn geometry_product_is_8t() {
        for (t, l, s) in [(64, 8, 1), (64, 8, 2), (512, 32, 4), (16, 4, 1)] {
            let g = CacheGeometry::of(&cfg(t, l, s));
            assert_eq!(g.word_line_size * g.bit_line_size, 8 * t as u64);
        }
    }

    #[test]
    fn cell_energy_grows_linearly_with_cache_size() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let e64 = m.hit_breakdown(&cfg(64, 8, 1), 0.0).cell_nj;
        let e128 = m.hit_breakdown(&cfg(128, 8, 1), 0.0).cell_nj;
        assert!((e128 / e64 - 2.0).abs() < 1e-12);
        // β·8·T pJ: T = 64 gives 1024 pJ = 1.024 nJ.
        assert!((e64 - 1.024).abs() < 1e-12);
    }

    #[test]
    fn miss_energy_includes_io_and_main() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let c = cfg(64, 8, 1);
        let hit = m.hit_breakdown(&c, 1.0);
        let miss = m.miss_breakdown(&c, 1.0);
        assert_eq!(hit.dec_nj, miss.dec_nj);
        assert_eq!(hit.cell_nj, miss.cell_nj);
        assert!(miss.io_nj > 0.0);
        // Em·L dominates: 4.95 nJ × 8 = 39.6 nJ.
        assert!(miss.main_nj > 39.6);
        assert!(miss.total_nj() > hit.total_nj());
    }

    #[test]
    fn main_memory_term_scales_with_line_size() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let m8 = m.miss_breakdown(&cfg(64, 8, 1), 0.0).main_nj;
        let m32 = m.miss_breakdown(&cfg(256, 32, 1), 0.0).main_nj;
        assert!((m32 / m8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn access_energy_interpolates_between_hit_and_miss() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let c = cfg(64, 8, 1);
        let e_hit = m.access_energy_nj(&c, 1.0, 1.0);
        let e_miss = m.access_energy_nj(&c, 0.0, 1.0);
        let e_half = m.access_energy_nj(&c, 0.5, 1.0);
        assert!((e_half - 0.5 * (e_hit + e_miss)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn out_of_range_hit_rate_panics() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let _ = m.access_energy_nj(&cfg(64, 8, 1), 1.5, 1.0);
    }

    #[test]
    fn trace_energy_matches_manual_sum() {
        let c = cfg(64, 8, 1);
        let trace: Vec<TraceEvent> = (0..100).map(|i| TraceEvent::read(i * 4, 4)).collect();
        let report = Simulator::simulate(c, trace);
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let add_bs = report.cpu_bus.avg_switches();
        let expected = report.stats.read_hits as f64 * m.hit_energy_nj(&c, add_bs)
            + report.stats.read_misses() as f64 * m.miss_energy_nj(&c, add_bs);
        assert!((m.trace_energy_nj(&report) - expected).abs() < 1e-9);
        assert!(m.trace_energy_nj(&report) > 0.0);
    }

    #[test]
    fn write_path_energy_adds_on_top_of_reads() {
        let c = cfg(64, 8, 1);
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let trace: Vec<TraceEvent> = (0..200)
            .flat_map(|i| [TraceEvent::read(i * 4, 4), TraceEvent::write(i * 4, 4)])
            .collect();
        let report = Simulator::simulate(c, trace);
        assert!(report.stats.writes > 0);
        let reads_only = m.trace_energy_nj(&report);
        let with_writes = m.trace_energy_with_writes_nj(&report);
        assert!(with_writes > reads_only);
    }

    #[test]
    fn writeback_energy_scales_with_line_size() {
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        let e8 = m.writeback_energy_nj(&cfg(64, 8, 1));
        let e32 = m.writeback_energy_nj(&cfg(256, 32, 1));
        assert!((e32 / e8 - 4.0).abs() < 1e-9);
        // Dominated by Em·L, like a fill.
        assert!(e8 > 4.95 * 8.0);
    }

    #[test]
    fn line_buffer_saves_array_energy() {
        let c = cfg(64, 8, 1);
        let m = DacEnergyModel::new(SramPart::cy7c_2mbit());
        // A same-line-heavy read trace: two reads per line.
        let trace: Vec<TraceEvent> = (0..400).map(|i| TraceEvent::read(i * 4, 4)).collect();
        let mut buffered = Simulator::new(c).with_line_buffer();
        buffered.run(trace.iter().copied());
        let breport = buffered.into_report();
        assert!(breport.stats.buffer_hits > 0);
        let with_buffer = m.trace_energy_with_buffer_nj(&breport);
        let without = m.trace_energy_nj(&breport);
        assert!(
            with_buffer < without,
            "buffered {with_buffer} should beat unbuffered {without}"
        );
        // And the saving equals the avoided array accesses.
        let saved = breport.stats.buffer_hits as f64
            * (m.hit_energy_nj(&c, breport.cpu_bus.avg_switches())
                - m.buffer_hit_energy_nj(&c, breport.cpu_bus.avg_switches()));
        assert!((without - with_buffer - saved).abs() < 1e-9);
    }

    #[test]
    fn em_extremes_flip_the_cache_size_preference() {
        // The crux of the paper's Fig. 1: with a cheap off-chip memory,
        // bigger caches cost energy; with an expensive one they save it.
        // Compare per-access energy at a fixed plausible miss-rate profile:
        // the small cache misses more.
        let small = cfg(16, 4, 1);
        let large = cfg(512, 4, 1);
        let (mr_small, mr_large) = (0.10, 0.01);

        let cheap = DacEnergyModel::new(SramPart::low_power_2mbit());
        let cheap_small = cheap.access_energy_nj(&small, 1.0 - mr_small, 1.0);
        let cheap_large = cheap.access_energy_nj(&large, 1.0 - mr_large, 1.0);
        assert!(
            cheap_small < cheap_large,
            "cheap Em should favour small caches"
        );

        let dear = DacEnergyModel::new(SramPart::sram_16mbit());
        let dear_small = dear.access_energy_nj(&small, 1.0 - mr_small, 1.0);
        let dear_large = dear.access_energy_nj(&large, 1.0 - mr_large, 1.0);
        assert!(
            dear_small > dear_large,
            "dear Em should favour large caches"
        );
    }
}
