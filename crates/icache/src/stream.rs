//! Instruction-fetch stream modelling.
//!
//! A loop kernel's instruction behaviour is overwhelmingly regular: a body
//! of `n` instructions laid out contiguously is fetched start-to-end once
//! per iteration, `iterations` times. That is the abstraction Kirovski et
//! al.'s application-driven synthesis exploits, and it is all the I-cache
//! exploration needs — the interesting question is only whether the cache
//! covers the footprint.

use loopir::Kernel;
use memsim::TraceEvent;

/// Instruction word size in bytes (a 32-bit embedded core).
pub const INSTR_BYTES: u32 = 4;

/// The instruction-fetch behaviour of one kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstructionStream {
    /// Byte address of the first body instruction.
    pub base: u64,
    /// Instructions in the loop body (including loop control).
    pub body_len: u32,
    /// Number of body executions (the nest's iteration count).
    pub iterations: u64,
}

impl InstructionStream {
    /// A stream fetching `body_len` instructions at `base`, `iterations`
    /// times.
    ///
    /// # Panics
    ///
    /// Panics if `body_len` or `iterations` is zero.
    pub fn from_body(base: u64, body_len: u32, iterations: u64) -> Self {
        assert!(body_len > 0, "body must contain at least one instruction");
        assert!(iterations > 0, "stream must execute at least once");
        InstructionStream {
            base,
            body_len,
            iterations,
        }
    }

    /// Estimates the stream of a data kernel: each array reference costs a
    /// handful of instructions (address arithmetic + the access) plus fixed
    /// loop overhead per nest level.
    ///
    /// The constants (4 instructions per reference, 3 per loop level, 2 of
    /// arithmetic glue per body) are representative of compiled embedded
    /// code; the exploration outcome depends only on the footprint's order
    /// of magnitude.
    pub fn for_kernel(kernel: &Kernel, base: u64) -> Self {
        let refs = kernel.nest.refs.len() as u32;
        let levels = kernel.nest.depth() as u32;
        let body_len = 4 * refs + 3 * levels + 2;
        let iterations = kernel
            .nest
            .const_iteration_count()
            .expect("exploration kernels are rectangular")
            .max(1);
        InstructionStream::from_body(base, body_len, iterations)
    }

    /// The code footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.body_len as u64 * INSTR_BYTES as u64
    }

    /// Total fetches issued over the whole execution.
    pub fn fetch_count(&self) -> u64 {
        self.body_len as u64 * self.iterations
    }

    /// Iterator over the fetch trace: `body_len` sequential instruction
    /// reads per iteration, repeated `iterations` times.
    pub fn fetches(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        (0..self.iterations).flat_map(move |_| {
            (0..self.body_len).map(move |i| {
                TraceEvent::read(self.base + i as u64 * INSTR_BYTES as u64, INSTR_BYTES)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn fetch_trace_is_body_times_iterations() {
        let s = InstructionStream::from_body(0x100, 10, 7);
        let trace: Vec<_> = s.fetches().collect();
        assert_eq!(trace.len(), 70);
        assert_eq!(s.fetch_count(), 70);
        assert_eq!(trace[0].addr, 0x100);
        assert_eq!(trace[9].addr, 0x100 + 9 * 4);
        assert_eq!(trace[10].addr, 0x100, "second iteration restarts the body");
    }

    #[test]
    fn footprint_is_in_bytes() {
        assert_eq!(
            InstructionStream::from_body(0, 25, 1).footprint_bytes(),
            100
        );
    }

    #[test]
    fn kernel_streams_scale_with_body_complexity() {
        let small = InstructionStream::for_kernel(&kernels::matadd(6), 0);
        let large = InstructionStream::for_kernel(&kernels::sor(31), 0);
        assert!(large.body_len > small.body_len);
        assert_eq!(small.iterations, 36);
        assert_eq!(large.iterations, 961);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_body_panics() {
        let _ = InstructionStream::from_body(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_iterations_panics() {
        let _ = InstructionStream::from_body(0, 1, 0);
    }
}
