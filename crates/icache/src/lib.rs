//! Instruction-cache extension of the DAC'99 exploration.
//!
//! The paper's conclusion notes that "the exploration procedure described
//! here for data caches can be extended to instruction caches by merging the
//! method of Kirovski et al. with ours". This crate implements that
//! extension:
//!
//! * [`stream`] models a kernel's instruction-fetch behaviour — a compact
//!   code footprint fetched repeatedly as the loop nest iterates, the
//!   pattern Kirovski-style application-driven synthesis characterises —
//!   and generates the fetch trace;
//! * [`explore`] sweeps I-cache configurations over that trace with the
//!   same cycle and energy models as the data side, and performs the
//!   **joint split** of one on-chip budget `M` into I- and D-cache — the
//!   outermost `for on-chip memory size M` loop of `Algorithm MemExplore`
//!   that the paper states but never exercises.
//!
//! The key instruction-side behaviour: loop-kernel code is tiny and reused
//! every iteration, so once the I-cache holds the body, the miss rate
//! collapses to the cold misses — the optimum is the *smallest* I-cache
//! that covers the footprint, freeing budget for data.
//!
//! # Example
//!
//! ```
//! use icache::stream::InstructionStream;
//! use icache::explore::explore_icache;
//!
//! // ~25 instructions of loop body, executed 961 times.
//! let stream = InstructionStream::from_body(0x1000, 25, 961);
//! let records = explore_icache(&stream, &[64, 128, 256], &[8, 16]);
//! let best = records
//!     .iter()
//!     .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).unwrap())
//!     .unwrap();
//! // A 128 B I-cache already holds the 100 B body.
//! assert!(best.config.size() <= 256);
//! ```

pub mod explore;
pub mod stream;

pub use explore::{explore_icache, joint_explore, ICacheRecord, JointRecord};
pub use stream::InstructionStream;
