//! I-cache exploration and the joint I/D on-chip budget split.

use crate::stream::InstructionStream;
use energy::DacEnergyModel;
use energy::SramPart;
use loopir::Kernel;
use memexplore::{select, CacheDesign, CycleModel, DesignSpace, Explorer, Record};
use memsim::{CacheConfig, Simulator};

/// Performance of one I-cache configuration on one instruction stream.
#[derive(Clone, Debug)]
pub struct ICacheRecord {
    /// The configuration (direct-mapped; loop code has no conflict problem
    /// once it fits, so ways buy nothing).
    pub config: CacheConfig,
    /// Fetch miss rate.
    pub miss_rate: f64,
    /// Fetch cycles under the paper's cycle model.
    pub cycles: f64,
    /// Fetch energy in nanojoules.
    pub energy_nj: f64,
}

/// Simulates the stream against every `(size, line)` pair.
///
/// # Panics
///
/// Panics if any size/line pair is not a valid power-of-two geometry.
pub fn explore_icache(
    stream: &InstructionStream,
    sizes: &[usize],
    lines: &[usize],
) -> Vec<ICacheRecord> {
    let model = DacEnergyModel::new(SramPart::cy7c_2mbit());
    let cycle_model = CycleModel;
    let mut out = Vec::new();
    for &t in sizes {
        for &l in lines {
            if l > t {
                continue;
            }
            let config = CacheConfig::new(t, l, 1)
                .unwrap_or_else(|e| panic!("invalid I-cache geometry C{t}L{l}: {e}"));
            let mut sim = Simulator::new(config);
            sim.run(stream.fetches());
            let report = sim.into_report();
            let cycles = cycle_model.cycles_from_counts(
                report.stats.read_hits,
                report.stats.read_misses(),
                1,
                l,
                1,
            );
            out.push(ICacheRecord {
                config,
                miss_rate: report.stats.read_miss_rate(),
                cycles,
                energy_nj: model.trace_energy_nj(&report),
            });
        }
    }
    out
}

/// One point of the joint I/D split of an on-chip budget.
#[derive(Clone, Debug)]
pub struct JointRecord {
    /// D-cache record (full `(T, L, S, B)` optimum for its share).
    pub data: Record,
    /// I-cache record.
    pub instruction: ICacheRecord,
    /// Combined energy (nJ).
    pub total_energy_nj: f64,
    /// Combined cycles (fetches and data accesses are both on the critical
    /// path of a single-issue embedded core).
    pub total_cycles: f64,
}

impl JointRecord {
    /// The split as `(icache bytes, dcache bytes)`.
    pub fn split(&self) -> (usize, usize) {
        (self.instruction.config.size(), self.data.design.cache_size)
    }
}

/// Explores every power-of-two split of `total_budget` bytes of on-chip
/// memory between an I-cache and a D-cache — the paper's outermost
/// `for on-chip memory size M` loop — and returns one best-energy record
/// per split (ordered by I-cache share, ascending).
///
/// # Panics
///
/// Panics if `total_budget` is not a power of two of at least 32 bytes.
pub fn joint_explore(
    kernel: &Kernel,
    stream: &InstructionStream,
    total_budget: usize,
) -> Vec<JointRecord> {
    assert!(
        total_budget >= 32 && total_budget.is_power_of_two(),
        "budget must be a power of two of at least 32 bytes"
    );
    let explorer = Explorer::default();
    let mut out = Vec::new();
    // Smallest sensible halves: 16 B each. The budget is an upper bound:
    // the D-cache gets the largest power of two that fits beside the
    // I-cache (cache sizes must be powers of two, budgets need not be).
    let mut i_share = 16usize;
    while i_share < total_budget {
        let remainder = total_budget - i_share;
        if remainder < 16 {
            break;
        }
        let d_cap = prev_power_of_two(remainder);
        // D side: full (T, L, S, B) sweep capped at its share.
        let space = DesignSpace {
            cache_sizes: memexplore::explore::pow2_range(16, d_cap),
            ..DesignSpace::paper()
        };
        let d_records = explorer.explore(kernel, &space);
        let d_best = match select::min_energy(&d_records) {
            Some(r) => r.clone(),
            None => {
                i_share *= 2;
                continue;
            }
        };
        // I side: best line size at exactly the I share.
        let i_records = explore_icache(stream, &[i_share], &[4, 8, 16, 32]);
        if let Some(i_best) = i_records
            .into_iter()
            .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
        {
            out.push(JointRecord {
                total_energy_nj: d_best.energy_nj + i_best.energy_nj,
                total_cycles: d_best.cycles + i_best.cycles,
                data: d_best,
                instruction: i_best,
            });
        }
        i_share *= 2;
    }
    out
}

/// Largest power of two `<= x` (`x >= 1`).
fn prev_power_of_two(x: usize) -> usize {
    let np = x.next_power_of_two();
    if np == x {
        x
    } else {
        np / 2
    }
}

/// Convenience: the minimum-energy joint split.
pub fn best_joint_split(
    kernel: &Kernel,
    stream: &InstructionStream,
    total_budget: usize,
) -> Option<JointRecord> {
    joint_explore(kernel, stream, total_budget)
        .into_iter()
        .min_by(|a, b| {
            a.total_energy_nj
                .partial_cmp(&b.total_energy_nj)
                .expect("finite")
        })
}

/// Builds the evaluator-compatible design for an I-cache record (used by
/// reports).
pub fn as_design(record: &ICacheRecord) -> CacheDesign {
    CacheDesign::new(record.config.size(), record.config.line(), 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn fitting_body_reduces_misses_to_cold_only() {
        // 100 B body in a 128 B cache: only the first pass misses.
        let s = InstructionStream::from_body(0, 25, 100);
        let records = explore_icache(&s, &[64, 128], &[8]);
        let small = &records[0];
        let large = &records[1];
        assert!(
            small.miss_rate > 0.3,
            "64 B cannot hold 100 B: {}",
            small.miss_rate
        );
        // Cold misses only: 13 line fills over 2,500 fetches.
        assert!(
            large.miss_rate < 0.01,
            "128 B holds the body: {}",
            large.miss_rate
        );
        assert!(large.energy_nj < small.energy_nj);
    }

    #[test]
    fn smallest_covering_cache_wins_energy() {
        let s = InstructionStream::from_body(0, 25, 961);
        let records = explore_icache(&s, &[128, 256, 512, 1024], &[8]);
        let best = records
            .iter()
            .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
            .expect("non-empty");
        assert_eq!(best.config.size(), 128);
    }

    #[test]
    fn joint_split_prefers_small_icache_for_loop_kernels() {
        let kernel = kernels::compress(31);
        let stream = InstructionStream::for_kernel(&kernel, 0x8000);
        let best = best_joint_split(&kernel, &stream, 512).expect("some split works");
        let (i_share, d_share) = best.split();
        // Compress's body is 28 instructions = 112 B: a 128 B I-cache is the
        // smallest that stops the fetch stream thrashing, and anything
        // bigger wastes cell energy. The D side picks its own optimum (C32)
        // well under the remaining budget.
        assert_eq!(i_share, 128, "smallest covering I-cache should win");
        assert!(best.instruction.miss_rate < 0.01);
        assert!(d_share >= 32);
        assert!(best.total_energy_nj > 0.0);
    }

    #[test]
    fn joint_explore_covers_all_power_of_two_splits() {
        let kernel = kernels::matadd(6);
        let stream = InstructionStream::for_kernel(&kernel, 0);
        let records = joint_explore(&kernel, &stream, 256);
        let shares: Vec<usize> = records
            .iter()
            .map(|r| r.instruction.config.size())
            .collect();
        // 16+? budget 256: valid power-of-two splits are 128+128 only; plus
        // smaller I shares with non-pow2 remainders skipped except...
        assert!(!shares.is_empty());
        assert!(shares.iter().all(|s| s.is_power_of_two()));
        for r in &records {
            assert!(r.instruction.config.size() + r.data.design.cache_size <= 256);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_budget_panics() {
        let kernel = kernels::matadd(6);
        let stream = InstructionStream::for_kernel(&kernel, 0);
        let _ = joint_explore(&kernel, &stream, 100);
    }
}
