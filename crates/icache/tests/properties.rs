//! Property-based tests for the instruction-cache extension.

use icache::explore::explore_icache;
use icache::stream::InstructionStream;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fetch_count_matches_the_trace(body in 1u32..200, iters in 1u64..50, base in 0u64..0x10000) {
        let s = InstructionStream::from_body(base * 4, body, iters);
        prop_assert_eq!(s.fetches().count() as u64, s.fetch_count());
        prop_assert_eq!(s.fetch_count(), body as u64 * iters);
    }

    #[test]
    fn every_fetch_is_inside_the_footprint(body in 1u32..100, iters in 1u64..10) {
        let s = InstructionStream::from_body(0x4000, body, iters);
        for f in s.fetches() {
            prop_assert!(f.addr >= 0x4000);
            prop_assert!(f.addr + 4 <= 0x4000 + s.footprint_bytes());
            prop_assert!(!f.is_write);
        }
    }

    #[test]
    fn covering_caches_have_cold_misses_only(body in 1u32..60, iters in 2u64..40) {
        let s = InstructionStream::from_body(0, body, iters);
        let covering = (s.footprint_bytes() as usize)
            .next_power_of_two()
            .max(16);
        let records = explore_icache(&s, &[covering], &[8]);
        let r = &records[0];
        // Cold misses = line count of the footprint; everything else hits.
        let cold = s.footprint_bytes().div_ceil(8);
        let expected = cold as f64 / s.fetch_count() as f64;
        prop_assert!((r.miss_rate - expected).abs() < 1e-9,
            "mr {} vs expected {}", r.miss_rate, expected);
    }

    #[test]
    fn miss_rate_is_monotone_in_cache_size(body in 8u32..120, iters in 2u64..20) {
        let s = InstructionStream::from_body(0, body, iters);
        let sizes = [32usize, 64, 128, 256, 512];
        let records = explore_icache(&s, &sizes, &[8]);
        for w in records.windows(2) {
            prop_assert!(
                w[1].miss_rate <= w[0].miss_rate + 1e-12,
                "{} -> {}", w[0].miss_rate, w[1].miss_rate
            );
        }
    }

    #[test]
    fn energy_and_cycles_are_positive_and_finite(body in 1u32..100, iters in 1u64..20) {
        let s = InstructionStream::from_body(0, body, iters);
        for r in explore_icache(&s, &[64, 256], &[4, 16]) {
            prop_assert!(r.energy_nj.is_finite() && r.energy_nj > 0.0);
            prop_assert!(r.cycles.is_finite() && r.cycles > 0.0);
            prop_assert!((0.0..=1.0).contains(&r.miss_rate));
        }
    }
}
