//! Command implementations: each returns its report as an [`Output`]
//! split by stream (records on stdout, human notes on stderr).

use crate::cli::{Command, ObsFlags, Supervise, USAGE};
use analysis::classes::{partition_cases, partition_classes};
use analysis::min_cache::MinCacheReport;
use analysis::placement::optimize_layout;
use energy::SramPart;
use loopir::parse::parse_kernel;
use loopir::{AccessKind, ArrayId, DataLayout, Kernel, TraceGen};
use memexplore::{
    select, CacheDesign, CheckpointPolicy, DesignSpace, Engine, Evaluator, ExploreError, Explorer,
    FaultPlan, Objective, Obs, ObsConfig, ObsSink, PlacementMode, Record, RunReport, SearchOptions,
    SearchOutcome, SweepOptions, SweepOutcome, SweepTelemetry, TraceError, TraceWorkload,
};
use memsim::din::{write_din, DinLabel, DinRecord};
use memsim::{
    BusEncoding, CacheConfig, DinSource, Simulator, TraceEvent, TraceSource, TraceSourceError,
    DEFAULT_CHUNK_CAPACITY,
};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A command's result, split by stream. `stdout` carries the
/// machine-readable records/report; `stderr` carries human-facing notes
/// (telemetry summaries, resume/deadline warnings), so piped stdout stays
/// clean CSV/JSON even with `--telemetry`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Output {
    /// Machine-readable command output.
    pub stdout: String,
    /// Human-facing notes and summaries.
    pub stderr: String,
}

impl Output {
    fn stdout_only(stdout: String) -> Self {
        Output {
            stdout,
            stderr: String::new(),
        }
    }
}

/// A failed command, classified by the exit-code contract: invalid CLI
/// input is exit 2 (handled by the parser), I/O failures and invalid
/// cache geometry are also exit 2, every other runtime failure is exit 1.
#[derive(Debug)]
pub enum RunError {
    /// Filesystem problem (unreadable input, unwritable or corrupt
    /// checkpoint) — one line on stderr, exit code 2.
    Io(String),
    /// Invalid cache geometry (non-power-of-two size/line/assoc, line
    /// larger than cache, more ways than lines). The simulator's
    /// shift-based address math would silently mis-index with such a
    /// geometry, so it dies at the boundary: exit code 2 offline, HTTP
    /// 400 on `memx serve`.
    Geometry(String),
    /// Any other runtime failure — exit code 1.
    Other(Box<dyn Error + Send + Sync>),
}

impl RunError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            Self::Io(_) | Self::Geometry(_) => 2,
            Self::Other(_) => 1,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) | Self::Geometry(msg) => write!(f, "{msg}"),
            Self::Other(e) => write!(f, "{e}"),
        }
    }
}

impl Error for RunError {}

impl From<Box<dyn Error + Send + Sync>> for RunError {
    fn from(e: Box<dyn Error + Send + Sync>) -> Self {
        Self::Other(e)
    }
}

impl From<String> for RunError {
    fn from(e: String) -> Self {
        Self::Other(e.into())
    }
}

/// Executes a parsed command, reading kernel files from disk.
///
/// # Errors
///
/// [`RunError`] carrying the message and the exit code: I/O failures map
/// to exit 2 (like invalid CLI input), everything else to exit 1.
pub fn run(cmd: Command) -> Result<Output, RunError> {
    match cmd {
        Command::Help => Ok(Output::stdout_only(USAGE.to_string())),
        Command::Explore {
            file,
            part,
            em_nj,
            natural,
            analytical,
            bound_cycles,
            bound_energy,
            pareto,
            telemetry,
            engine,
            no_analytic,
            supervise,
            obs,
        } => {
            let evaluator = make_evaluator(&part, em_nj, natural);
            if is_din_path(&file) {
                if analytical {
                    return Err(RunError::Other(
                        "`--analytical` needs a kernel: the closed-form miss-rate model \
                         has no meaning for a recorded `.din` trace"
                            .into(),
                    ));
                }
                let workload = load_trace(&file)?;
                explore_trace(
                    &workload,
                    evaluator,
                    bound_cycles,
                    bound_energy,
                    pareto,
                    telemetry,
                    &engine,
                    !no_analytic,
                    &supervise,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            } else {
                let kernel = load(&file)?;
                explore(
                    &kernel,
                    evaluator,
                    analytical,
                    bound_cycles,
                    bound_energy,
                    pareto,
                    telemetry,
                    engine_kind(&engine),
                    !no_analytic,
                    &supervise,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            }
        }
        Command::Pareto {
            file,
            part,
            em_nj,
            natural,
            format,
            exhaustive,
            telemetry,
            engine,
            no_analytic,
            supervise,
            obs,
        } => {
            let evaluator = make_evaluator(&part, em_nj, natural);
            if is_din_path(&file) {
                let workload = load_trace(&file)?;
                pareto_trace(
                    &workload,
                    evaluator,
                    &format,
                    telemetry,
                    &engine,
                    !no_analytic,
                    &supervise,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            } else {
                let kernel = load(&file)?;
                pareto_frontier(
                    &kernel,
                    evaluator,
                    &format,
                    exhaustive,
                    telemetry,
                    engine_kind(&engine),
                    !no_analytic,
                    &supervise,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            }
        }
        Command::Search {
            file,
            part,
            em_nj,
            natural,
            objective,
            space,
            beam,
            gap,
            deadline_secs,
            format,
            telemetry,
            no_analytic,
            obs,
        } => {
            let evaluator = make_evaluator(&part, em_nj, natural);
            if is_din_path(&file) {
                if space == "expansive" {
                    return Err(RunError::Other(
                        "`--space expansive` needs a kernel: a `.din` trace sweeps \
                         the fixed trace grid"
                            .into(),
                    ));
                }
                let workload = load_trace(&file)?;
                search_trace(
                    &workload,
                    evaluator,
                    objective,
                    beam,
                    deadline_secs,
                    &format,
                    telemetry,
                    !no_analytic,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            } else {
                let kernel = load(&file)?;
                search(
                    &kernel,
                    evaluator,
                    objective,
                    &space,
                    beam,
                    gap,
                    deadline_secs,
                    &format,
                    telemetry,
                    !no_analytic,
                    &obs,
                    None,
                )
                .map(|(out, _)| out)
            }
        }
        Command::Sweep {
            file,
            part,
            em_nj,
            natural,
            bound_cycles,
            bound_energy,
            pareto,
            telemetry,
            engine,
            distributed,
            shards,
            attach,
            shard_dir,
            retry_budget,
            backoff_ms,
            straggler_ms,
            obs,
        } => crate::sweep::sweep(&crate::sweep::SweepRequest {
            file,
            part,
            em_nj,
            natural,
            bound_cycles,
            bound_energy,
            pareto,
            telemetry,
            engine,
            distributed,
            shards,
            attach,
            shard_dir,
            retry_budget,
            backoff_ms,
            straggler_ms,
            obs,
        }),
        Command::Worker {
            file,
            part,
            em_nj,
            natural,
            engine,
            start,
            end,
            checkpoint,
            checkpoint_every,
            resume,
        } => crate::sweep::worker(
            &file,
            &part,
            em_nj,
            natural,
            &engine,
            start,
            end,
            &checkpoint,
            checkpoint_every,
            resume,
        ),
        Command::Serve {
            addr,
            slots,
            cache_entries,
            cache_bytes,
            default_deadline,
            distribute,
            obs,
        } => {
            let obs_hub = build_obs(&obs)?;
            let server = crate::serve::Server::start(crate::serve::ServeConfig {
                addr: addr.clone(),
                slots,
                cache_entries,
                cache_bytes,
                default_deadline,
                distribute,
                obs: obs_hub,
            })
            .map_err(|e| RunError::Io(format!("cannot listen on `{addr}`: {e}")))?;
            // The listening line goes out before blocking (the CI smoke
            // job and scripts wait for it), so print directly rather than
            // through the deferred `Output`.
            println!(
                "memx serve listening on {} ({} job slot(s), cache {} entries / {} B)",
                server.addr(),
                if slots == 0 {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                } else {
                    slots
                },
                cache_entries,
                cache_bytes
            );
            let _ = std::io::Write::flush(&mut std::io::stdout());
            crate::serve::install_signal_handlers();
            while !crate::serve::signal_received() && !server.is_stopped() {
                std::thread::sleep(Duration::from_millis(50));
            }
            server.request_shutdown();
            server.join();
            Ok(Output {
                stdout: String::new(),
                stderr: "memx serve: shut down cleanly\n".to_string(),
            })
        }
        Command::Submit {
            addr,
            file,
            job,
            part,
            em_nj,
            natural,
            analytical,
            bound_cycles,
            bound_energy,
            pareto,
            engine,
            format,
            exhaustive,
            objective,
            space,
            beam,
            gap,
            deadline_secs,
            wait_health_secs,
            retries,
            backoff_ms,
        } => crate::serve::submit(&crate::serve::SubmitRequest {
            addr,
            file,
            job,
            part,
            em_nj,
            natural,
            analytical,
            bound_cycles,
            bound_energy,
            pareto,
            engine,
            format,
            exhaustive,
            objective,
            space,
            beam,
            gap,
            deadline_secs,
            wait_health_secs,
            retries,
            backoff_ms,
        }),
        Command::Report { file } => report(&file),
        Command::Simulate {
            file,
            cache,
            line,
            assoc,
            tiling,
            natural,
            classify,
        } => {
            let kernel = load(&file)?;
            Ok(Output::stdout_only(simulate(
                &kernel, cache, line, assoc, tiling, natural, classify,
            )?))
        }
        Command::Place { file, cache, line } => {
            let kernel = load(&file)?;
            Ok(Output::stdout_only(place(&kernel, cache, line)?))
        }
        Command::MinCache { file, line } => {
            let kernel = load(&file)?;
            Ok(Output::stdout_only(min_cache(&kernel, line)?))
        }
        Command::Classes { file } => {
            let kernel = load(&file)?;
            Ok(Output::stdout_only(classes(&kernel)))
        }
        Command::Trace { file, reads_only } => {
            let kernel = load(&file)?;
            Ok(Output::stdout_only(trace(&kernel, reads_only)?))
        }
        Command::SimulateDin {
            file,
            cache,
            line,
            assoc,
            classify,
            format,
        } => Ok(Output::stdout_only(simulate_din(
            &file, cache, line, assoc, classify, &format,
        )?)),
    }
}

/// Renders the `memx report` summary from a `--log-json` event log.
fn report(path: &str) -> Result<Output, RunError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RunError::Io(format!("cannot read `{path}`: {e}")))?;
    let report =
        RunReport::from_jsonl(&text).map_err(|e| RunError::Other(format!("{path}: {e}").into()))?;
    Ok(Output::stdout_only(report.to_string()))
}

/// Builds the observability hub from the CLI flags; `None` when both are
/// off, so the sweep path stays untouched (bit-identical output).
pub(crate) fn build_obs(flags: &ObsFlags) -> Result<Option<Arc<Obs>>, RunError> {
    if !flags.is_active() {
        return Ok(None);
    }
    let config = ObsConfig {
        log: flags
            .log_json
            .as_ref()
            .map(|p| ObsSink::Path(PathBuf::from(p))),
        progress: flags.progress,
        run_id: None,
    };
    Obs::new(config).map(Some).map_err(|e| {
        RunError::Io(format!(
            "cannot write event log `{}`: {e}",
            flags.log_json.as_deref().unwrap_or("<none>")
        ))
    })
}

/// Maps a streaming-source failure onto the exit-code contract: both an
/// unreadable file and a malformed record make the workload unusable, so
/// both are input failures (exit 2, like an unreadable kernel file).
fn source_error(e: TraceSourceError) -> RunError {
    match e {
        TraceSourceError::Io { path, error } => {
            RunError::Io(format!("cannot read `{path}`: {error}"))
        }
        parse @ TraceSourceError::Parse { .. } => RunError::Io(parse.to_string()),
    }
}

/// [`source_error`] lifted to whole streamed sweeps: checkpoint sidecar
/// failures follow the kernel supervisor's I/O discipline, worker panics
/// stay runtime failures (exit 1).
pub(crate) fn trace_error(e: TraceError) -> RunError {
    match e {
        TraceError::Source(e) => source_error(e),
        TraceError::Checkpoint(c) => RunError::Io(c.to_string()),
        panic @ TraceError::WorkerPanic { .. } => RunError::Other(panic.to_string().into()),
    }
}

/// True when the workload argument names a Dinero trace rather than a
/// kernel file — the sweep commands stream it instead of parsing loopir.
pub(crate) fn is_din_path(path: &str) -> bool {
    Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("din"))
}

/// Prepares a `.din` workload: one streaming pass fingerprints the trace
/// (bounded memory however large the file is).
pub(crate) fn load_trace(path: &str) -> Result<TraceWorkload, RunError> {
    TraceWorkload::from_path(path).map_err(trace_error)
}

/// Validates cache geometry at the CLI/parse boundary. Everything
/// downstream (simulator lanes, the analytic fast path) assumes
/// power-of-two line and set counts for its shift-based address math, so
/// a bad geometry must die here with a typed exit-2 error — never reach
/// the sweep and return a silently wrong answer.
pub(crate) fn validate_geometry(
    cache: usize,
    line: usize,
    assoc: usize,
) -> Result<CacheConfig, RunError> {
    CacheConfig::new(cache, line, assoc)
        .map_err(|e| RunError::Geometry(format!("invalid cache geometry: {e}")))
}

fn simulate_din(
    path: &str,
    cache: usize,
    line: usize,
    assoc: usize,
    classify: bool,
    format: &str,
) -> Result<String, RunError> {
    let config = validate_geometry(cache, line, assoc)?;
    // Streamed: the trace is pulled through in fixed-capacity chunks, so
    // peak memory is one chunk however large the file is. Chunked feeding
    // is bit-identical to a whole-trace scan (lane state persists across
    // `feed` calls).
    let mut source = DinSource::open(path).map_err(source_error)?;
    let mut sim = Simulator::with_options(config, BusEncoding::Gray, classify);
    let mut chunk: Vec<TraceEvent> = Vec::with_capacity(DEFAULT_CHUNK_CAPACITY);
    let mut records = 0u64;
    loop {
        let n = source
            .fill(&mut chunk, DEFAULT_CHUNK_CAPACITY)
            .map_err(source_error)?;
        if n == 0 {
            break;
        }
        records += n as u64;
        sim.feed(&chunk);
    }
    let report = sim.finish();
    let stats = &report.stats;
    let mut out = String::new();
    match format {
        "csv" => {
            let mut header = String::from(
                "records,reads,read_hits,writes,write_hits,fills,evictions,writebacks,\
                 buffer_hits,miss_rate",
            );
            let mut row = format!(
                "{records},{},{},{},{},{},{},{},{},{:.6}",
                stats.reads,
                stats.read_hits,
                stats.writes,
                stats.write_hits,
                stats.fills,
                stats.evictions,
                stats.writebacks,
                stats.buffer_hits,
                stats.miss_rate()
            );
            if let Some(c) = &report.miss_classes {
                header.push_str(",compulsory,capacity,conflict");
                let _ = write!(row, ",{},{},{}", c.compulsory, c.capacity, c.conflict);
            }
            let _ = writeln!(out, "{header}");
            let _ = writeln!(out, "{row}");
        }
        "json" => {
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "  \"trace\": \"{path}\",");
            let _ = writeln!(out, "  \"config\": \"{config}\",");
            let _ = writeln!(out, "  \"records\": {records},");
            let _ = writeln!(out, "  \"reads\": {},", stats.reads);
            let _ = writeln!(out, "  \"read_hits\": {},", stats.read_hits);
            let _ = writeln!(out, "  \"writes\": {},", stats.writes);
            let _ = writeln!(out, "  \"write_hits\": {},", stats.write_hits);
            let _ = writeln!(out, "  \"fills\": {},", stats.fills);
            let _ = writeln!(out, "  \"evictions\": {},", stats.evictions);
            let _ = writeln!(out, "  \"writebacks\": {},", stats.writebacks);
            let _ = writeln!(out, "  \"buffer_hits\": {},", stats.buffer_hits);
            match &report.miss_classes {
                Some(c) => {
                    let _ = writeln!(out, "  \"miss_rate\": {:.6},", stats.miss_rate());
                    let _ = writeln!(
                        out,
                        "  \"miss_classes\": {{\"compulsory\":{},\"capacity\":{},\"conflict\":{}}}",
                        c.compulsory, c.capacity, c.conflict
                    );
                }
                None => {
                    let _ = writeln!(out, "  \"miss_rate\": {:.6}", stats.miss_rate());
                }
            }
            let _ = writeln!(out, "}}");
        }
        _ => {
            let _ = writeln!(out, "{records} records from {path} on {config}");
            let _ = writeln!(out, "{stats}");
            if let Some(c) = &report.miss_classes {
                let _ = writeln!(
                    out,
                    "miss classes: compulsory {}  capacity {}  conflict {}",
                    c.compulsory, c.capacity, c.conflict
                );
            }
        }
    }
    Ok(out)
}

/// Maps the validated `--engine` keyword to the sweep engine (the parser
/// only lets `fused` and `per-design` through).
pub(crate) fn engine_kind(engine: &str) -> Engine {
    match engine {
        "per-design" => Engine::PerDesign,
        _ => Engine::Fused,
    }
}

/// Builds the evaluator shared by `explore` and `pareto`: off-chip part
/// from the keyword (or a custom `Em`), optionally with natural layout.
pub(crate) fn make_evaluator(part: &str, em_nj: Option<f64>, natural: bool) -> Evaluator {
    let part = match em_nj {
        Some(em) => SramPart::custom(format!("custom (Em = {em} nJ)"), em),
        None => match part {
            "lp2m" => SramPart::low_power_2mbit(),
            "16m" => SramPart::sram_16mbit(),
            _ => SramPart::cy7c_2mbit(),
        },
    };
    let mut evaluator = Evaluator::with_part(part);
    if natural {
        evaluator.placement = PlacementMode::Natural;
    }
    evaluator
}

pub(crate) fn load(path: &str) -> Result<Kernel, RunError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RunError::Io(format!("cannot read `{path}`: {e}")))?;
    parse_kernel(&text).map_err(|e| RunError::Other(format!("{path}: {e}").into()))
}

/// Analytic feasibility gate shared by the sweep and search commands: if
/// the §3 minimum conflict-free cache for a design's line size exceeds
/// its cache size for *every* design in the grid, no configuration can
/// approach the compulsory floor and the run cannot say anything useful —
/// that is a typed input error (exit 1), not an empty result stream.
fn check_feasibility<I: Iterator<Item = (usize, usize)>>(
    kernel: &Kernel,
    mut grid: I,
) -> Result<(), RunError> {
    let mut memo: HashMap<usize, u64> = HashMap::new();
    let mut smallest_bound = u64::MAX;
    let mut any = false;
    // `all` short-circuits on the first feasible design.
    let all_infeasible = grid.all(|(t, l)| {
        any = true;
        let bound = *memo
            .entry(l)
            .or_insert_with(|| MinCacheReport::analyze(kernel, l as u64).min_pow2_cache_bytes());
        smallest_bound = smallest_bound.min(bound);
        (t as u64) < bound
    });
    if any && all_infeasible {
        return Err(RunError::Other(
            format!(
                "design grid for kernel {} is infeasible: every cache size is below the \
                 kernel's minimum conflict-free cache ({smallest_bound} B at the best line \
                 size); see `memx min-cache`",
                kernel.name
            )
            .into(),
        ));
    }
    Ok(())
}

/// Pre-sweep validation (satellite guard against silently useless runs):
/// an empty design grid is an error; an analytically all-infeasible grid
/// is an error; tilings larger than every loop's trip count are flagged
/// as warnings (they degenerate to untiled runs).
pub(crate) fn check_sweep_inputs(
    kernel: &Kernel,
    designs: &[CacheDesign],
    stderr: &mut String,
) -> Result<(), RunError> {
    if designs.is_empty() {
        return Err(RunError::Other(
            format!(
                "design grid for kernel {} is empty: nothing to sweep",
                kernel.name
            )
            .into(),
        ));
    }
    // Geometry first: a non-power-of-two line or set count would silently
    // mis-index in the shift-based simulator, so it must die here.
    if let Some((design, e)) = designs
        .iter()
        .find_map(|d| d.cache_config().err().map(|e| (d, e)))
    {
        return Err(RunError::Geometry(format!(
            "invalid cache geometry in design grid: {design}: {e}"
        )));
    }
    check_feasibility(kernel, designs.iter().map(|d| (d.cache_size, d.line)))?;
    let max_trip = kernel
        .nest
        .loops
        .iter()
        .filter_map(|l| l.const_trip_count())
        .max();
    if let Some(max_trip) = max_trip {
        let mut excessive: Vec<u64> = designs
            .iter()
            .map(|d| d.tiling)
            .filter(|&b| b > 1 && b > max_trip)
            .collect();
        excessive.sort_unstable();
        excessive.dedup();
        if !excessive.is_empty() {
            let _ = writeln!(
                stderr,
                "warning: tiling size(s) {excessive:?} exceed the largest loop trip count \
                 ({max_trip}) of kernel {}; they behave as untiled",
                kernel.name
            );
        }
    }
    Ok(())
}

/// [`check_sweep_inputs`] for grids too large to materialize (the
/// expansive search spaces run to 10⁶–10⁷ candidates): the same
/// validations, derived from the grid axes alone.
fn check_space_inputs(
    kernel: &Kernel,
    space: &DesignSpace,
    stderr: &mut String,
) -> Result<(), RunError> {
    if space.design_count() == 0 {
        return Err(RunError::Other(
            format!(
                "design grid for kernel {} is empty: nothing to sweep",
                kernel.name
            )
            .into(),
        ));
    }
    // Geometry first, from the axes alone (the grid is too large to
    // materialize): every size on a power-of-two axis must actually be one.
    for (field, values) in [
        ("cache size", &space.cache_sizes),
        ("line size", &space.line_sizes),
        ("associativity", &space.assocs),
    ] {
        if let Some(&v) = values.iter().find(|&&v| v == 0 || !v.is_power_of_two()) {
            return Err(RunError::Geometry(format!(
                "invalid cache geometry in design space: {field} {v} is not a power of two"
            )));
        }
    }
    // Valid (T, L) pairs that contribute at least one design.
    let pairs = || {
        space.cache_sizes.iter().flat_map(|&t| {
            space.line_sizes.iter().filter_map(move |&l| {
                if l > t || t / l < space.min_lines {
                    return None;
                }
                let lines = (t / l) as u64;
                let has_assoc = space.assocs.iter().any(|&s| s as u64 <= lines);
                let has_tiling = space.tilings.iter().any(|&b| b <= lines);
                (has_assoc && has_tiling).then_some((t, l))
            })
        })
    };
    check_feasibility(kernel, pairs())?;
    let max_trip = kernel
        .nest
        .loops
        .iter()
        .filter_map(|l| l.const_trip_count())
        .max();
    if let Some(max_trip) = max_trip {
        let max_lines = pairs().map(|(t, l)| (t / l) as u64).max().unwrap_or(0);
        let mut excessive: Vec<u64> = space
            .tilings
            .iter()
            .copied()
            .filter(|&b| b > 1 && b > max_trip && b <= max_lines)
            .collect();
        excessive.sort_unstable();
        excessive.dedup();
        if !excessive.is_empty() {
            // Expansive grids have hundreds of tilings; keep the warning
            // to one line by summarizing the range.
            let shown = if excessive.len() > 8 {
                format!(
                    "{} tiling sizes in {}..={}",
                    excessive.len(),
                    excessive.first().expect("non-empty"),
                    excessive.last().expect("non-empty")
                )
            } else {
                format!("tiling size(s) {excessive:?}")
            };
            let _ = writeln!(
                stderr,
                "warning: {shown} exceed the largest loop trip count ({max_trip}) of \
                 kernel {}; they behave as untiled",
                kernel.name
            );
        }
    }
    Ok(())
}

/// Probes that the checkpoint sidecar will be writable before a long
/// sweep starts, using the same `.tmp` neighbour the atomic writer uses.
/// An unwritable path is an I/O error (exit 2) up front, not a silent
/// stream of failed flushes an hour in.
fn probe_checkpoint_writable(path: &Path) -> Result<(), RunError> {
    let probe = path.with_extension("tmp");
    std::fs::File::create(&probe)
        .map_err(|e| RunError::Io(format!("cannot write checkpoint `{}`: {e}", path.display())))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// Translates the CLI supervisor flags into [`SweepOptions`], probing the
/// checkpoint sidecar up front (an unwritable path is exit 2 before the
/// sweep starts, not a silent stream of failed flushes an hour in).
fn sweep_options(supervise: &Supervise, stderr: &mut String) -> Result<SweepOptions, RunError> {
    let checkpoint = match &supervise.checkpoint {
        Some(path) => {
            let path = PathBuf::from(path);
            if supervise.resume && !path.exists() {
                let _ = writeln!(
                    stderr,
                    "note: checkpoint `{}` not found; starting a fresh sweep",
                    path.display()
                );
            }
            probe_checkpoint_writable(&path)?;
            Some(CheckpointPolicy {
                path,
                every: match supervise.checkpoint_every {
                    0 => 32,
                    n => n,
                },
                resume: supervise.resume,
            })
        }
        None => None,
    };
    Ok(SweepOptions {
        checkpoint,
        deadline: supervise.deadline_secs.map(Duration::from_secs_f64),
        fault: FaultPlan::none(),
    })
}

/// Renders the supervisor's stderr notes — resume count, quarantine
/// warnings, partial-result warning — shared by the kernel and trace
/// sweeps so the two paths stay word-for-word comparable.
fn note_supervised(outcome: &SweepOutcome, total: usize, stderr: &mut String) {
    let t = &outcome.telemetry;
    if t.records_resumed > 0 {
        let _ = writeln!(
            stderr,
            "note: resumed {} of {total} records from the checkpoint",
            t.records_resumed
        );
    }
    for e in &outcome.errors {
        let _ = writeln!(stderr, "warning: {e}");
    }
    if t.cancelled {
        let _ = writeln!(
            stderr,
            "warning: deadline reached; result is partial ({} of {total} designs)",
            t.designs_evaluated
        );
    }
}

/// Runs the supervised sweep behind `--checkpoint/--resume/--deadline`,
/// translating CLI flags into [`SweepOptions`] and supervisor events into
/// stderr notes (stdout stays byte-identical to an unsupervised run).
fn run_supervised(
    explorer: &Explorer,
    kernel: &Kernel,
    designs: &[CacheDesign],
    supervise: &Supervise,
    stderr: &mut String,
) -> Result<SweepOutcome, RunError> {
    let options = sweep_options(supervise, stderr)?;
    let outcome = explorer
        .explore_supervised(kernel, designs, &options)
        .map_err(|e| match e {
            // A rejected checkpoint (unreadable, corrupt, truncated,
            // or from a different sweep) follows the I/O contract.
            ExploreError::Checkpoint(c) => RunError::Io(c.to_string()),
            other => RunError::Other(other.to_string().into()),
        })?;
    note_supervised(&outcome, designs.len(), stderr);
    Ok(outcome)
}

/// [`run_supervised`] for streamed `.din` workloads: same checkpoint /
/// resume / deadline translation, driving the chunked trace sweep instead
/// of the arena-based kernel sweep.
fn run_trace_supervised(
    explorer: &Explorer,
    workload: &TraceWorkload,
    designs: &[CacheDesign],
    supervise: &Supervise,
    stderr: &mut String,
) -> Result<SweepOutcome, RunError> {
    let options = sweep_options(supervise, stderr)?;
    let outcome = explorer
        .explore_trace_supervised(workload, designs, &options)
        .map_err(trace_error)?;
    note_supervised(&outcome, designs.len(), stderr);
    Ok(outcome)
}

/// The streamed sweep has one engine (banked shards over the stream), so
/// a non-default `--engine` on a `.din` workload is noted and ignored.
fn warn_trace_engine(engine: &str, stderr: &mut String) {
    if engine != "fused" {
        let _ = writeln!(
            stderr,
            "warning: --engine {engine} is ignored for `.din` traces \
             (streamed sweeps are always banked)"
        );
    }
}

/// Runs the exhaustive sweep (`memx explore`). The bool in the result is
/// the cancellation flag (deadline reached → partial output) — the serve
/// layer uses it to keep partial results out of the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore(
    kernel: &Kernel,
    evaluator: Evaluator,
    analytical: bool,
    bound_cycles: Option<f64>,
    bound_energy: Option<f64>,
    pareto: bool,
    telemetry: bool,
    engine: Engine,
    analytic: bool,
    supervise: &Supervise,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    let space = DesignSpace::paper();
    let designs = space.designs();
    check_sweep_inputs(kernel, &designs, &mut stderr)?;
    let (records, sweep_telemetry) = if analytical {
        if supervise.is_active() {
            let _ = writeln!(
                stderr,
                "warning: --checkpoint/--deadline are ignored with --analytical (no sweep runs)"
            );
        }
        if obs_flags.is_active() {
            let _ = writeln!(
                stderr,
                "warning: --log-json/--progress are ignored with --analytical (no sweep runs)"
            );
        }
        let records = designs
            .iter()
            .map(|&d| evaluator.evaluate_analytical(kernel, d))
            .collect();
        (records, None)
    } else {
        let obs = build_obs(obs_flags)?;
        let mut explorer = Explorer::new(evaluator)
            .with_engine(engine)
            .with_analytic(analytic);
        if let Some(w) = workers {
            explorer = explorer.with_workers(w);
        }
        if let Some(o) = &obs {
            explorer = explorer.with_obs(Arc::clone(o));
        }
        let result = if supervise.is_active() {
            let outcome = run_supervised(&explorer, kernel, &designs, supervise, &mut stderr)?;
            (outcome.completed_records(), Some(outcome.telemetry))
        } else {
            let (records, t) = explorer.explore_with_telemetry(kernel, &space);
            (records, Some(t))
        };
        if let Some(o) = &obs {
            o.finish();
        }
        result
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explored {} configurations of kernel {} ({})",
        records.len(),
        kernel.name,
        if analytical {
            "analytical model"
        } else {
            "trace-driven simulation"
        }
    );
    write_selection(&mut out, &records, bound_cycles, bound_energy, pareto);
    // The summary goes to stderr, never into the record stream: with
    // `--telemetry` a piped stdout must stay exactly the records.
    let cancelled = sweep_telemetry.as_ref().is_some_and(|t| t.cancelled);
    if telemetry {
        match sweep_telemetry {
            Some(t) => {
                let _ = writeln!(stderr, "{t}");
            }
            None => {
                let _ = writeln!(
                    stderr,
                    "telemetry: not available for the analytical model (no traces are simulated)"
                );
            }
        }
    }
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        cancelled,
    ))
}

/// Writes the `minimum energy :` / `minimum time   :` / bounded-selection
/// / frontier lines over a completed record set. Shared by the kernel and
/// trace explore paths so the round-trip smoke can diff their selections
/// byte-for-byte.
pub(crate) fn write_selection(
    out: &mut String,
    records: &[Record],
    bound_cycles: Option<f64>,
    bound_energy: Option<f64>,
    pareto: bool,
) {
    if let Some(r) = select::min_energy(records) {
        let _ = writeln!(out, "minimum energy : {}", fmt_record(r));
    }
    if let Some(r) = select::min_cycles(records) {
        let _ = writeln!(out, "minimum time   : {}", fmt_record(r));
    }
    if let Some(bound) = bound_cycles {
        match select::min_energy_bounded(records, bound) {
            Some(r) => {
                let _ = writeln!(out, "min energy @ cycles<={bound:.0} : {}", fmt_record(r));
            }
            None => {
                let _ = writeln!(out, "min energy @ cycles<={bound:.0} : infeasible");
            }
        }
    }
    if let Some(bound) = bound_energy {
        match select::min_cycles_bounded(records, bound) {
            Some(r) => {
                let _ = writeln!(out, "min time @ energy<={bound:.0} nJ : {}", fmt_record(r));
            }
            None => {
                let _ = writeln!(out, "min time @ energy<={bound:.0} nJ : infeasible");
            }
        }
    }
    if pareto {
        let _ = writeln!(out, "pareto frontier:");
        for r in select::pareto(records) {
            let _ = writeln!(out, "  {}", fmt_record(r));
        }
    }
}

/// `memx explore` over an external `.din` trace: the trace grid (tiling
/// pinned at 1) is swept by streaming the file in chunks through banked
/// replay shards, then the selection lines render exactly as for a kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_trace(
    workload: &TraceWorkload,
    evaluator: Evaluator,
    bound_cycles: Option<f64>,
    bound_energy: Option<f64>,
    pareto: bool,
    telemetry: bool,
    engine: &str,
    analytic: bool,
    supervise: &Supervise,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    warn_trace_engine(engine, &mut stderr);
    let designs = TraceWorkload::design_space().designs();
    let obs = build_obs(obs_flags)?;
    let mut explorer = Explorer::new(evaluator).with_analytic(analytic);
    if let Some(w) = workers {
        explorer = explorer.with_workers(w);
    }
    if let Some(o) = &obs {
        explorer = explorer.with_obs(Arc::clone(o));
    }
    let outcome = run_trace_supervised(&explorer, workload, &designs, supervise, &mut stderr)?;
    if let Some(o) = &obs {
        o.finish();
    }
    let records = outcome.completed_records();
    let sweep = outcome.telemetry;
    let cancelled = sweep.cancelled;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explored {} configurations of trace {} ({} events, streamed)",
        records.len(),
        workload.name(),
        workload.events()
    );
    write_selection(&mut out, &records, bound_cycles, bound_energy, pareto);
    if telemetry {
        let _ = writeln!(stderr, "{sweep}");
    }
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        cancelled,
    ))
}

/// The one-line record format shared by `explore` and `search` stdout,
/// so the two commands' `minimum energy :` / `minimum time   :` lines
/// stay byte-diffable (the CI search smoke job greps exactly that).
pub(crate) fn fmt_record(r: &memexplore::Record) -> String {
    format!(
        "{}  miss rate {:.3}  cycles {:.0}  energy {:.0} nJ",
        r.design, r.miss_rate, r.cycles, r.energy_nj
    )
}

/// Runs the certified bound-guided search (`memx search`) and renders the
/// incumbent plus its gap certificate in the requested format.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search(
    kernel: &Kernel,
    evaluator: Evaluator,
    objective: Objective,
    space_name: &str,
    beam: Option<usize>,
    gap: f64,
    deadline_secs: Option<f64>,
    format: &str,
    telemetry: bool,
    analytic: bool,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    let space = if space_name == "expansive" {
        DesignSpace::expansive()
    } else {
        DesignSpace::paper()
    };
    check_space_inputs(kernel, &space, &mut stderr)?;
    let obs = build_obs(obs_flags)?;
    let mut explorer = Explorer::new(evaluator).with_analytic(analytic);
    if let Some(w) = workers {
        explorer = explorer.with_workers(w);
    }
    if let Some(o) = &obs {
        explorer = explorer.with_obs(Arc::clone(o));
    }
    let options = SearchOptions {
        objective,
        beam,
        gap,
        deadline: deadline_secs.map(Duration::from_secs_f64),
    };
    let outcome = explorer.search(kernel, &space, &options);
    if let Some(o) = &obs {
        o.finish();
    }
    if outcome.cancelled {
        let _ = writeln!(
            stderr,
            "warning: deadline reached; result is anytime ({} of {} candidates simulated)",
            outcome.telemetry.designs_evaluated, outcome.candidates
        );
    }
    if telemetry && format != "json" {
        let _ = writeln!(stderr, "{}", outcome.telemetry);
        let _ = writeln!(
            stderr,
            "search: {} expansions, {} beam-discarded, certified gap {:.6}",
            outcome.expansions,
            outcome.beam_discarded,
            outcome.gap()
        );
    }

    let out = render_search(
        "kernel",
        &kernel.name,
        space_name,
        &outcome,
        format,
        telemetry,
    );
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        outcome.cancelled,
    ))
}

/// Renders a [`SearchOutcome`] in the requested format. `subject` is
/// `"kernel"` or `"trace"`; it names the JSON member and the text heading
/// so the two search paths emit the same shape.
fn render_search(
    subject: &str,
    name: &str,
    space_name: &str,
    outcome: &SearchOutcome,
    format: &str,
    telemetry: bool,
) -> String {
    let objective = outcome.objective;
    let evaluated = outcome.telemetry.designs_evaluated;
    let pruned = outcome.telemetry.designs_pruned;
    let mut out = String::new();
    match format {
        "csv" => {
            let _ = writeln!(
                out,
                "objective,design,cache,line,assoc,tiling,miss_rate,cycles,energy_nj,\
                 cost,lower_bound,gap,relative_gap,complete,cancelled,candidates,\
                 evaluated,pruned"
            );
            if let Some(r) = &outcome.incumbent {
                let _ = writeln!(
                    out,
                    "\"{}\",{},{},{},{},{},{:.6},{:.1},{:.3},{:.3},{:.3},{:.6},{:.6},{},{},{},{},{}",
                    objective,
                    r.design,
                    r.design.cache_size,
                    r.design.line,
                    r.design.assoc,
                    r.design.tiling,
                    r.miss_rate,
                    r.cycles,
                    r.energy_nj,
                    outcome.incumbent_cost(),
                    outcome.lower_bound,
                    outcome.gap(),
                    outcome.relative_gap(),
                    outcome.complete,
                    outcome.cancelled,
                    outcome.candidates,
                    evaluated,
                    pruned
                );
            }
        }
        "json" => {
            let _ = writeln!(out, "{{");
            let _ = writeln!(out, "  \"{subject}\": \"{name}\",");
            let _ = writeln!(out, "  \"objective\": \"{objective}\",");
            let _ = writeln!(out, "  \"space\": \"{space_name}\",");
            let _ = writeln!(out, "  \"candidates\": {},", outcome.candidates);
            let _ = writeln!(out, "  \"evaluated\": {evaluated},");
            let _ = writeln!(out, "  \"pruned\": {pruned},");
            let _ = writeln!(out, "  \"expansions\": {},", outcome.expansions);
            let _ = writeln!(out, "  \"beam_discarded\": {},", outcome.beam_discarded);
            match &outcome.incumbent {
                Some(r) => {
                    let _ = writeln!(
                        out,
                        concat!(
                            "  \"incumbent\": {{\"design\":\"{}\",\"cache\":{},",
                            "\"line\":{},\"assoc\":{},\"tiling\":{},",
                            "\"miss_rate\":{:.6},\"cycles\":{:.1},",
                            "\"energy_nj\":{:.3},\"conflict_free\":{}}},"
                        ),
                        r.design,
                        r.design.cache_size,
                        r.design.line,
                        r.design.assoc,
                        r.design.tiling,
                        r.miss_rate,
                        r.cycles,
                        r.energy_nj,
                        r.conflict_free
                    );
                    let _ = writeln!(out, "  \"cost\": {:.3},", outcome.incumbent_cost());
                    let _ = writeln!(out, "  \"gap\": {:.6},", outcome.gap());
                    let _ = writeln!(out, "  \"relative_gap\": {:.6},", outcome.relative_gap());
                }
                None => {
                    let _ = writeln!(out, "  \"incumbent\": null,");
                }
            }
            if outcome.lower_bound.is_finite() {
                let _ = writeln!(out, "  \"lower_bound\": {:.3},", outcome.lower_bound);
            }
            if telemetry {
                let _ = writeln!(out, "  \"telemetry\": {},", outcome.telemetry.to_json());
            }
            let _ = writeln!(out, "  \"complete\": {},", outcome.complete);
            let _ = writeln!(out, "  \"cancelled\": {}", outcome.cancelled);
            let _ = writeln!(out, "}}");
        }
        _ => {
            let _ = writeln!(
                out,
                "searched {subject} {name}: {evaluated} of {} candidates simulated, \
                 {pruned} pruned (objective {objective}, space {space_name})",
                outcome.candidates
            );
            match &outcome.incumbent {
                Some(r) => {
                    let label = match objective {
                        Objective::Energy => "minimum energy ",
                        Objective::Cycles => "minimum time   ",
                        Objective::Weighted { .. } => "minimum weighted",
                    };
                    let _ = writeln!(out, "{label}: {}", fmt_record(r));
                    let _ = writeln!(out, "certified lower bound : {:.3}", outcome.lower_bound);
                    let _ = writeln!(
                        out,
                        "certified gap : {:.3} ({:.2}%){}",
                        outcome.gap(),
                        outcome.relative_gap() * 100.0,
                        if outcome.complete {
                            ", optimum certified"
                        } else {
                            ""
                        }
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "no incumbent: the search stopped before its first simulation"
                    );
                    if outcome.lower_bound.is_finite() {
                        let _ = writeln!(out, "certified lower bound : {:.3}", outcome.lower_bound);
                    }
                }
            }
        }
    }
    out
}

/// `memx search` over an external `.din` trace. The trace grid is small
/// (tiling is pinned at 1) and every design replays the same recorded
/// stream, so the "search" is an exhaustive streamed sweep followed by
/// exact selection; the certificate is the incumbent's own cost, which is
/// trivially tight when the sweep ran to completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_trace(
    workload: &TraceWorkload,
    evaluator: Evaluator,
    objective: Objective,
    beam: Option<usize>,
    deadline_secs: Option<f64>,
    format: &str,
    telemetry: bool,
    analytic: bool,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    if beam.is_some() {
        let _ = writeln!(
            stderr,
            "warning: --beam is ignored for `.din` traces (the trace grid is swept exhaustively)"
        );
    }
    let designs = TraceWorkload::design_space().designs();
    let obs = build_obs(obs_flags)?;
    let mut explorer = Explorer::new(evaluator).with_analytic(analytic);
    if let Some(w) = workers {
        explorer = explorer.with_workers(w);
    }
    if let Some(o) = &obs {
        explorer = explorer.with_obs(Arc::clone(o));
    }
    let supervise = Supervise {
        deadline_secs,
        ..Supervise::default()
    };
    let sweep = run_trace_supervised(&explorer, workload, &designs, &supervise, &mut stderr)?;
    if let Some(o) = &obs {
        o.finish();
    }
    let cancelled = sweep.telemetry.cancelled;
    let incumbent_index = trace_search_winner(&sweep.records, objective);
    let incumbent = incumbent_index.and_then(|i| sweep.records[i].clone());
    // The exhaustive sweep needs no relaxation: a finished sweep certifies
    // the incumbent exactly (gap 0); a deadline-cut sweep certifies
    // nothing beyond cost >= 0, which every objective satisfies.
    let lower_bound = match (&incumbent, cancelled) {
        (Some(r), false) => objective.cost(r),
        _ => 0.0,
    };
    let outcome = SearchOutcome {
        objective,
        incumbent,
        incumbent_index,
        lower_bound,
        complete: !cancelled && incumbent_index.is_some(),
        cancelled,
        candidates: designs.len(),
        expansions: 0,
        beam_discarded: 0,
        telemetry: sweep.telemetry,
    };
    if telemetry && format != "json" {
        let _ = writeln!(stderr, "{}", outcome.telemetry);
    }
    let out = render_search(
        "trace",
        workload.name(),
        "trace",
        &outcome,
        format,
        telemetry,
    );
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        cancelled,
    ))
}

/// Selects the best completed record under `objective`, replicating the
/// searcher's total order (objective cost, then the secondary metrics,
/// then smallest cache and lowest index) so `memx search` on a trace names
/// the same design the certified kernel search would.
fn trace_search_winner(records: &[Option<Record>], objective: Objective) -> Option<usize> {
    let floats = |r: &Record| -> [f64; 3] {
        match objective {
            Objective::Energy => [r.energy_nj, r.cycles, 0.0],
            Objective::Cycles => [r.cycles, r.energy_nj, 0.0],
            Objective::Weighted { .. } => [objective.cost(r), r.energy_nj, r.cycles],
        }
    };
    let mut best: Option<(usize, [f64; 3])> = None;
    for (index, record) in records.iter().enumerate() {
        let Some(r) = record else { continue };
        let candidate = floats(r);
        let better = match &best {
            None => true,
            Some((best_index, best_floats)) => {
                let mut decided = None;
                for (a, b) in candidate.iter().zip(best_floats.iter()) {
                    match a.partial_cmp(b).expect("objective costs are finite") {
                        Ordering::Equal => continue,
                        order => {
                            decided = Some(order);
                            break;
                        }
                    }
                }
                let best_record = records[*best_index].as_ref().expect("winner is complete");
                decided.unwrap_or_else(|| {
                    (r.design.cache_size, index).cmp(&(best_record.design.cache_size, *best_index))
                }) == Ordering::Less
            }
        };
        if better {
            best = Some((index, candidate));
        }
    }
    best.map(|(index, _)| index)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn pareto_frontier(
    kernel: &Kernel,
    evaluator: Evaluator,
    format: &str,
    exhaustive: bool,
    telemetry: bool,
    engine: Engine,
    analytic: bool,
    supervise: &Supervise,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    let space = DesignSpace::paper();
    let designs = space.designs();
    check_sweep_inputs(kernel, &designs, &mut stderr)?;
    let obs = build_obs(obs_flags)?;
    let mut explorer = Explorer::new(evaluator)
        .with_engine(engine)
        .with_analytic(analytic);
    if let Some(w) = workers {
        explorer = explorer.with_workers(w);
    }
    if let Some(o) = &obs {
        explorer = explorer.with_obs(Arc::clone(o));
    }
    let (frontier, sweep) = if supervise.is_active() {
        // The supervised sweep is exhaustive over the grid; the frontier
        // over its completed records is bit-identical to the pruned one
        // when the run is clean (the pareto oracle tests pin that), and
        // well-formed over whatever completed when it is not.
        let outcome = run_supervised(&explorer, kernel, &designs, supervise, &mut stderr)?;
        let completed = outcome.completed_records();
        let frontier = select::pareto3(&completed);
        let mut t = outcome.telemetry;
        t.frontier_size = frontier.len();
        (frontier, t)
    } else if exhaustive {
        explorer.pareto_exhaustive(kernel, &space)
    } else {
        explorer.pareto_pruned(kernel, &space)
    };
    if let Some(o) = &obs {
        o.finish();
    }
    let cancelled = sweep.cancelled;
    if frontier.is_empty() {
        let _ = writeln!(
            stderr,
            "warning: the Pareto frontier of kernel {} is empty (no designs completed)",
            kernel.name
        );
    }

    let engine_label = if supervise.is_active() {
        "supervised"
    } else if exhaustive {
        "exhaustive"
    } else {
        "pruned"
    };
    let out = render_frontier(
        "kernel",
        &kernel.name,
        engine_label,
        &frontier,
        &sweep,
        format,
        telemetry,
        &mut stderr,
    );
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        cancelled,
    ))
}

/// `memx pareto` over an external `.din` trace: exhaustive streamed sweep
/// of the trace grid, then the 3-objective frontier renders exactly as for
/// a kernel (the JSON member is `"trace"` instead of `"kernel"`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pareto_trace(
    workload: &TraceWorkload,
    evaluator: Evaluator,
    format: &str,
    telemetry: bool,
    engine: &str,
    analytic: bool,
    supervise: &Supervise,
    obs_flags: &ObsFlags,
    workers: Option<usize>,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    warn_trace_engine(engine, &mut stderr);
    let designs = TraceWorkload::design_space().designs();
    let obs = build_obs(obs_flags)?;
    let mut explorer = Explorer::new(evaluator).with_analytic(analytic);
    if let Some(w) = workers {
        explorer = explorer.with_workers(w);
    }
    if let Some(o) = &obs {
        explorer = explorer.with_obs(Arc::clone(o));
    }
    let outcome = run_trace_supervised(&explorer, workload, &designs, supervise, &mut stderr)?;
    if let Some(o) = &obs {
        o.finish();
    }
    let completed = outcome.completed_records();
    let frontier = select::pareto3(&completed);
    let mut sweep = outcome.telemetry;
    sweep.frontier_size = frontier.len();
    let cancelled = sweep.cancelled;
    if frontier.is_empty() {
        let _ = writeln!(
            stderr,
            "warning: the Pareto frontier of trace {} is empty (no designs completed)",
            workload.name()
        );
    }
    let out = render_frontier(
        "trace",
        workload.name(),
        "streamed",
        &frontier,
        &sweep,
        format,
        telemetry,
        &mut stderr,
    );
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        cancelled,
    ))
}

/// Renders a Pareto frontier as JSON or CSV. `subject` is `"kernel"` or
/// `"trace"`; CSV telemetry goes to `stderr` so piped rows stay pure.
#[allow(clippy::too_many_arguments)]
fn render_frontier(
    subject: &str,
    name: &str,
    engine_label: &str,
    frontier: &[Record],
    sweep: &SweepTelemetry,
    format: &str,
    telemetry: bool,
    stderr: &mut String,
) -> String {
    let mut out = String::new();
    if format == "json" {
        let rows: Vec<String> = frontier
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"cache\":{},\"line\":{},\"assoc\":{},",
                        "\"tiling\":{},\"miss_rate\":{:.6},\"cycles\":{:.1},",
                        "\"energy_nj\":{:.3},\"conflict_free\":{}}}"
                    ),
                    r.design.cache_size,
                    r.design.line,
                    r.design.assoc,
                    r.design.tiling,
                    r.miss_rate,
                    r.cycles,
                    r.energy_nj,
                    r.conflict_free
                )
            })
            .collect();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"{subject}\": \"{name}\",");
        let _ = writeln!(out, "  \"engine\": \"{engine_label}\",");
        let _ = writeln!(out, "  \"frontier_size\": {},", frontier.len());
        let _ = writeln!(out, "  \"frontier\": [\n{}\n  ]{}", rows.join(",\n"), {
            if telemetry {
                ","
            } else {
                ""
            }
        });
        if telemetry {
            let _ = writeln!(out, "  \"telemetry\": {}", sweep.to_json());
        }
        let _ = writeln!(out, "}}");
    } else {
        let _ = writeln!(
            out,
            "cache,line,assoc,tiling,miss_rate,cycles,energy_nj,conflict_free"
        );
        for r in frontier {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.6},{:.1},{:.3},{}",
                r.design.cache_size,
                r.design.line,
                r.design.assoc,
                r.design.tiling,
                r.miss_rate,
                r.cycles,
                r.energy_nj,
                r.conflict_free
            );
        }
        // Telemetry goes to stderr so piped CSV stays pure rows (the JSON
        // format embeds it instead, where it is valid structure).
        if telemetry {
            let _ = writeln!(stderr, "{sweep}");
        }
    }
    out
}

fn simulate(
    kernel: &Kernel,
    cache: usize,
    line: usize,
    assoc: usize,
    tiling: u64,
    natural: bool,
    classify: bool,
) -> Result<String, RunError> {
    // Validate geometry up front so the user gets a typed exit-2 error,
    // not a panic or a silently mis-indexed sweep.
    let config = validate_geometry(cache, line, assoc)?;
    // The cycle model only covers the paper's parameter ranges; reject the
    // rest here rather than panicking deep inside the evaluator.
    if ![1, 2, 4, 8, 16, 32, 64].contains(&assoc) {
        return Err(format!(
            "associativity {assoc} is outside the cycle model (use a power of two up to 64)"
        )
        .into());
    }
    if !(4..=1024).contains(&line) {
        return Err(
            format!("line size {line} B is outside the cycle model (use 4 to 1024)").into(),
        );
    }
    if tiling == 0 {
        return Err("tiling must be at least 1 (1 = untiled)".to_string().into());
    }
    let mut evaluator = Evaluator::default();
    if natural {
        evaluator.placement = PlacementMode::Natural;
    }
    let design = CacheDesign::new(cache, line, assoc, tiling);
    let record = evaluator.evaluate(kernel, design);

    let mut out = String::new();
    let _ = writeln!(out, "kernel {} on {}", kernel.name, config);
    let _ = writeln!(
        out,
        "reads {}  miss rate {:.4}  cycles {:.0}  energy {:.0} nJ  conflict-free {}",
        record.trip_count, record.miss_rate, record.cycles, record.energy_nj, record.conflict_free
    );
    if classify {
        let (layout, _) = evaluator.layout_for(kernel, cache, line);
        let tiled = loopir::transform::tile_all(kernel, tiling);
        let events = TraceGen::new(&tiled, &layout)
            .filter(|a| a.kind == AccessKind::Read)
            .map(|a| TraceEvent::read(a.addr, a.size));
        let report = Simulator::simulate_classified(config, events);
        let c = report.miss_classes.expect("classification enabled");
        let _ = writeln!(
            out,
            "miss classes: compulsory {}  capacity {}  conflict {}",
            c.compulsory, c.capacity, c.conflict
        );
    }
    Ok(out)
}

fn place(kernel: &Kernel, cache: u64, line: u64) -> Result<String, RunError> {
    validate_geometry(cache as usize, line as usize, 1)?;
    let report = optimize_layout(kernel, cache, line).map_err(|e| RunError::Other(e.into()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "off-chip assignment for {} (cache {cache} B, line {line} B):",
        kernel.name
    );
    for (i, a) in kernel.arrays.iter().enumerate() {
        let p = report.layout.placement(ArrayId(i));
        let natural: u64 =
            a.dims[1..].iter().map(|&d| d as u64).product::<u64>() * a.elem_size as u64;
        let _ = writeln!(
            out,
            "  {:<10} base {:>6}  row pitch {:>5} (natural {natural})",
            a.name, p.base, p.row_pitch
        );
    }
    let _ = writeln!(
        out,
        "padding {} B, conflict-free: {}, class leader lines: {:?}",
        report.padding_bytes, report.conflict_free, report.leader_lines
    );
    Ok(out)
}

fn min_cache(kernel: &Kernel, line: u64) -> Result<String, RunError> {
    if line == 0 || !line.is_power_of_two() {
        return Err(RunError::Geometry(format!(
            "invalid cache geometry: line size {line} must be a power of two"
        )));
    }
    if let Some(a) = kernel.arrays.iter().find(|a| a.elem_size as u64 > line) {
        return Err(format!(
            "line size {line} B is smaller than the {} B elements of array {}",
            a.elem_size, a.name
        )
        .into());
    }
    let report = MinCacheReport::analyze(kernel, line);
    Ok(format!(
        "{}: {} lines per class {:?} -> total {} lines, minimum cache {} B (next pow2 {} B)\n",
        kernel.name,
        report.lines_per_class.len(),
        report.lines_per_class,
        report.total_lines,
        report.min_cache_bytes(),
        report.min_pow2_cache_bytes()
    ))
}

fn classes(kernel: &Kernel) -> String {
    let classes = partition_classes(kernel, false);
    let cases = partition_cases(&classes);
    let mut out = format!("{} reference classes in {}:\n", classes.len(), kernel.name);
    for (i, c) in classes.iter().enumerate() {
        let array = kernel.array(c.array);
        let members: Vec<String> = c
            .members
            .iter()
            .map(|&m| {
                let r = &kernel.nest.refs[m];
                let subs: Vec<String> = r.subscripts.iter().map(|s| format!("[{s}]")).collect();
                format!("{}{}", array.name, subs.join(""))
            })
            .collect();
        let _ = writeln!(
            out,
            "  class {i}: array {} | {}",
            array.name,
            members.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "{} case group(s) (classes sharing H): {cases:?}",
        cases.len()
    );
    out
}

fn trace(kernel: &Kernel, reads_only: bool) -> Result<String, Box<dyn Error + Send + Sync>> {
    let layout = DataLayout::natural(kernel);
    let records: Vec<DinRecord> = TraceGen::new(kernel, &layout)
        .filter(|a| !reads_only || a.kind == AccessKind::Read)
        .map(|a| DinRecord {
            label: if a.kind == AccessKind::Read {
                DinLabel::Read
            } else {
                DinLabel::Write
            },
            addr: a.addr,
        })
        .collect();
    let mut buf = Vec::new();
    write_din(&mut buf, &records)?;
    Ok(String::from_utf8(buf).expect("din output is ASCII"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::parse_args;

    fn write_kernel() -> (tempdir::TempDirGuard, String) {
        let dir = tempdir::tempdir();
        let path = dir.path.join("compress.mx");
        std::fs::write(
            &path,
            "kernel Compress\narray a[32][32] elem 4\nfor i = 1 .. 31\nfor j = 1 .. 31\n  read a[i][j]\n  read a[i-1][j]\n  read a[i][j-1]\n  read a[i-1][j-1]\n  write a[i][j]\n",
        )
        .expect("tempdir is writable");
        (dir, path.to_string_lossy().into_owned())
    }

    /// Minimal self-cleaning temp dir (no external dependency).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDirGuard {
            pub path: PathBuf,
        }

        impl Drop for TempDirGuard {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub fn tempdir() -> TempDirGuard {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("memx-test-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("temp dir is creatable");
            TempDirGuard { path }
        }
    }

    #[test]
    fn simulate_command_end_to_end() {
        let (_dir, path) = write_kernel();
        let cmd = parse_args(&[
            "simulate".into(),
            path,
            "--cache".into(),
            "64".into(),
            "--line".into(),
            "8".into(),
            "--classify".into(),
        ])
        .expect("valid argv");
        let out = run(cmd).expect("command succeeds").stdout;
        assert!(out.contains("miss rate"));
        assert!(out.contains("conflict 0"), "{out}");
    }

    #[test]
    fn min_cache_command_matches_the_paper() {
        let (_dir, path) = write_kernel();
        let out = run(Command::MinCache {
            file: path,
            line: 16,
        })
        .expect("command succeeds")
        .stdout;
        assert!(out.contains("total 4 lines"), "{out}");
        assert!(out.contains("minimum cache 64 B"), "{out}");
    }

    #[test]
    fn classes_command_lists_two_classes() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Classes { file: path })
            .expect("command succeeds")
            .stdout;
        assert!(out.contains("class 0"));
        assert!(out.contains("class 1"));
        assert!(!out.contains("class 2"));
    }

    #[test]
    fn trace_command_emits_din() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Trace {
            file: path,
            reads_only: true,
        })
        .expect("command succeeds")
        .stdout;
        let first = out.lines().next().expect("non-empty trace");
        assert!(first.starts_with("0 "), "{first}");
        assert_eq!(out.lines().count(), 31 * 31 * 4);
    }

    #[test]
    fn place_command_reports_layout() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Place {
            file: path,
            cache: 64,
            line: 8,
        })
        .expect("command succeeds")
        .stdout;
        assert!(out.contains("conflict-free: true"), "{out}");
    }

    #[test]
    fn explore_command_with_bounds() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Explore {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: true, // analytical keeps the test fast
            bound_cycles: Some(10_000.0),
            bound_energy: Some(1.0), // infeasible
            pareto: true,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds")
        .stdout;
        assert!(out.contains("minimum energy"));
        assert!(out.contains("infeasible"));
        assert!(out.contains("pareto"));
        assert!(!out.contains("telemetry"));
    }

    #[test]
    fn explore_telemetry_analytical_prints_note() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Explore {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: true,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: true,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        assert!(out.stderr.contains("telemetry: not available"), "{out:?}");
        assert!(!out.stdout.contains("telemetry"), "{out:?}");
    }

    #[test]
    fn explore_telemetry_reports_sweep_counters() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Explore {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: true,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        // The summary lives on stderr; stdout stays pure records.
        assert!(out.stderr.contains("sweep:"), "{out:?}");
        assert!(out.stderr.contains("worker utilization"), "{out:?}");
        assert!(out.stderr.contains("reuse"), "{out:?}");
        assert!(!out.stdout.contains("sweep:"), "{out:?}");
    }

    #[test]
    fn trace_then_simulate_din_round_trip() {
        let (dir, path) = write_kernel();
        let din = run(Command::Trace {
            file: path,
            reads_only: true,
        })
        .expect("trace succeeds")
        .stdout;
        let din_path = dir.path.join("t.din");
        std::fs::write(&din_path, din).expect("tempdir writable");
        let out = run(Command::SimulateDin {
            file: din_path.to_string_lossy().into_owned(),
            cache: 64,
            line: 8,
            assoc: 1,
            classify: true,
            format: "text".into(),
        })
        .expect("simulate-din succeeds")
        .stdout;
        assert!(out.contains("3844 records"), "{out}");
        assert!(out.contains("conflict"), "{out}");
    }

    /// Records the paper kernel's trace into a `.din` file so the trace
    /// command paths exercise a realistic external workload.
    fn write_din_file() -> (tempdir::TempDirGuard, String) {
        let (dir, path) = write_kernel();
        let din = run(Command::Trace {
            file: path,
            reads_only: false,
        })
        .expect("trace succeeds")
        .stdout;
        let din_path = dir.path.join("k.din");
        std::fs::write(&din_path, din).expect("tempdir writable");
        (dir, din_path.to_string_lossy().into_owned())
    }

    #[test]
    fn explore_din_streams_the_trace_grid() {
        let (_dir, din) = write_din_file();
        let out = run(Command::Explore {
            file: din,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: true,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        // The trace grid pins tiling at 1: 95 (T, L, S) designs, not the
        // kernel grid's full (T, L, S, B) cross product.
        assert!(
            out.stdout.contains("explored 95 configurations of trace"),
            "{out:?}"
        );
        assert!(out.stdout.contains("events, streamed)"), "{out:?}");
        assert!(out.stdout.contains("minimum energy"), "{out:?}");
        // Streamed sweeps report their peak resident chunk footprint.
        assert!(out.stderr.contains("peak resident chunk"), "{out:?}");
    }

    #[test]
    fn explore_din_rejects_analytical() {
        let (_dir, din) = write_din_file();
        let err = run(Command::Explore {
            file: din,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: true,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect_err("analytical model needs a kernel");
        assert!(err.to_string().contains("--analytical"), "{err}");
    }

    #[test]
    fn simulate_din_csv_and_json_formats() {
        let (_dir, din) = write_din_file();
        let csv = run(Command::SimulateDin {
            file: din.clone(),
            cache: 64,
            line: 8,
            assoc: 1,
            classify: false,
            format: "csv".into(),
        })
        .expect("csv succeeds")
        .stdout;
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some(
                "records,reads,read_hits,writes,write_hits,fills,evictions,\
                 writebacks,buffer_hits,miss_rate"
            )
        );
        let row = lines.next().expect("one data row");
        assert_eq!(row.split(',').count(), 10, "{row}");
        assert_eq!(lines.next(), None);

        let json = run(Command::SimulateDin {
            file: din,
            cache: 64,
            line: 8,
            assoc: 1,
            classify: true,
            format: "json".into(),
        })
        .expect("json succeeds")
        .stdout;
        assert!(json.contains("\"miss_rate\":"), "{json}");
        assert!(json.contains("\"miss_classes\":"), "{json}");
        assert!(json.contains("\"records\":"), "{json}");
    }

    #[test]
    fn pareto_din_emits_trace_header_and_engine_warning() {
        let (_dir, din) = write_din_file();
        let out = run(Command::Pareto {
            file: din,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            format: "json".into(),
            exhaustive: false,
            telemetry: false,
            engine: "per-design".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        assert!(out.stdout.contains("\"trace\": \""), "{out:?}");
        assert!(out.stdout.contains("k.din"), "{out:?}");
        assert!(out.stdout.contains("\"engine\": \"streamed\""), "{out:?}");
        assert!(
            out.stderr.contains("--engine per-design is ignored"),
            "{out:?}"
        );
    }

    #[test]
    fn search_din_matches_explore_minimum_energy() {
        let (_dir, din) = write_din_file();
        let explore_out = run(Command::Explore {
            file: din.clone(),
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("explore succeeds")
        .stdout;
        let min_line = explore_out
            .lines()
            .find(|l| l.starts_with("minimum energy"))
            .expect("explore names a minimum")
            .to_string();
        let search_out = run(Command::Search {
            file: din.clone(),
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            objective: Objective::Energy,
            space: "paper".into(),
            beam: None,
            gap: 0.0,
            deadline_secs: None,
            format: "text".into(),
            telemetry: false,
            no_analytic: false,
            obs: ObsFlags::default(),
        })
        .expect("search succeeds")
        .stdout;
        assert!(search_out.contains(&min_line), "{search_out}\n{min_line}");
        assert!(search_out.contains("optimum certified"), "{search_out}");
        assert!(search_out.contains("searched trace "), "{search_out}");

        let err = run(Command::Search {
            file: din,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            objective: Objective::Energy,
            space: "expansive".into(),
            beam: None,
            gap: 0.0,
            deadline_secs: None,
            format: "text".into(),
            telemetry: false,
            no_analytic: false,
            obs: ObsFlags::default(),
        })
        .expect_err("expansive space needs a kernel");
        assert!(err.to_string().contains("expansive"), "{err}");
    }

    #[test]
    fn pareto_command_emits_csv_with_telemetry_comments() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Pareto {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            format: "csv".into(),
            exhaustive: false,
            telemetry: true,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        let mut lines = out.stdout.lines();
        assert_eq!(
            lines.next(),
            Some("cache,line,assoc,tiling,miss_rate,cycles,energy_nj,conflict_free")
        );
        // Every stdout line is a pure CSV row; telemetry goes to stderr.
        assert!(
            out.stdout.lines().count() > 2,
            "frontier should be non-trivial: {out:?}"
        );
        assert!(
            out.stdout.lines().all(|l| !l.starts_with('#')),
            "stdout must stay pure CSV: {out:?}"
        );
        assert!(
            out.stderr.contains("prune"),
            "telemetry summary missing from stderr: {out:?}"
        );
    }

    #[test]
    fn pareto_command_json_matches_exhaustive_frontier() {
        let (_dir, path) = write_kernel();
        let pruned = run(Command::Pareto {
            file: path.clone(),
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            format: "json".into(),
            exhaustive: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("pruned succeeds")
        .stdout;
        let exhaustive = run(Command::Pareto {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            format: "json".into(),
            exhaustive: true,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("exhaustive succeeds")
        .stdout;
        assert!(pruned.contains("\"engine\": \"pruned\""), "{pruned}");
        assert!(
            exhaustive.contains("\"engine\": \"exhaustive\""),
            "{exhaustive}"
        );
        // Identical frontiers: everything after the engine line must match.
        let body = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"engine\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(body(&pruned), body(&exhaustive));
        assert!(pruned.contains("\"frontier_size\""), "{pruned}");
    }

    #[test]
    fn invalid_simulate_inputs_error_instead_of_panicking() {
        let (_dir, path) = write_kernel();
        let cases: &[(&[&str], &str)] = &[
            // Non-power-of-two cache: caught by CacheConfig.
            (&["--cache", "48", "--line", "8"], "48"),
            // Valid geometry but outside the cycle model's ranges.
            (&["--cache", "4096", "--line", "2048"], "line size 2048"),
            (
                &["--cache", "1024", "--line", "8", "--assoc", "128"],
                "associativity 128",
            ),
            (&["--cache", "64", "--line", "8", "--tiling", "0"], "tiling"),
        ];
        for (flags, needle) in cases {
            let mut argv = vec!["simulate".to_string(), path.clone()];
            argv.extend(flags.iter().map(|s| s.to_string()));
            let cmd = parse_args(&argv).expect("parses fine; validation is semantic");
            let e = match run(cmd) {
                Err(e) => e.to_string(),
                Ok(out) => panic!("{flags:?} should error, got: {}", out.stdout),
            };
            assert!(e.contains(needle), "{flags:?}: {e}");
            assert!(!e.contains('\n'), "error must be one line: {e:?}");
        }
    }

    #[test]
    fn invalid_min_cache_line_errors_instead_of_panicking() {
        let (_dir, path) = write_kernel();
        for line in [0u64, 3] {
            let e = run(Command::MinCache {
                file: path.clone(),
                line,
            })
            .expect_err("bad line must error");
            assert!(e.to_string().contains("power of two"), "{e}");
        }
        // Line smaller than the 4 B elements.
        let e = run(Command::MinCache {
            file: path.clone(),
            line: 2,
        })
        .expect_err("line < elem must error");
        assert!(e.to_string().contains("smaller"), "{e}");
    }

    #[test]
    fn explore_engines_agree_on_records() {
        let (_dir, path) = write_kernel();
        let run_with = |engine: &str| {
            run(Command::Explore {
                file: path.clone(),
                part: "cy7c".into(),
                em_nj: None,
                natural: false,
                analytical: false,
                bound_cycles: None,
                bound_energy: None,
                pareto: true,
                telemetry: false,
                engine: engine.into(),
                no_analytic: false,
                supervise: Supervise::default(),
                obs: ObsFlags::default(),
            })
            .expect("command succeeds")
        };
        assert_eq!(run_with("fused"), run_with("per-design"));
    }

    fn run_search(path: &str, objective: Objective, format: &str) -> Output {
        run(Command::Search {
            file: path.to_string(),
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            objective,
            space: "paper".into(),
            beam: None,
            gap: 0.0,
            deadline_secs: None,
            format: format.into(),
            telemetry: false,
            no_analytic: false,
            obs: ObsFlags::default(),
        })
        .expect("search succeeds")
    }

    #[test]
    fn search_command_matches_explore_minimum_lines() {
        let (_dir, path) = write_kernel();
        let explored = run(Command::Explore {
            file: path.clone(),
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: false,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("explore succeeds")
        .stdout;
        let line_of = |out: &str, label: &str| {
            out.lines()
                .find(|l| l.starts_with(label))
                .unwrap_or_else(|| panic!("missing `{label}` in {out}"))
                .to_string()
        };
        let energy = run_search(&path, Objective::Energy, "text").stdout;
        assert_eq!(
            line_of(&energy, "minimum energy"),
            line_of(&explored, "minimum energy")
        );
        assert!(energy.contains("optimum certified"), "{energy}");
        let cycles = run_search(&path, Objective::Cycles, "text").stdout;
        assert_eq!(
            line_of(&cycles, "minimum time"),
            line_of(&explored, "minimum time")
        );
    }

    #[test]
    fn search_json_and_csv_outputs_are_well_formed() {
        let (_dir, path) = write_kernel();
        let json = run_search(&path, Objective::Energy, "json").stdout;
        assert!(json.contains("\"complete\": true"), "{json}");
        assert!(json.contains("\"incumbent\": {"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        let csv = run_search(
            &path,
            Objective::Weighted {
                energy_weight: 1.0,
                cycles_weight: 2.0,
            },
            "csv",
        )
        .stdout;
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        let row = lines.next().expect("row");
        assert!(header.starts_with("objective,design,"), "{csv}");
        assert!(row.contains("weighted(energy=1,cycles=2)"), "{csv}");
        assert!(
            row.ends_with(",true,false,425,425,0") || row.contains(",true,false,"),
            "{csv}"
        );
    }

    #[test]
    fn search_deadline_zero_like_run_is_anytime() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Search {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            objective: Objective::Energy,
            space: "paper".into(),
            beam: None,
            gap: 0.0,
            deadline_secs: Some(1e-9),
            format: "text".into(),
            telemetry: false,
            no_analytic: false,
            obs: ObsFlags::default(),
        })
        .expect("search succeeds");
        assert!(out.stderr.contains("deadline reached"), "{out:?}");
        assert!(!out.stdout.contains("optimum certified"), "{out:?}");
    }

    #[test]
    fn explore_fused_telemetry_reports_trace_groups() {
        let (_dir, path) = write_kernel();
        let out = run(Command::Explore {
            file: path,
            part: "cy7c".into(),
            em_nj: None,
            natural: false,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            telemetry: true,
            engine: "fused".into(),
            no_analytic: false,
            supervise: Supervise::default(),
            obs: ObsFlags::default(),
        })
        .expect("command succeeds");
        assert!(out.stderr.contains("fused"), "{out:?}");
        assert!(out.stderr.contains("trace groups"), "{out:?}");
    }

    #[test]
    fn pareto_engines_agree_on_the_frontier() {
        let (_dir, path) = write_kernel();
        let run_with = |engine: &str| {
            run(Command::Pareto {
                file: path.clone(),
                part: "cy7c".into(),
                em_nj: None,
                natural: false,
                format: "csv".into(),
                exhaustive: false,
                telemetry: false,
                engine: engine.into(),
                no_analytic: false,
                supervise: Supervise::default(),
                obs: ObsFlags::default(),
            })
            .expect("command succeeds")
        };
        assert_eq!(run_with("fused"), run_with("per-design"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run(Command::Classes {
            file: "/nonexistent/k.mx".into(),
        })
        .expect_err("should fail");
        assert!(e.to_string().contains("cannot read"));
    }
}
