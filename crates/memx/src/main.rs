//! `memx` — the command-line front end. See [`memx::cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match memx::parse_args(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", memx::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match memx::run(cmd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
