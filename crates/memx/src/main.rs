//! `memx` — the command-line front end. See [`memx::cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match memx::parse_args(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", memx::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match memx::run(cmd) {
        Ok(output) => {
            // Notes/telemetry first so they precede the prompt when stdout
            // is piped; records on stdout keep the machine contract.
            eprint!("{}", output.stderr);
            print!("{}", output.stdout);
            ExitCode::SUCCESS
        }
        // One line on stderr; the code follows the contract in
        // `RunError::exit_code` (2 for I/O, like invalid CLI input;
        // 1 for other runtime failures).
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
