//! Command implementations behind the `memx` binary.
//!
//! `memx` is the operator-facing entry point of the exploration flow: it
//! reads kernels in the [`loopir::parse`] text format and runs the paper's
//! analyses on them.
//!
//! ```text
//! memx explore  KERNEL.mx [--part cy7c|lp2m|16m] [--natural] [--analytical]
//!                         [--bound-cycles N] [--bound-energy NJ] [--pareto]
//! memx simulate KERNEL.mx --cache N --line N [--assoc N] [--tiling B]
//!                         [--natural] [--classify]
//! memx place    KERNEL.mx --cache N --line N
//! memx min-cache KERNEL.mx --line N
//! memx classes  KERNEL.mx
//! memx trace    KERNEL.mx [--reads-only]      # Dinero .din on stdout
//! ```
//!
//! Each command is a plain function taking parsed options and returning an
//! [`Output`] split by stream (records on stdout, notes on stderr), so
//! everything is unit-testable without spawning a process.

pub mod cli;
pub mod commands;
pub mod serve;
pub mod sweep;

pub use cli::{parse_args, Command, ObsFlags, Supervise, UsageError};
pub use commands::{run, Output, RunError};
pub use serve::{http_request, wait_health, JobSpec, ServeConfig, Server, SubmitRequest};
