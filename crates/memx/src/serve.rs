//! Sweep-as-a-service: the `memx serve` daemon and its tiny HTTP client.
//!
//! The daemon accepts exploration jobs (explore / pareto / search — the
//! same commands the offline CLI runs, with the same knobs) over a
//! line-delimited HTTP/1.1+JSON API on a TCP socket:
//!
//! * `POST /v1/jobs` — run (or serve from cache) one job. The body is a
//!   JSON object; `command` picks the job kind and exactly one of
//!   `kernel` (inline loopir `.mx` text) or `trace` (inline Dinero `.din`
//!   text, swept by streaming) carries the workload. Unknown fields are
//!   rejected (400), so a typo'd knob can never silently fall back to a
//!   default.
//! * `GET  /v1/health` — liveness probe.
//! * `GET  /v1/stats` — job/cache/queue counters as JSON.
//! * `POST /v1/shutdown` — graceful stop (also SIGTERM on the binary).
//!
//! Completed results are memoized in a content-addressed
//! [`ResultCache`](memexplore::ResultCache): the key is a 128-bit FNV-1a
//! hash of the *canonical* job rendering — the parsed kernel's canonical
//! IR `Display`, the resolved model parameters, engine, objective, and
//! every knob, with defaults made explicit — so JSON key order,
//! whitespace, and spelled-out defaults cannot change the key, while any
//! semantic difference must. Single-flight deduplication makes concurrent
//! identical jobs simulate once; every submitter gets byte-identical
//! bytes. Cancelled (deadline) and failed jobs are never cached.
//!
//! Jobs are admitted through a ticket-FIFO [`FairGate`] with a bounded
//! number of concurrent slots; each admitted job runs on the existing
//! work-stealing sweep pool with `workers ≈ cores/slots` so concurrent
//! jobs share the machine instead of oversubscribing it. Per-job events
//! (`serve`/`job` with duration, cache disposition, status, and queue
//! depth) flow through the obs layer and surface in `memx report`.

use crate::cli::{ObsFlags, Supervise};
use crate::commands::{self, Output, RunError};
use loopir::parse::parse_kernel;
use loopir::Kernel;
use memexplore::obs::{parse_json, push_json_str, Json};
use memexplore::{CacheKey, FieldValue, Lookup, Objective, Obs, ResultCache, TraceWorkload};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Version tag mixed into every cache key: bump it whenever the canonical
/// job rendering or the response byte format changes, so stale entries
/// from an older daemon can never be (mis)interpreted by a newer one.
const KEY_SCHEMA: &str = "memx-serve-job-v1";

/// Read timeout on accepted connections — a stalled client cannot pin a
/// handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Largest accepted request body (16 MiB leaves room for very large
/// generated kernels while bounding a hostile Content-Length).
const MAX_BODY: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// The job kinds the daemon runs — the three sweep commands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// Exhaustive paper-grid sweep (`memx explore`).
    Explore,
    /// Three-objective Pareto frontier (`memx pareto`).
    Pareto,
    /// Certified bound-guided search (`memx search`).
    Search,
    /// One shard of a distributed sweep: evaluate `[start, end)` of the
    /// workload's grid and answer with the checkpoint wire bytes
    /// (hex-encoded in `stdout`) plus quarantine lines (`stderr`). The
    /// `memx sweep --attach` coordinator is the client.
    Shard,
}

impl JobKind {
    fn as_str(self) -> &'static str {
        match self {
            JobKind::Explore => "explore",
            JobKind::Pareto => "pareto",
            JobKind::Search => "search",
            JobKind::Shard => "shard",
        }
    }
}

/// The workload a job sweeps: a parsed kernel or a streamed trace.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// Parsed kernel from the request's inline `.mx` text.
    Kernel(Kernel),
    /// Prepared trace from the request's inline `.din` text, swept by
    /// streaming over the fixed trace grid (tiling pinned at 1).
    Trace(TraceWorkload),
}

/// A fully validated job request. Defaults mirror the offline CLI, so a
/// request that only sets `command` and `kernel` behaves exactly like
/// `memx <command> KERNEL.mx` (and `trace` like `memx <command> TRACE.din`).
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Which sweep to run.
    pub kind: JobKind,
    /// The workload (inline kernel or inline trace).
    pub input: JobInput,
    /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
    pub part: String,
    /// Custom `Em` (nJ/access) overriding `part`.
    pub em_nj: Option<f64>,
    /// Natural (unoptimized) layout.
    pub natural: bool,
    /// Per-job deadline in seconds (not part of the cache key).
    pub deadline_secs: Option<f64>,
    /// explore: analytical miss-rate model.
    pub analytical: bool,
    /// explore: cycle bound for the min-energy selection.
    pub bound_cycles: Option<f64>,
    /// explore: energy bound for the min-time selection.
    pub bound_energy: Option<f64>,
    /// explore: print the Pareto frontier.
    pub pareto: bool,
    /// explore/pareto: simulation engine (`fused` or `per-design`).
    pub engine: String,
    /// pareto: `csv`/`json`; search: `text`/`csv`/`json`.
    pub format: String,
    /// pareto: exhaustive instead of pruned.
    pub exhaustive: bool,
    /// search: objective to minimize.
    pub objective: Objective,
    /// search: `paper` or `expansive` grid.
    pub space: String,
    /// search: beam width.
    pub beam: Option<usize>,
    /// search: relative gap target.
    pub gap: f64,
    /// shard: first grid index of the slice (inclusive).
    pub shard_start: usize,
    /// shard: one past the last grid index of the slice.
    pub shard_end: usize,
}

/// A rejected job request — one line, reported as HTTP 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BadRequest {}

fn bad(msg: impl Into<String>) -> BadRequest {
    BadRequest(msg.into())
}

fn field_f64(v: &Json, key: &str) -> Result<f64, BadRequest> {
    v.as_f64()
        .ok_or_else(|| bad(format!("field `{key}` must be a number")))
}

fn field_bool(v: &Json, key: &str) -> Result<bool, BadRequest> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(bad(format!("field `{key}` must be a boolean"))),
    }
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, BadRequest> {
    v.as_str()
        .ok_or_else(|| bad(format!("field `{key}` must be a string")))
}

fn field_keyword<'a>(v: &'a Json, key: &str, allowed: &[&str]) -> Result<&'a str, BadRequest> {
    let s = field_str(v, key)?;
    if !allowed.contains(&s) {
        return Err(bad(format!(
            "unknown {key} `{s}` (expected {})",
            allowed.join(", ")
        )));
    }
    Ok(s)
}

impl JobSpec {
    /// Parses and validates a `POST /v1/jobs` body. Every key is checked
    /// against the allowlist for its job kind; anything else is an error,
    /// never a silent default.
    pub fn from_json(body: &Json) -> Result<JobSpec, BadRequest> {
        let Json::Obj(pairs) = body else {
            return Err(bad("request body must be a JSON object"));
        };
        let kind = match body.get("command") {
            None => return Err(bad("missing field `command`")),
            Some(v) => match field_str(v, "command")? {
                "explore" => JobKind::Explore,
                "pareto" => JobKind::Pareto,
                "search" => JobKind::Search,
                "shard" => JobKind::Shard,
                other => {
                    return Err(bad(format!(
                        "unknown command `{other}` (expected explore, pareto, search, or shard)"
                    )))
                }
            },
        };
        let input = match (body.get("kernel"), body.get("trace")) {
            (Some(_), Some(_)) => {
                return Err(bad("fields `kernel` and `trace` are mutually exclusive"))
            }
            (None, None) => return Err(bad(
                "missing workload: set `kernel` (inline .mx text) or `trace` (inline .din text)",
            )),
            (Some(v), None) => {
                let text = field_str(v, "kernel")?;
                JobInput::Kernel(parse_kernel(text).map_err(|e| bad(format!("bad kernel: {e}")))?)
            }
            (None, Some(v)) => {
                let text = field_str(v, "trace")?.to_string();
                JobInput::Trace(
                    TraceWorkload::from_text("inline.din", text)
                        .map_err(|e| bad(format!("bad trace: {e}")))?,
                )
            }
        };
        let is_trace = matches!(input, JobInput::Trace(_));

        let mut spec = JobSpec {
            kind,
            input,
            part: "cy7c".to_string(),
            em_nj: None,
            natural: false,
            deadline_secs: None,
            analytical: false,
            bound_cycles: None,
            bound_energy: None,
            pareto: false,
            engine: "fused".to_string(),
            format: if kind == JobKind::Search {
                "text".to_string()
            } else {
                "csv".to_string()
            },
            exhaustive: false,
            objective: Objective::Energy,
            space: "paper".to_string(),
            beam: None,
            gap: 0.0,
            shard_start: 0,
            shard_end: 0,
        };
        for (key, value) in pairs {
            let known = match key.as_str() {
                "command" | "kernel" | "trace" => true,
                // Kernel-shaped knobs are rejected outright for trace
                // jobs: a streamed `.din` sweep has one engine, no
                // analytical model, and sweeps the fixed trace grid
                // exhaustively, so accepting these would silently lie.
                "engine" | "analytical" | "exhaustive" | "space" | "beam" | "gap" if is_trace => {
                    return Err(bad(format!(
                        "field `{key}` needs a kernel workload (a streamed `.din` trace \
                         sweeps the fixed trace grid)"
                    )));
                }
                "part" => {
                    spec.part = field_keyword(value, "part", &["cy7c", "lp2m", "16m"])?.to_string();
                    true
                }
                "em_nj" => {
                    let em = field_f64(value, "em_nj")?;
                    if !em.is_finite() || em <= 0.0 {
                        return Err(bad("field `em_nj` must be a positive number"));
                    }
                    spec.em_nj = Some(em);
                    true
                }
                "natural" => {
                    spec.natural = field_bool(value, "natural")?;
                    true
                }
                // A deadline would truncate the shard's result stream,
                // and the coordinator would silently merge a partial
                // sweep — so it is a typed error, never ignored.
                "deadline_secs" if kind == JobKind::Shard => {
                    return Err(bad("field `deadline_secs` does not apply to shard jobs \
                         (a partial shard would corrupt the merged sweep)"));
                }
                "start" | "end" if kind == JobKind::Shard => {
                    let n = value.as_u64().ok_or_else(|| {
                        bad(format!("field `{key}` must be a non-negative integer"))
                    })? as usize;
                    if key == "start" {
                        spec.shard_start = n;
                    } else {
                        spec.shard_end = n;
                    }
                    true
                }
                "deadline_secs" => {
                    let d = field_f64(value, "deadline_secs")?;
                    if !d.is_finite() || d <= 0.0 {
                        return Err(bad("field `deadline_secs` must be a positive number"));
                    }
                    spec.deadline_secs = Some(d);
                    true
                }
                "analytical" if kind == JobKind::Explore => {
                    spec.analytical = field_bool(value, "analytical")?;
                    true
                }
                "bound_cycles" if kind == JobKind::Explore => {
                    spec.bound_cycles = Some(field_f64(value, "bound_cycles")?);
                    true
                }
                "bound_energy" if kind == JobKind::Explore => {
                    spec.bound_energy = Some(field_f64(value, "bound_energy")?);
                    true
                }
                "pareto" if kind == JobKind::Explore => {
                    spec.pareto = field_bool(value, "pareto")?;
                    true
                }
                "engine" if kind != JobKind::Search => {
                    spec.engine =
                        field_keyword(value, "engine", &["fused", "per-design"])?.to_string();
                    true
                }
                "format" if kind == JobKind::Pareto => {
                    spec.format = field_keyword(value, "format", &["csv", "json"])?.to_string();
                    true
                }
                "format" if kind == JobKind::Search => {
                    spec.format =
                        field_keyword(value, "format", &["text", "csv", "json"])?.to_string();
                    true
                }
                "exhaustive" if kind == JobKind::Pareto => {
                    spec.exhaustive = field_bool(value, "exhaustive")?;
                    true
                }
                "objective" if kind == JobKind::Search => {
                    spec.objective = field_str(value, "objective")?.parse().map_err(bad)?;
                    true
                }
                "space" if kind == JobKind::Search => {
                    spec.space =
                        field_keyword(value, "space", &["paper", "expansive"])?.to_string();
                    true
                }
                "beam" if kind == JobKind::Search => {
                    let b = value
                        .as_u64()
                        .filter(|&b| b >= 1)
                        .ok_or_else(|| bad("field `beam` must be a positive integer"))?;
                    spec.beam = Some(b as usize);
                    true
                }
                "gap" if kind == JobKind::Search => {
                    let g = field_f64(value, "gap")?;
                    if !g.is_finite() || g < 0.0 {
                        return Err(bad("field `gap` must be a finite non-negative fraction"));
                    }
                    spec.gap = g;
                    true
                }
                _ => false,
            };
            if !known {
                return Err(bad(format!(
                    "unknown field `{key}` for command `{}`",
                    kind.as_str()
                )));
            }
        }
        if kind == JobKind::Shard && spec.shard_end <= spec.shard_start {
            return Err(bad(
                "shard jobs need a non-empty range: `start` < `end` (grid indices)",
            ));
        }
        Ok(spec)
    }

    /// The content address of this job: a 128-bit FNV-1a hash over the
    /// canonical rendering. Canonical means (a) the *parsed* kernel's
    /// `Display` (so formatting/comments in the request text are erased)
    /// — or, for trace jobs, the streaming fingerprint plus event count
    /// (so two spellings of the same recorded events share an entry), (b)
    /// every knob present with its resolved value (so explicit defaults
    /// hash like omitted ones), (c) floats as IEEE bit patterns (so `0.5`
    /// and `5e-1` agree), and (d) only fields that affect the result
    /// bytes — `deadline_secs` is excluded because cancelled results are
    /// never cached.
    pub fn cache_key(&self) -> CacheKey {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(s, "{KEY_SCHEMA}\0command={}\0", self.kind.as_str());
        match &self.input {
            JobInput::Kernel(kernel) => {
                let _ = write!(s, "kernel={kernel}\0");
            }
            JobInput::Trace(workload) => {
                let _ = write!(
                    s,
                    "trace={}:{}\0",
                    workload.fingerprint().to_hex(),
                    workload.events()
                );
            }
        }
        let _ = write!(s, "part={}\0", self.part);
        let _ = write!(
            s,
            "em={}\0",
            self.em_nj
                .map_or("-".to_string(), |v| format!("{:016x}", v.to_bits()))
        );
        let _ = write!(s, "natural={}\0", u8::from(self.natural));
        match self.kind {
            JobKind::Explore => {
                let _ = write!(s, "engine={}\0", self.engine);
                let _ = write!(s, "analytical={}\0", u8::from(self.analytical));
                let _ = write!(
                    s,
                    "bound_cycles={}\0",
                    self.bound_cycles
                        .map_or("-".to_string(), |v| format!("{:016x}", v.to_bits()))
                );
                let _ = write!(
                    s,
                    "bound_energy={}\0",
                    self.bound_energy
                        .map_or("-".to_string(), |v| format!("{:016x}", v.to_bits()))
                );
                let _ = write!(s, "pareto={}\0", u8::from(self.pareto));
            }
            JobKind::Pareto => {
                let _ = write!(s, "engine={}\0", self.engine);
                let _ = write!(s, "format={}\0", self.format);
                let _ = write!(s, "exhaustive={}\0", u8::from(self.exhaustive));
            }
            JobKind::Search => {
                let _ = write!(s, "objective={}\0", self.objective);
                let _ = write!(s, "space={}\0", self.space);
                let _ = write!(
                    s,
                    "beam={}\0",
                    self.beam.map_or("-".to_string(), |b| b.to_string())
                );
                let _ = write!(s, "gap={:016x}\0", self.gap.to_bits());
                let _ = write!(s, "format={}\0", self.format);
            }
            JobKind::Shard => {
                let _ = write!(s, "engine={}\0", self.engine);
                let _ = write!(s, "start={}\0", self.shard_start);
                let _ = write!(s, "end={}\0", self.shard_end);
            }
        }
        CacheKey::from_canonical(s.as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Fair admission gate
// ---------------------------------------------------------------------------

struct GateState {
    /// Next ticket to hand out.
    tail: u64,
    /// Lowest ticket not yet admitted.
    head: u64,
    /// Jobs currently holding a slot.
    active: usize,
}

/// Ticket-FIFO admission with `slots` concurrent holders: jobs are
/// admitted strictly in arrival order (no barging — a heavyweight
/// expansive-space job cannot be starved by a stream of cheap ones), at
/// most `slots` at a time.
pub struct FairGate {
    state: Mutex<GateState>,
    cv: Condvar,
    slots: usize,
}

impl FairGate {
    /// A gate with `slots` concurrent slots (clamped to ≥ 1).
    pub fn new(slots: usize) -> Self {
        FairGate {
            state: Mutex::new(GateState {
                tail: 0,
                head: 0,
                active: 0,
            }),
            cv: Condvar::new(),
            slots: slots.max(1),
        }
    }

    /// Blocks until this caller's ticket is first in line *and* a slot is
    /// free. Returns the queue depth observed at enqueue time (jobs that
    /// were waiting ahead of this one).
    pub fn acquire(&self) -> u64 {
        let mut st = self.state.lock().unwrap();
        let ticket = st.tail;
        st.tail += 1;
        let depth = ticket - st.head;
        while !(st.head == ticket && st.active < self.slots) {
            st = self.cv.wait(st).unwrap();
        }
        st.head += 1;
        st.active += 1;
        depth
    }

    /// Releases a slot (pairs with one [`FairGate::acquire`]).
    pub fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.active -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// `(waiting, active)` snapshot.
    pub fn depth(&self) -> (u64, usize) {
        let st = self.state.lock().unwrap();
        (st.tail - st.head, st.active)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// `memx serve` configuration.
pub struct ServeConfig {
    /// Listen address (`HOST:PORT`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Concurrent job slots (0 = one per available core).
    pub slots: usize,
    /// Result-cache bound, entries.
    pub cache_entries: usize,
    /// Result-cache bound, bytes.
    pub cache_bytes: usize,
    /// Deadline for jobs that do not set one (`None` = unbounded).
    pub default_deadline: Option<f64>,
    /// Route eligible explore jobs through the shard coordinator onto
    /// this many in-process workers (0/1 = undistributed).
    pub distribute: usize,
    /// Observability hub for per-job events (`None` = off).
    pub obs: Option<Arc<Obs>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            slots: 0,
            cache_entries: 256,
            cache_bytes: 64 << 20,
            default_deadline: None,
            distribute: 0,
            obs: None,
        }
    }
}

struct ServerShared {
    cache: ResultCache,
    gate: FairGate,
    obs: Option<Arc<Obs>>,
    shutdown: Arc<AtomicBool>,
    jobs: AtomicU64,
    /// Worker threads each admitted job may use, sized so `slots`
    /// concurrent jobs share the cores instead of oversubscribing.
    workers_per_job: usize,
    default_deadline: Option<f64>,
    /// In-process shard workers for eligible explore jobs (0/1 = off).
    distribute: usize,
}

/// A running daemon. Dropping the handle does NOT stop it; call
/// [`Server::request_shutdown`] then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the accept loop. Returns once the
    /// socket is live — jobs can be submitted immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, bad host, …).
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let slots = if config.slots == 0 {
            cores
        } else {
            config.slots
        };
        let shared = Arc::new(ServerShared {
            cache: ResultCache::new(config.cache_entries, config.cache_bytes),
            gate: FairGate::new(slots),
            obs: config.obs,
            shutdown: Arc::new(AtomicBool::new(false)),
            jobs: AtomicU64::new(0),
            workers_per_job: (cores / slots).max(1),
            default_deadline: config.default_deadline,
            distribute: config.distribute,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The result cache (tests use this to force evictions).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// Jobs completed so far (any disposition).
    pub fn jobs_done(&self) -> u64 {
        self.shared.jobs.load(Ordering::Relaxed)
    }

    /// Asks the accept loop to stop after in-flight requests drain.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once the accept loop has exited.
    pub fn is_stopped(&self) -> bool {
        self.accept_thread.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Waits for the accept loop (and its in-flight requests) to finish.
    pub fn join(mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &conn_shared);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Graceful drain: finish requests that were already accepted.
    for h in handlers {
        let _ = h.join();
    }
    if let Some(obs) = &shared.obs {
        obs.finish();
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing (std-only, HTTP/1.1, one request per connection)
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn error_body(code: u16, message: &str) -> Vec<u8> {
    let mut s = String::from("{\"status\":\"error\",\"code\":");
    s.push_str(&code.to_string());
    s.push_str(",\"error\":");
    push_json_str(&mut s, message);
    s.push_str("}\n");
    s.into_bytes()
}

fn handle_connection(mut stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let body = error_body(400, &format!("malformed request: {e}"));
            return write_response(&mut stream, 400, &[], &body);
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/health") => {
            let run_id = shared.obs.as_deref().map_or("-", |o| o.run_id());
            let mut body = String::from("{\"status\":\"ok\",\"run\":");
            push_json_str(&mut body, run_id);
            body.push_str("}\n");
            write_response(&mut stream, 200, &[], body.as_bytes())
        }
        ("GET", "/v1/stats") => {
            let body = stats_json(shared);
            write_response(&mut stream, 200, &[], body.as_bytes())
        }
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            write_response(&mut stream, 200, &[], b"{\"status\":\"shutting-down\"}\n")
        }
        ("POST", "/v1/jobs") => handle_job(&mut stream, shared, &request.body),
        (_, "/v1/jobs") | (_, "/v1/health") | (_, "/v1/stats") | (_, "/v1/shutdown") => {
            let body = error_body(405, &format!("method {} not allowed", request.method));
            write_response(&mut stream, 405, &[], &body)
        }
        (_, path) => {
            let body = error_body(404, &format!("no such endpoint `{path}`"));
            write_response(&mut stream, 404, &[], &body)
        }
    }
}

fn stats_json(shared: &ServerShared) -> String {
    let st = shared.cache.stats();
    let (waiting, active) = shared.gate.depth();
    format!(
        concat!(
            "{{\"jobs\":{},\"active\":{},\"queue_depth\":{},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"joins\":{},\"evictions\":{},",
            "\"abandoned\":{},\"entries\":{},\"bytes\":{}}}}}\n"
        ),
        shared.jobs.load(Ordering::Relaxed),
        active,
        waiting,
        st.hits,
        st.misses,
        st.joins,
        st.evictions,
        st.abandoned,
        st.entries,
        st.bytes,
    )
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// Renders the response body for a finished job. This is the byte string
/// the cache stores, so hit and miss responses are identical by
/// construction; fixed key order keeps it deterministic.
fn job_body(status: &str, key: CacheKey, spec_kind: JobKind, output: &Output) -> Vec<u8> {
    let mut s = String::with_capacity(output.stdout.len() + output.stderr.len() + 128);
    s.push_str("{\"status\":");
    push_json_str(&mut s, status);
    s.push_str(",\"command\":");
    push_json_str(&mut s, spec_kind.as_str());
    s.push_str(",\"key\":");
    push_json_str(&mut s, &key.to_hex());
    s.push_str(",\"stdout\":");
    push_json_str(&mut s, &output.stdout);
    s.push_str(",\"stderr\":");
    push_json_str(&mut s, &output.stderr);
    s.push_str("}\n");
    s.into_bytes()
}

/// Renders a shard job's output: checkpoint wire bytes hex-encoded on
/// stdout (one line), quarantine lines on stderr.
fn shard_output(result: (Vec<u8>, Vec<(usize, String)>)) -> (Output, bool) {
    use std::fmt::Write as _;
    let (bytes, quarantined) = result;
    let mut stdout = crate::sweep::hex_encode(&bytes);
    stdout.push('\n');
    let mut stderr = String::new();
    for (idx, message) in &quarantined {
        let _ = writeln!(stderr, "quarantine {idx} {message}");
    }
    (Output { stdout, stderr }, false)
}

/// Runs one job on the sweep engines. Returns the command output plus the
/// cancellation flag (deadline reached → partial, uncacheable).
fn run_job(spec: &JobSpec, workers: usize, distribute: usize) -> Result<(Output, bool), RunError> {
    let evaluator = commands::make_evaluator(&spec.part, spec.em_nj, spec.natural);
    let supervise = Supervise {
        deadline_secs: spec.deadline_secs,
        ..Supervise::default()
    };
    let obs_flags = ObsFlags::default();
    match (&spec.input, spec.kind) {
        // `--distribute N` routes eligible explore jobs through the shard
        // coordinator; analytical jobs never sweep, and deadline jobs
        // need the supervisor's cooperative cancellation, so both keep
        // the undistributed path.
        (JobInput::Kernel(kernel), JobKind::Explore)
            if distribute >= 2 && !spec.analytical && spec.deadline_secs.is_none() =>
        {
            crate::sweep::explore_kernel_sharded(
                kernel,
                &evaluator,
                &spec.engine,
                workers,
                distribute,
                spec.bound_cycles,
                spec.bound_energy,
                spec.pareto,
            )
        }
        (JobInput::Kernel(kernel), JobKind::Shard) => crate::sweep::kernel_shard_bytes(
            kernel,
            &evaluator,
            &spec.engine,
            workers,
            spec.shard_start,
            spec.shard_end,
        )
        .map(shard_output),
        (JobInput::Trace(workload), JobKind::Shard) => crate::sweep::trace_shard_bytes(
            workload,
            &evaluator,
            workers,
            spec.shard_start,
            spec.shard_end,
        )
        .map(shard_output),
        (JobInput::Kernel(kernel), JobKind::Explore) => commands::explore(
            kernel,
            evaluator,
            spec.analytical,
            spec.bound_cycles,
            spec.bound_energy,
            spec.pareto,
            false,
            commands::engine_kind(&spec.engine),
            true,
            &supervise,
            &obs_flags,
            Some(workers),
        ),
        (JobInput::Kernel(kernel), JobKind::Pareto) => commands::pareto_frontier(
            kernel,
            evaluator,
            &spec.format,
            spec.exhaustive,
            false,
            commands::engine_kind(&spec.engine),
            true,
            &supervise,
            &obs_flags,
            Some(workers),
        ),
        (JobInput::Kernel(kernel), JobKind::Search) => commands::search(
            kernel,
            evaluator,
            spec.objective,
            &spec.space,
            spec.beam,
            spec.gap,
            spec.deadline_secs,
            &spec.format,
            false,
            true,
            &obs_flags,
            Some(workers),
        ),
        (JobInput::Trace(workload), JobKind::Explore) => commands::explore_trace(
            workload,
            evaluator,
            spec.bound_cycles,
            spec.bound_energy,
            spec.pareto,
            false,
            &spec.engine,
            true,
            &supervise,
            &obs_flags,
            Some(workers),
        ),
        (JobInput::Trace(workload), JobKind::Pareto) => commands::pareto_trace(
            workload,
            evaluator,
            &spec.format,
            false,
            &spec.engine,
            true,
            &supervise,
            &obs_flags,
            Some(workers),
        ),
        (JobInput::Trace(workload), JobKind::Search) => commands::search_trace(
            workload,
            evaluator,
            spec.objective,
            spec.beam,
            spec.deadline_secs,
            &spec.format,
            false,
            true,
            &obs_flags,
            Some(workers),
        ),
    }
}

fn handle_job(stream: &mut TcpStream, shared: &ServerShared, body: &[u8]) -> io::Result<()> {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let b = error_body(400, "request body is not UTF-8");
            return write_response(stream, 400, &[], &b);
        }
    };
    let json = match parse_json(text) {
        Ok(j) => j,
        Err(e) => {
            let b = error_body(400, &format!("malformed JSON: {e}"));
            return write_response(stream, 400, &[], &b);
        }
    };
    let mut spec = match JobSpec::from_json(&json) {
        Ok(s) => s,
        Err(e) => {
            let b = error_body(400, &e.0);
            return write_response(stream, 400, &[], &b);
        }
    };
    if spec.deadline_secs.is_none() {
        spec.deadline_secs = shared.default_deadline;
    }
    let key = spec.cache_key();
    let key_hex = key.to_hex();

    // Single-flight lookup: a hit (resident or coalesced onto a concurrent
    // leader) answers without touching the gate or the sweep pool.
    let (disposition, code, status, response) = match shared.cache.lookup(key) {
        Lookup::Hit { value, coalesced } => {
            let disposition = if coalesced { "join" } else { "hit" };
            (disposition, 200u16, "complete", (*value).clone())
        }
        Lookup::Miss(flight) => {
            // Leader: fair-FIFO admission, then simulate.
            let queue_depth = shared.gate.acquire();
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_job(&spec, shared.workers_per_job, shared.distribute)
            }));
            shared.gate.release();
            match result {
                Ok(Ok((output, cancelled))) => {
                    let status = if cancelled { "cancelled" } else { "complete" };
                    let bytes = job_body(status, key, spec.kind, &output);
                    // Only completed results are cacheable; a cancelled
                    // (deadline) job still answers its waiters with the
                    // partial bytes but is re-simulated next time.
                    flight.fulfill(Arc::new(bytes.clone()), !cancelled);
                    record_job(shared, &spec, started, "miss", status, queue_depth, 200);
                    let headers = [
                        ("X-Memx-Cache", "miss"),
                        ("X-Memx-Key", key_hex.as_str()),
                        ("X-Memx-Status", status),
                    ];
                    return write_response(stream, 200, &headers, &bytes);
                }
                Ok(Err(err)) => {
                    // Runtime failure (e.g. infeasible grid): typed 422.
                    // Invalid cache geometry is the client's fault: 400.
                    // I/O failures cannot normally happen (inputs are
                    // inline), so anything of that class is a 500.
                    let code = match &err {
                        RunError::Io(_) => 500,
                        RunError::Geometry(_) => 400,
                        RunError::Other(_) => 422,
                    };
                    drop(flight); // abandon: waiters retry, nothing cached
                    let b = error_body(code, &err.to_string());
                    record_job(shared, &spec, started, "miss", "error", queue_depth, code);
                    let headers = [
                        ("X-Memx-Cache", "miss"),
                        ("X-Memx-Key", key_hex.as_str()),
                        ("X-Memx-Status", "error"),
                    ];
                    return write_response(stream, code, &headers, &b);
                }
                Err(panic) => {
                    let msg = panic_message(&panic);
                    drop(flight);
                    let b = error_body(500, &format!("job panicked: {msg}"));
                    record_job(shared, &spec, started, "miss", "panic", queue_depth, 500);
                    let headers = [
                        ("X-Memx-Cache", "miss"),
                        ("X-Memx-Key", key_hex.as_str()),
                        ("X-Memx-Status", "panic"),
                    ];
                    return write_response(stream, 500, &headers, &b);
                }
            }
        }
    };
    record_job(shared, &spec, started, disposition, status, 0, code);
    let headers = [
        ("X-Memx-Cache", disposition),
        ("X-Memx-Key", key_hex.as_str()),
        ("X-Memx-Status", status),
    ];
    write_response(stream, code, &headers, &response)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Emits the per-job observability event and bumps the job counter.
fn record_job(
    shared: &ServerShared,
    spec: &JobSpec,
    started: Instant,
    cache: &str,
    status: &str,
    queue_depth: u64,
    http: u16,
) {
    shared.jobs.fetch_add(1, Ordering::Relaxed);
    if let Some(obs) = &shared.obs {
        let dur = started.elapsed();
        obs.point(
            "serve",
            "job",
            &[
                (
                    "dur_us",
                    FieldValue::U64(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX)),
                ),
                ("command", FieldValue::Str(spec.kind.as_str().to_string())),
                ("key", FieldValue::Str(spec.cache_key().to_hex())),
                ("cache", FieldValue::Str(cache.to_string())),
                ("status", FieldValue::Str(status.to_string())),
                ("queue_depth", FieldValue::U64(queue_depth)),
                ("http", FieldValue::U64(u64::from(http))),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A parsed HTTP response from the daemon.
pub struct HttpResponse {
    /// Status code (200, 400, …).
    pub code: u16,
    /// Lower-cased header map.
    pub headers: HashMap<String, String>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// One-shot HTTP request over a fresh connection — the tiny client used
/// by `memx submit`, the test battery, and the bench harness.
///
/// # Errors
///
/// Any transport failure (connect, write, read, malformed status line).
pub fn http_request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut headers = HashMap::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.insert(name, value);
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok(HttpResponse {
        code,
        headers,
        body,
    })
}

/// Polls `GET /v1/health` until the daemon answers 200 or the budget runs
/// out. Used by `memx submit --wait-health` and the CI smoke job to avoid
/// racing the daemon's startup.
pub fn wait_health(addr: &str, budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if let Ok(r) = http_request(addr, "GET", "/v1/health", b"") {
            if r.code == 200 {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------------------
// Signals (binary path only)
// ---------------------------------------------------------------------------

static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that request a graceful shutdown.
/// Called only from the `memx serve` binary path — the in-process
/// [`Server`] used by tests never touches process-wide signal state.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` with an async-signal-safe handler (one relaxed
    // atomic store) is the POSIX-sanctioned std-only way to observe
    // SIGTERM (15) and SIGINT (2).
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

/// True once SIGTERM or SIGINT has been delivered.
pub fn signal_received() -> bool {
    SIGNAL_FLAG.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// memx submit
// ---------------------------------------------------------------------------

/// The `memx submit` request, mirroring the `Command::Submit` CLI flags.
pub struct SubmitRequest {
    /// Daemon address (`HOST:PORT`).
    pub addr: String,
    /// Workload file path (read locally, sent inline): `.mx` kernel
    /// text, or a `.din` trace submitted as a streamed trace job.
    pub file: String,
    /// Job kind keyword (`explore`, `pareto`, `search`).
    pub job: String,
    /// Off-chip part keyword.
    pub part: String,
    /// Custom `Em` (nJ/access).
    pub em_nj: Option<f64>,
    /// Natural layout.
    pub natural: bool,
    /// explore: analytical model.
    pub analytical: bool,
    /// explore: cycle bound.
    pub bound_cycles: Option<f64>,
    /// explore: energy bound.
    pub bound_energy: Option<f64>,
    /// explore: print the frontier.
    pub pareto: bool,
    /// Simulation engine keyword.
    pub engine: String,
    /// Output format (pareto/search).
    pub format: Option<String>,
    /// pareto: exhaustive sweep.
    pub exhaustive: bool,
    /// search: objective.
    pub objective: Option<Objective>,
    /// search: grid keyword.
    pub space: String,
    /// search: beam width.
    pub beam: Option<usize>,
    /// search: gap target.
    pub gap: f64,
    /// Per-job deadline.
    pub deadline_secs: Option<f64>,
    /// Poll health for up to this many seconds before submitting.
    pub wait_health_secs: Option<f64>,
    /// Retry transient transport failures this many times (`--retries`).
    pub retries: u32,
    /// Base backoff between retries, milliseconds (`--backoff`);
    /// exponential with deterministic jitter.
    pub backoff_ms: u64,
}

impl SubmitRequest {
    /// Renders the `POST /v1/jobs` body. Only non-default knobs are sent,
    /// so a flag that does not apply to the chosen job kind surfaces as
    /// the daemon's typed 400 instead of being silently dropped.
    /// `workload_key` is `"kernel"` for `.mx` files and `"trace"` for
    /// `.din` files.
    fn body(&self, workload_key: &str, workload_text: &str) -> String {
        let mut b = String::from("{\"command\":");
        push_json_str(&mut b, &self.job);
        b.push_str(",\"");
        b.push_str(workload_key);
        b.push_str("\":");
        push_json_str(&mut b, workload_text);
        if self.part != "cy7c" {
            b.push_str(",\"part\":");
            push_json_str(&mut b, &self.part);
        }
        if let Some(em) = self.em_nj {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"em_nj\":{em}"));
        }
        if self.natural {
            b.push_str(",\"natural\":true");
        }
        if self.analytical {
            b.push_str(",\"analytical\":true");
        }
        if let Some(v) = self.bound_cycles {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"bound_cycles\":{v}"));
        }
        if let Some(v) = self.bound_energy {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"bound_energy\":{v}"));
        }
        if self.pareto {
            b.push_str(",\"pareto\":true");
        }
        if self.engine != "fused" {
            b.push_str(",\"engine\":");
            push_json_str(&mut b, &self.engine);
        }
        if let Some(f) = &self.format {
            b.push_str(",\"format\":");
            push_json_str(&mut b, f);
        }
        if self.exhaustive {
            b.push_str(",\"exhaustive\":true");
        }
        if let Some(o) = &self.objective {
            b.push_str(",\"objective\":");
            push_json_str(&mut b, &o.to_string());
        }
        if self.space != "paper" {
            b.push_str(",\"space\":");
            push_json_str(&mut b, &self.space);
        }
        if let Some(n) = self.beam {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"beam\":{n}"));
        }
        if self.gap != 0.0 {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"gap\":{}", self.gap));
        }
        if let Some(d) = self.deadline_secs {
            let _ = std::fmt::Write::write_fmt(&mut b, format_args!(",\"deadline_secs\":{d}"));
        }
        b.push('}');
        b
    }
}

/// Runs `memx submit`: reads the kernel, posts the job, and relays the
/// daemon's response following the CLI exit-code contract — transport
/// failures and 400s are exit 2 (bad input / I/O), daemon-side runtime
/// failures (422/500) are exit 1.
///
/// # Errors
///
/// [`RunError`] per the contract above.
pub fn submit(req: &SubmitRequest) -> Result<Output, RunError> {
    let workload_text = std::fs::read_to_string(&req.file)
        .map_err(|e| RunError::Io(format!("cannot read `{}`: {e}", req.file)))?;
    let is_trace = commands::is_din_path(&req.file);
    if !is_trace {
        // Fail on an unparsable kernel locally — no point shipping it.
        parse_kernel(&workload_text)
            .map_err(|e| RunError::Other(format!("{}: {e}", req.file).into()))?;
    }
    if let Some(budget) = req.wait_health_secs {
        if !wait_health(&req.addr, Duration::from_secs_f64(budget)) {
            return Err(RunError::Io(format!(
                "daemon at {} did not become healthy within {budget} s",
                req.addr
            )));
        }
    }
    let body = req.body(if is_trace { "trace" } else { "kernel" }, &workload_text);
    let mut notes = String::new();
    let response = submit_with_retry(req, body.as_bytes(), &mut notes)?;
    let text = String::from_utf8_lossy(&response.body);
    let json = parse_json(&text)
        .map_err(|e| RunError::Other(format!("malformed daemon response: {e}").into()))?;
    if response.code != 200 {
        let msg = json
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("daemon error")
            .to_string();
        return Err(match response.code {
            400 => RunError::Io(format!("daemon rejected the job: {msg}")),
            code => RunError::Other(format!("job failed ({code}): {msg}").into()),
        });
    }
    let stdout = json
        .get("stdout")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let mut stderr = notes;
    stderr.push_str(
        json.get("stderr")
            .and_then(Json::as_str)
            .unwrap_or_default(),
    );
    let status = json.get("status").and_then(Json::as_str).unwrap_or("?");
    let disposition = response
        .headers
        .get("x-memx-cache")
        .map_or("?", String::as_str);
    let key = json.get("key").and_then(Json::as_str).unwrap_or("?");
    use std::fmt::Write as _;
    let _ = writeln!(
        stderr,
        "note: cache {disposition}, status {status}, key {key}"
    );
    Ok(Output { stdout, stderr })
}

/// True for transport failures worth retrying: the daemon is not up yet,
/// dropped the connection, or the socket timed out. A DNS failure or a
/// refused *response* (HTTP-level error) is not transient.
fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Posts the job, retrying transient transport failures up to
/// `req.retries` times with exponential backoff plus deterministic
/// jitter (the same [`memexplore::backoff_delay`] schedule the shard
/// coordinator uses). Each retry leaves a note for the final stderr.
fn submit_with_retry(
    req: &SubmitRequest,
    body: &[u8],
    notes: &mut String,
) -> Result<HttpResponse, RunError> {
    use std::fmt::Write as _;
    let mut attempt: u32 = 0;
    loop {
        match http_request(&req.addr, "POST", "/v1/jobs", body) {
            Ok(response) => return Ok(response),
            Err(e) if attempt < req.retries && transient(&e) => {
                attempt += 1;
                let delay = memexplore::backoff_delay(
                    Duration::from_millis(req.backoff_ms.max(1)),
                    0x6d65_6d78,
                    0,
                    attempt,
                );
                let _ = writeln!(
                    notes,
                    "note: retrying after transport error ({e}); attempt {attempt} of {}, \
                     backoff {} ms",
                    req.retries,
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Err(e) => {
                return Err(RunError::Io(if attempt > 0 {
                    format!(
                        "cannot reach daemon at {} after {} attempts: {e}",
                        req.addr,
                        attempt + 1
                    )
                } else {
                    format!("cannot reach daemon at {}: {e}", req.addr)
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compress_text() -> String {
        "kernel Compress\narray a[32][32] elem 4\nfor i = 1 .. 31\nfor j = 1 .. 31\n  \
         read a[i][j]\n  read a[i-1][j]\n  read a[i][j-1]\n  read a[i-1][j-1]\n  write a[i][j]\n"
            .to_string()
    }

    fn explore_spec(extra: &str) -> JobSpec {
        let mut body = String::from("{\"command\":\"explore\",\"kernel\":");
        push_json_str(&mut body, &compress_text());
        body.push_str(extra);
        body.push('}');
        JobSpec::from_json(&parse_json(&body).expect("valid JSON")).expect("valid spec")
    }

    #[test]
    fn defaults_hash_like_explicit_defaults() {
        let implicit = explore_spec("");
        let explicit = explore_spec(
            ",\"part\":\"cy7c\",\"natural\":false,\"engine\":\"fused\",\
             \"analytical\":false,\"pareto\":false",
        );
        assert_eq!(implicit.cache_key(), explicit.cache_key());
    }

    #[test]
    fn kernel_formatting_does_not_change_the_key() {
        let a = explore_spec("");
        let mut body = String::from("{\"command\":\"explore\",\"kernel\":");
        // Same kernel, different whitespace and a comment.
        push_json_str(
            &mut body,
            "# compress kernel\nkernel Compress\narray a[32][32] elem 4\nfor i = 1 .. 31\n\
             for j = 1 .. 31\n    read  a[i][j]\n    read a[i-1][j]\n    read a[i][j-1]\n    \
             read a[i-1][j-1]\n    write  a[i][j]\n",
        );
        body.push('}');
        let b = JobSpec::from_json(&parse_json(&body).expect("valid")).expect("valid spec");
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn deadline_is_not_part_of_the_key() {
        let a = explore_spec("");
        let b = explore_spec(",\"deadline_secs\":5.0");
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn each_knob_perturbs_the_key() {
        let base = explore_spec("");
        for extra in [
            ",\"part\":\"lp2m\"",
            ",\"em_nj\":3.5",
            ",\"natural\":true",
            ",\"engine\":\"per-design\"",
            ",\"analytical\":true",
            ",\"bound_cycles\":10000",
            ",\"bound_energy\":50000",
            ",\"pareto\":true",
        ] {
            let varied = explore_spec(extra);
            assert_ne!(base.cache_key(), varied.cache_key(), "{extra}");
        }
    }

    #[test]
    fn commands_never_share_keys() {
        let kernel = compress_text();
        let spec_of = |cmd: &str| {
            let mut body = format!("{{\"command\":\"{cmd}\",\"kernel\":");
            push_json_str(&mut body, &kernel);
            body.push('}');
            JobSpec::from_json(&parse_json(&body).expect("valid")).expect("valid spec")
        };
        let keys = [
            spec_of("explore").cache_key(),
            spec_of("pareto").cache_key(),
            spec_of("search").cache_key(),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn unknown_fields_are_rejected_per_command() {
        let mut body = String::from("{\"command\":\"explore\",\"kernel\":");
        push_json_str(&mut body, &compress_text());
        body.push_str(",\"exhaustive\":true}");
        let e = JobSpec::from_json(&parse_json(&body).expect("valid")).expect_err("must reject");
        assert!(e.0.contains("exhaustive"), "{e}");
        // ... and a field that is valid nowhere.
        let mut body = String::from("{\"command\":\"search\",\"kernel\":");
        push_json_str(&mut body, &compress_text());
        body.push_str(",\"turbo\":1}");
        let e = JobSpec::from_json(&parse_json(&body).expect("valid")).expect_err("must reject");
        assert!(e.0.contains("turbo"), "{e}");
    }

    #[test]
    fn missing_command_or_kernel_is_rejected() {
        let e = JobSpec::from_json(&parse_json("{}").expect("valid")).expect_err("no command");
        assert!(e.0.contains("command"), "{e}");
        let e = JobSpec::from_json(&parse_json("{\"command\":\"explore\"}").expect("valid"))
            .expect_err("no kernel");
        assert!(e.0.contains("kernel"), "{e}");
    }

    #[test]
    fn bad_kernel_text_is_rejected() {
        let e = JobSpec::from_json(
            &parse_json("{\"command\":\"explore\",\"kernel\":\"not a kernel\"}").expect("valid"),
        )
        .expect_err("bad kernel");
        assert!(e.0.contains("bad kernel"), "{e}");
    }

    fn trace_spec(cmd: &str, din_text: &str, extra: &str) -> Result<JobSpec, BadRequest> {
        let mut body = format!("{{\"command\":\"{cmd}\",\"trace\":");
        push_json_str(&mut body, din_text);
        body.push_str(extra);
        body.push('}');
        JobSpec::from_json(&parse_json(&body).expect("valid JSON"))
    }

    #[test]
    fn trace_jobs_key_by_content_not_spelling() {
        // Same four events, different address spellings and labels order —
        // the streaming fingerprint erases the text differences.
        let a = trace_spec("explore", "0 0\n1 4\n0 8\n2 c\n", "").expect("valid spec");
        let b = trace_spec("explore", "0 0x0\n1 0x4\n0 08\n2 0xc\n", "").expect("valid spec");
        assert_eq!(a.cache_key(), b.cache_key());
        // A different event stream must change the key.
        let c = trace_spec("explore", "0 0\n1 4\n0 8\n2 10\n", "").expect("valid spec");
        assert_ne!(a.cache_key(), c.cache_key());
        // And the key never collides with any kernel job's.
        assert_ne!(a.cache_key(), explore_spec("").cache_key());
    }

    #[test]
    fn trace_jobs_reject_kernel_shaped_knobs() {
        for (cmd, extra) in [
            ("explore", ",\"analytical\":true"),
            ("explore", ",\"engine\":\"per-design\""),
            ("pareto", ",\"exhaustive\":true"),
            ("search", ",\"space\":\"expansive\""),
            ("search", ",\"beam\":4"),
            ("search", ",\"gap\":0.1"),
        ] {
            let e = trace_spec(cmd, "0 0\n", extra).expect_err("must reject");
            assert!(e.0.contains("needs a kernel workload"), "{cmd}{extra}: {e}");
        }
        // Bounds, part, format, deadline stay valid for trace jobs.
        trace_spec("explore", "0 0\n", ",\"bound_cycles\":100,\"pareto\":true").expect("valid");
        trace_spec(
            "search",
            "0 0\n",
            ",\"objective\":\"cycles\",\"format\":\"json\"",
        )
        .expect("valid");
    }

    #[test]
    fn kernel_and_trace_are_mutually_exclusive() {
        let mut body = String::from("{\"command\":\"explore\",\"kernel\":");
        push_json_str(&mut body, &compress_text());
        body.push_str(",\"trace\":\"0 0\\n\"}");
        let e = JobSpec::from_json(&parse_json(&body).expect("valid")).expect_err("must reject");
        assert!(e.0.contains("mutually exclusive"), "{e}");
        let e = trace_spec("explore", "not a trace", "").expect_err("bad trace");
        assert!(e.0.contains("bad trace"), "{e}");
    }

    #[test]
    fn fair_gate_admits_in_fifo_order() {
        let gate = Arc::new(FairGate::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Hold the only slot so the workers below must queue.
        let depth0 = gate.acquire();
        assert_eq!(depth0, 0);
        let mut handles = Vec::new();
        for i in 0..4 {
            let worker_gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                worker_gate.acquire();
                order.lock().unwrap().push(i);
                worker_gate.release();
            }));
            // Give each thread time to enqueue before the next, so the
            // ticket order matches the spawn order.
            while gate.depth().0 < i + 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        gate.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn gate_depth_tracks_waiting_and_active() {
        let gate = FairGate::new(2);
        gate.acquire();
        gate.acquire();
        assert_eq!(gate.depth(), (0, 2));
        gate.release();
        assert_eq!(gate.depth(), (0, 1));
        gate.release();
        assert_eq!(gate.depth(), (0, 0));
    }
}
