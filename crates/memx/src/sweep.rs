//! Distributed sweeps: the `memx sweep --distributed` coordinator, the
//! `memx worker` shard process, and the executors bridging them.
//!
//! The coordinator partitions the explore grid (paper grid for kernels,
//! trace grid for `.din` workloads) into contiguous shards, dispatches
//! them onto local worker *processes* (spawned from this binary) and/or
//! attached `memx serve` daemons (over the existing HTTP/1.1+JSON
//! transport), and merges the result streams back into grid order. The
//! merged stdout is byte-identical to the single-process `memx explore`
//! — workers evaluate exactly the designs of their slice, and per-design
//! records are deterministic (the property the resume oracle already
//! pins bit-exactly).
//!
//! Fault tolerance is the point, not an afterthought:
//!
//! * a worker crash (or SIGKILL) surfaces as a non-zero exit; the retry
//!   *resumes* the shard's checkpoint file, so completed designs are
//!   never re-simulated;
//! * a corrupt result stream fails the typed checkpoint validation and
//!   is re-dispatched fresh (never merged, never resumed);
//! * a straggler whose checkpoint stops growing gets a speculative twin
//!   (first complete wins, duplicates deduped by sweep id + entry index);
//! * a shard that exhausts its retry budget degrades to coordinator-
//!   local execution, down to zero surviving workers.
//!
//! The wire format between worker and coordinator is the checkpoint
//! sidecar itself ([`memexplore::Checkpoint`]): the worker streams
//! records into it as it sweeps, and its final flush *is* the result.
//! Quarantined designs ride alongside as `quarantine <idx> <message>`
//! lines on the worker's stdout.

use crate::cli::ObsFlags;
use crate::commands::{self, Output, RunError};
use loopir::Kernel;
use memexplore::obs::{parse_json, Json};
use memexplore::supervisor::sweep_id;
use memexplore::{
    partition, run_sharded, trace_sweep_id, CacheDesign, Checkpoint, CheckpointPolicy,
    CoordinatorOptions, DesignSpace, Evaluator, ExploreError, Explorer, Record, ShardError,
    ShardExecutor, ShardHandle, ShardOutput, ShardSpec, SweepOptions, SweepOutcome, SweepTelemetry,
    TraceWorkload,
};
use std::cell::Cell;
use std::fmt::Write as _;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as ProcessCommand, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant, SystemTime};

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// The two workload shapes a distributed sweep handles.
enum Workload {
    Kernel(Kernel),
    Trace(TraceWorkload),
}

fn load_workload(file: &str) -> Result<Workload, RunError> {
    if commands::is_din_path(file) {
        commands::load_trace(file).map(Workload::Trace)
    } else {
        commands::load(file).map(Workload::Kernel)
    }
}

/// The full design grid a workload sweeps — the same grid `memx explore`
/// uses, so the merged selection is comparable byte-for-byte.
fn grid_of(workload: &Workload) -> Vec<CacheDesign> {
    match workload {
        Workload::Kernel(_) => DesignSpace::paper().designs(),
        Workload::Trace(_) => TraceWorkload::design_space().designs(),
    }
}

/// Sweep id of one slice — what the worker's checkpoint header will
/// carry, so the coordinator can reject a stream from the wrong shard,
/// workload, or evaluator.
fn slice_id(workload: &Workload, slice: &[CacheDesign], evaluator: &Evaluator) -> u64 {
    match workload {
        Workload::Kernel(kernel) => sweep_id(kernel, slice, evaluator),
        Workload::Trace(tw) => trace_sweep_id(tw, slice, evaluator),
    }
}

/// Quarantine messages travel as single stdout lines; embedded newlines
/// would desynchronize the line protocol.
fn sanitize(message: &str) -> String {
    message.replace(['\n', '\r'], " ")
}

/// Parses `quarantine <local_idx> <message>` lines out of a worker's
/// stdout (anything else on the stream is ignored).
fn parse_quarantine_lines(text: &str) -> Vec<(usize, String)> {
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("quarantine ")?;
            let (idx, message) = rest.split_once(' ')?;
            Some((idx.parse().ok()?, message.to_string()))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// memx worker
// ---------------------------------------------------------------------------

/// Runs one shard: evaluate `designs[start..end)` of the workload's grid
/// and stream records into the checkpoint file (the coordinator's wire
/// format and this shard's crash-recovery journal). Quarantined designs
/// are reported as `quarantine <local_idx> <message>` stdout lines; the
/// process still exits 0 — a quarantine is a per-design result, not a
/// worker failure.
#[allow(clippy::too_many_arguments)]
pub fn worker(
    file: &str,
    part: &str,
    em_nj: Option<f64>,
    natural: bool,
    engine: &str,
    start: usize,
    end: usize,
    checkpoint: &str,
    checkpoint_every: usize,
    resume: bool,
) -> Result<Output, RunError> {
    let workload = load_workload(file)?;
    let evaluator = commands::make_evaluator(part, em_nj, natural);
    let designs = grid_of(&workload);
    if end > designs.len() {
        return Err(RunError::Io(format!(
            "worker range [{start}..{end}) exceeds the {}-design grid of `{file}`",
            designs.len()
        )));
    }
    let slice = &designs[start..end];
    let options = SweepOptions {
        checkpoint: Some(CheckpointPolicy {
            path: PathBuf::from(checkpoint),
            every: if checkpoint_every == 0 {
                32
            } else {
                checkpoint_every
            },
            resume,
        }),
        ..SweepOptions::default()
    };
    let outcome =
        run_slice(&workload, &evaluator, engine, slice, &options).map_err(|e| match e {
            SliceError::Checkpoint(message) => RunError::Io(message),
            SliceError::Other(message) => RunError::Other(message.into()),
        })?;
    let mut stdout = String::new();
    for e in &outcome.errors {
        let _ = writeln!(
            stdout,
            "quarantine {} {}",
            e.design_index,
            sanitize(&e.message)
        );
    }
    let mut stderr = String::new();
    let t = &outcome.telemetry;
    if t.records_resumed > 0 {
        let _ = writeln!(
            stderr,
            "note: resumed {} of {} records from the checkpoint",
            t.records_resumed,
            slice.len()
        );
    }
    let _ = writeln!(
        stderr,
        "worker: designs [{start}..{end}) done: {} records, {} quarantined",
        t.designs_evaluated,
        outcome.errors.len()
    );
    Ok(Output { stdout, stderr })
}

/// Failure of one slice sweep, split along the CLI exit-code contract
/// (checkpoint problems are I/O, exit 2; everything else is runtime).
enum SliceError {
    Checkpoint(String),
    Other(String),
}

/// Sweeps one slice of the grid under the fault-isolation supervisor —
/// the shared engine behind `memx worker`, the coordinator-local
/// degradation path, and the serve daemon's shard jobs.
fn run_slice(
    workload: &Workload,
    evaluator: &Evaluator,
    engine: &str,
    slice: &[CacheDesign],
    options: &SweepOptions,
) -> Result<SweepOutcome, SliceError> {
    match workload {
        Workload::Kernel(kernel) => Explorer::new(evaluator.clone())
            .with_engine(commands::engine_kind(engine))
            .explore_supervised(kernel, slice, options)
            .map_err(|e| match e {
                ExploreError::Checkpoint(c) => SliceError::Checkpoint(c.to_string()),
                other => SliceError::Other(other.to_string()),
            }),
        Workload::Trace(tw) => Explorer::new(evaluator.clone())
            .explore_trace_supervised(tw, slice, options)
            .map_err(|e| match commands::trace_error(e) {
                RunError::Io(m) => SliceError::Checkpoint(m),
                other => SliceError::Other(other.to_string()),
            }),
    }
}

/// [`run_slice`] shaped as a [`ShardOutput`] (local indices, sanitized
/// quarantine messages) for the coordinator-local and in-process paths.
fn run_slice_output(
    workload: &Workload,
    evaluator: &Evaluator,
    engine: &str,
    slice: &[CacheDesign],
    spec: &ShardSpec,
    workers: Option<usize>,
) -> Result<ShardOutput, ShardError> {
    let options = SweepOptions::default();
    let outcome = match workload {
        Workload::Kernel(kernel) => {
            let mut explorer =
                Explorer::new(evaluator.clone()).with_engine(commands::engine_kind(engine));
            if let Some(w) = workers {
                explorer = explorer.with_workers(w);
            }
            explorer.explore_supervised(kernel, slice, &options)
        }
        Workload::Trace(tw) => {
            let mut explorer = Explorer::new(evaluator.clone());
            if let Some(w) = workers {
                explorer = explorer.with_workers(w);
            }
            explorer
                .explore_trace_supervised(tw, slice, &options)
                .map_err(|e| ExploreError::WorkerPanic {
                    phase: "trace",
                    message: e.to_string(),
                })
        }
    }
    .map_err(|e| ShardError::WorkerLost {
        shard: spec.index,
        attempt: 0,
        message: e.to_string(),
    })?;
    Ok(ShardOutput {
        sweep_id: spec.sweep_id,
        entries: outcome
            .records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.clone().map(|r| (i, r)))
            .collect(),
        quarantined: outcome
            .errors
            .iter()
            .map(|e| (e.design_index, sanitize(&e.message)))
            .collect(),
    })
}

// ---------------------------------------------------------------------------
// Process executor (spawned `memx worker` children)
// ---------------------------------------------------------------------------

/// Launches shard attempts as `memx worker` child processes of this
/// binary. Heartbeats are derived from the shard's checkpoint sidecar:
/// the file (or its atomic-rename `.tmp` neighbour) growing or changing
/// counts as life, so a wedged worker that stops flushing goes stale
/// even though its process is still running.
struct ProcessExecutor {
    exe: PathBuf,
    file: String,
    /// Evaluator/engine flags every worker inherits.
    flags: Vec<String>,
    dir: PathBuf,
    slots: usize,
    checkpoint_every: usize,
}

impl ProcessExecutor {
    fn new(
        slots: usize,
        file: &str,
        part: &str,
        em_nj: Option<f64>,
        natural: bool,
        engine: &str,
        dir: PathBuf,
    ) -> Result<Self, RunError> {
        let exe = std::env::current_exe()
            .map_err(|e| RunError::Io(format!("cannot locate the memx binary: {e}")))?;
        let mut flags = vec!["--part".to_string(), part.to_string()];
        if let Some(em) = em_nj {
            flags.push("--em".to_string());
            flags.push(em.to_string());
        }
        if natural {
            flags.push("--natural".to_string());
        }
        if engine != "fused" {
            flags.push("--engine".to_string());
            flags.push(engine.to_string());
        }
        Ok(Self {
            exe,
            file: file.to_string(),
            flags,
            dir,
            slots,
            checkpoint_every: 8,
        })
    }

    /// The attempt's checkpoint file. Attempt 0 and resuming retries
    /// share the shard's canonical sidecar (the resumable crash-recovery
    /// lineage); fresh re-dispatches — speculative twins and
    /// corrupt-stream retries — get their own file, because two live
    /// writers on one path would race the atomic rename.
    fn checkpoint_path(&self, spec: &ShardSpec, attempt: u32, resume: bool) -> PathBuf {
        if resume || attempt == 0 {
            self.dir.join(format!("shard-{}.ckpt", spec.index))
        } else {
            self.dir
                .join(format!("shard-{}-a{attempt}.ckpt", spec.index))
        }
    }
}

impl ShardExecutor for ProcessExecutor {
    fn launch(
        &self,
        spec: &ShardSpec,
        attempt: u32,
        resume: bool,
    ) -> Result<Box<dyn ShardHandle>, ShardError> {
        let path = self.checkpoint_path(spec, attempt, resume);
        if !resume {
            // A fresh attempt must not resume a predecessor's leftovers.
            let _ = std::fs::remove_file(&path);
        }
        let mut cmd = ProcessCommand::new(&self.exe);
        cmd.arg("worker")
            .arg(&self.file)
            .args(["--start", &spec.start.to_string()])
            .args(["--end", &spec.end.to_string()])
            .arg("--checkpoint")
            .arg(&path)
            .args(["--checkpoint-every", &self.checkpoint_every.to_string()])
            .args(&self.flags)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if resume {
            cmd.arg("--resume");
        }
        let child = cmd.spawn().map_err(|e| ShardError::Launch {
            shard: spec.index,
            attempt,
            message: format!("cannot spawn `memx worker`: {e}"),
        })?;
        Ok(Box::new(ProcessHandle {
            child,
            path,
            shard: spec.index,
            attempt,
            last_sig: Cell::new(None),
            last_change: Cell::new(Instant::now()),
        }))
    }

    fn slots(&self) -> usize {
        self.slots
    }
}

/// `(len, mtime)` of the checkpoint file and its `.tmp` neighbour — the
/// signal whose change resets the heartbeat clock.
type CheckpointSig = ((u64, Option<SystemTime>), (u64, Option<SystemTime>));

struct ProcessHandle {
    child: Child,
    path: PathBuf,
    shard: usize,
    attempt: u32,
    last_sig: Cell<Option<CheckpointSig>>,
    last_change: Cell<Instant>,
}

fn file_sig(path: &Path) -> (u64, Option<SystemTime>) {
    match std::fs::metadata(path) {
        Ok(m) => (m.len(), m.modified().ok()),
        Err(_) => (0, None),
    }
}

impl ShardHandle for ProcessHandle {
    fn poll(&mut self) -> Option<Result<ShardOutput, ShardError>> {
        let status = match self.child.try_wait() {
            Err(e) => {
                return Some(Err(ShardError::WorkerLost {
                    shard: self.shard,
                    attempt: self.attempt,
                    message: format!("cannot wait on worker: {e}"),
                }))
            }
            Ok(None) => return None,
            Ok(Some(status)) => status,
        };
        // The worker writes only a handful of quarantine/summary lines,
        // far below the pipe buffer, so draining after exit cannot
        // deadlock.
        let mut stdout = String::new();
        if let Some(mut s) = self.child.stdout.take() {
            let _ = s.read_to_string(&mut stdout);
        }
        let mut errtext = String::new();
        if let Some(mut s) = self.child.stderr.take() {
            let _ = s.read_to_string(&mut errtext);
        }
        if !status.success() {
            let tail = errtext
                .lines()
                .rev()
                .find(|l| !l.trim().is_empty())
                .unwrap_or("")
                .to_string();
            return Some(Err(ShardError::WorkerLost {
                shard: self.shard,
                attempt: self.attempt,
                message: if tail.is_empty() {
                    format!("worker exited with {status}")
                } else {
                    format!("worker exited with {status}: {tail}")
                },
            }));
        }
        match Checkpoint::read(&self.path) {
            Ok(ck) => Some(Ok(ShardOutput {
                sweep_id: ck.sweep_id,
                entries: ck.entries,
                quarantined: parse_quarantine_lines(&stdout),
            })),
            Err(e) => Some(Err(ShardError::CorruptStream {
                shard: self.shard,
                attempt: self.attempt,
                message: e.to_string(),
            })),
        }
    }

    fn heartbeat_age(&self) -> Duration {
        let sig: CheckpointSig = (
            file_sig(&self.path),
            file_sig(&self.path.with_extension("tmp")),
        );
        if self.last_sig.get() != Some(sig) {
            self.last_sig.set(Some(sig));
            self.last_change.set(Instant::now());
        }
        self.last_change.get().elapsed()
    }

    fn cancel(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        // Never leak a running child (or a zombie) past the handle.
        if let Ok(None) = self.child.try_wait() {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// HTTP executor (attached `memx serve` daemons)
// ---------------------------------------------------------------------------

/// Launches shard attempts as `shard` jobs on attached daemons,
/// round-robin. The response carries the checkpoint wire bytes
/// hex-encoded in `stdout` (decoded through the same typed validation a
/// file stream gets) and quarantine lines in `stderr`.
///
/// Liveness over HTTP is the transport's concern — the client enforces
/// its own I/O timeout, after which the attempt fails as lost — so the
/// heartbeat is reported as forever-fresh rather than pretending a
/// signal exists.
struct HttpExecutor {
    addrs: Vec<String>,
    /// Request-body prefix: `{"command":"shard",…knobs…,` awaiting
    /// `"start":…,"end":…}`.
    body_prefix: String,
    next: AtomicUsize,
}

impl HttpExecutor {
    fn new(
        addrs: Vec<String>,
        is_trace: bool,
        workload_text: &str,
        part: &str,
        em_nj: Option<f64>,
        natural: bool,
        engine: &str,
    ) -> Self {
        use memexplore::obs::push_json_str;
        let mut b = String::from("{\"command\":\"shard\",\"");
        b.push_str(if is_trace { "trace" } else { "kernel" });
        b.push_str("\":");
        push_json_str(&mut b, workload_text);
        if part != "cy7c" {
            b.push_str(",\"part\":");
            push_json_str(&mut b, part);
        }
        if let Some(em) = em_nj {
            let _ = write!(b, ",\"em_nj\":{em}");
        }
        if natural {
            b.push_str(",\"natural\":true");
        }
        if !is_trace && engine != "fused" {
            b.push_str(",\"engine\":");
            push_json_str(&mut b, engine);
        }
        b.push(',');
        Self {
            addrs,
            body_prefix: b,
            next: AtomicUsize::new(0),
        }
    }
}

impl ShardExecutor for HttpExecutor {
    fn launch(
        &self,
        spec: &ShardSpec,
        attempt: u32,
        _resume: bool,
    ) -> Result<Box<dyn ShardHandle>, ShardError> {
        let addr = self.addrs[self.next.fetch_add(1, Ordering::Relaxed) % self.addrs.len()].clone();
        let body = format!(
            "{}\"start\":{},\"end\":{}}}",
            self.body_prefix, spec.start, spec.end
        );
        let shard = spec.index;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let lost = |message: String| ShardError::WorkerLost {
                shard,
                attempt,
                message,
            };
            let corrupt = |message: String| ShardError::CorruptStream {
                shard,
                attempt,
                message,
            };
            let result = (|| {
                let resp = crate::serve::http_request(&addr, "POST", "/v1/jobs", body.as_bytes())
                    .map_err(|e| lost(format!("daemon {addr}: {e}")))?;
                let text = String::from_utf8_lossy(&resp.body).into_owned();
                let json = parse_json(&text)
                    .map_err(|e| lost(format!("daemon {addr}: malformed response: {e}")))?;
                if resp.code != 200 {
                    let msg = json
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("daemon error");
                    return Err(lost(format!("daemon {addr} answered {}: {msg}", resp.code)));
                }
                let hex = json
                    .get("stdout")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .trim();
                let bytes = hex_decode(hex).map_err(corrupt)?;
                let ck = Checkpoint::from_bytes(&bytes).map_err(|e| corrupt(e.to_string()))?;
                let quarantined = parse_quarantine_lines(
                    json.get("stderr")
                        .and_then(Json::as_str)
                        .unwrap_or_default(),
                );
                Ok(ShardOutput {
                    sweep_id: ck.sweep_id,
                    entries: ck.entries,
                    quarantined,
                })
            })();
            let _ = tx.send(result);
        });
        Ok(Box::new(HttpHandle { rx, done: false }))
    }

    fn slots(&self) -> usize {
        self.addrs.len()
    }
}

struct HttpHandle {
    rx: mpsc::Receiver<Result<ShardOutput, ShardError>>,
    done: bool,
}

impl ShardHandle for HttpHandle {
    fn poll(&mut self) -> Option<Result<ShardOutput, ShardError>> {
        if self.done {
            return None;
        }
        match self.rx.try_recv() {
            Ok(result) => {
                self.done = true;
                Some(result)
            }
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                self.done = true;
                None
            }
        }
    }

    fn heartbeat_age(&self) -> Duration {
        Duration::ZERO
    }

    fn cancel(&mut self) {
        // The request thread finishes on its own; its send just lands in
        // a closed channel.
        self.done = true;
    }
}

/// Routes launches round-robin across local worker processes and
/// attached daemons; total capacity is the sum of both pools.
struct MixedExecutor {
    process: Option<ProcessExecutor>,
    http: Option<HttpExecutor>,
    next: AtomicUsize,
}

impl ShardExecutor for MixedExecutor {
    fn launch(
        &self,
        spec: &ShardSpec,
        attempt: u32,
        resume: bool,
    ) -> Result<Box<dyn ShardHandle>, ShardError> {
        let p = self.process.as_ref().map_or(0, ShardExecutor::slots);
        let total = self.slots();
        let pick = self.next.fetch_add(1, Ordering::Relaxed) % total.max(1);
        match (&self.process, &self.http) {
            (Some(proc_exec), _) if pick < p => proc_exec.launch(spec, attempt, resume),
            (_, Some(http_exec)) => http_exec.launch(spec, attempt, resume),
            (Some(proc_exec), None) => proc_exec.launch(spec, attempt, resume),
            (None, None) => Err(ShardError::Launch {
                shard: spec.index,
                attempt,
                message: "no executors configured".into(),
            }),
        }
    }

    fn slots(&self) -> usize {
        self.process.as_ref().map_or(0, ShardExecutor::slots)
            + self.http.as_ref().map_or(0, ShardExecutor::slots)
    }
}

// ---------------------------------------------------------------------------
// memx sweep (the coordinator)
// ---------------------------------------------------------------------------

/// The `memx sweep` request, mirroring `Command::Sweep`.
pub struct SweepRequest {
    pub file: String,
    pub part: String,
    pub em_nj: Option<f64>,
    pub natural: bool,
    pub bound_cycles: Option<f64>,
    pub bound_energy: Option<f64>,
    pub pareto: bool,
    pub telemetry: bool,
    pub engine: String,
    pub distributed: usize,
    pub shards: Option<usize>,
    pub attach: Vec<String>,
    pub shard_dir: Option<String>,
    pub retry_budget: u32,
    pub backoff_ms: u64,
    pub straggler_ms: u64,
    pub obs: ObsFlags,
}

/// Runs the distributed sweep coordinator. With zero workers
/// (`--distributed 0` and nothing attached) this is exactly the local
/// `memx explore` — the graceful-degradation floor made explicit.
pub fn sweep(req: &SweepRequest) -> Result<Output, RunError> {
    let slots = req.distributed + req.attach.len();
    if slots == 0 {
        return local_only(req);
    }
    let workload = load_workload(&req.file)?;
    let evaluator = commands::make_evaluator(&req.part, req.em_nj, req.natural);
    let mut stderr = String::new();
    let designs = grid_of(&workload);
    match &workload {
        Workload::Kernel(kernel) => {
            commands::check_sweep_inputs(kernel, &designs, &mut stderr)?;
        }
        Workload::Trace(_) => {
            if req.engine != "fused" {
                let _ = writeln!(
                    stderr,
                    "warning: --engine {} is ignored for `.din` traces \
                     (streamed sweeps are always banked)",
                    req.engine
                );
            }
        }
    }

    let shard_count = req.shards.unwrap_or_else(|| (2 * slots).max(1));
    let mut specs = partition(designs.len(), shard_count);
    for spec in &mut specs {
        spec.sweep_id = slice_id(&workload, &designs[spec.start..spec.end], &evaluator);
    }

    let (dir, ephemeral) = match &req.shard_dir {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("memx-sweep-{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| RunError::Io(format!("cannot create shard dir `{}`: {e}", dir.display())))?;

    let process = if req.distributed > 0 {
        Some(ProcessExecutor::new(
            req.distributed,
            &req.file,
            &req.part,
            req.em_nj,
            req.natural,
            &req.engine,
            dir.clone(),
        )?)
    } else {
        None
    };
    let http = if req.attach.is_empty() {
        None
    } else {
        let text = std::fs::read_to_string(&req.file)
            .map_err(|e| RunError::Io(format!("cannot read `{}`: {e}", req.file)))?;
        Some(HttpExecutor::new(
            req.attach.clone(),
            matches!(workload, Workload::Trace(_)),
            &text,
            &req.part,
            req.em_nj,
            req.natural,
            &req.engine,
        ))
    };
    let executor = MixedExecutor {
        process,
        http,
        next: AtomicUsize::new(0),
    };

    let local = |spec: &ShardSpec| {
        run_slice_output(
            &workload,
            &evaluator,
            &req.engine,
            &designs[spec.start..spec.end],
            spec,
            None,
        )
    };
    let options = CoordinatorOptions {
        retry_budget: req.retry_budget,
        backoff: Duration::from_millis(req.backoff_ms),
        straggler_after: Duration::from_millis(req.straggler_ms),
        ..CoordinatorOptions::default()
    };
    let obs = commands::build_obs(&req.obs)?;
    let t0 = Instant::now();
    let outcome = run_sharded(
        &executor,
        &specs,
        &designs,
        &local,
        &options,
        obs.as_deref(),
    )
    .map_err(|e| RunError::Other(e.to_string().into()))?;
    if let Some(o) = &obs {
        o.finish();
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Checkpoint entries persist geometry only; the sweep id matched, so
    // the grid's design is the one each record was measured for (same
    // fix-up the resume path applies).
    let mut slots_out = outcome.records;
    for (i, r) in slots_out.iter_mut().enumerate() {
        if let Some(r) = r {
            r.design = designs[i];
        }
    }
    // Every empty slot must be accounted for by a quarantine; anything
    // else means a worker returned a validated but incomplete stream,
    // and silently shrinking the sweep would betray the byte-identity
    // contract.
    let quarantined: std::collections::BTreeSet<usize> =
        outcome.errors.iter().map(|e| e.design_index).collect();
    let missing = slots_out
        .iter()
        .enumerate()
        .filter(|(i, r)| r.is_none() && !quarantined.contains(i))
        .count();
    if missing > 0 {
        return Err(RunError::Other(
            format!("distributed sweep lost {missing} designs without a quarantine record").into(),
        ));
    }
    let records: Vec<Record> = slots_out.iter().filter_map(Clone::clone).collect();
    for e in &outcome.errors {
        let _ = writeln!(stderr, "warning: {e}");
    }

    let mut out = String::new();
    match &workload {
        Workload::Kernel(kernel) => {
            let _ = writeln!(
                out,
                "explored {} configurations of kernel {} (trace-driven simulation)",
                records.len(),
                kernel.name
            );
        }
        Workload::Trace(tw) => {
            let _ = writeln!(
                out,
                "explored {} configurations of trace {} ({} events, streamed)",
                records.len(),
                tw.name(),
                tw.events()
            );
        }
    }
    commands::write_selection(
        &mut out,
        &records,
        req.bound_cycles,
        req.bound_energy,
        req.pareto,
    );
    if req.telemetry {
        let mut t = SweepTelemetry {
            designs_evaluated: records.len(),
            designs_quarantined: outcome.errors.len(),
            workers: slots,
            total_time: t0.elapsed(),
            ..SweepTelemetry::default()
        };
        outcome.stats.fill(&mut t);
        let _ = writeln!(stderr, "{t}");
    }
    Ok(Output {
        stdout: out,
        stderr,
    })
}

/// The zero-worker floor: run the ordinary local explore so `--distributed 0`
/// is usable (and byte-identical) rather than an error.
fn local_only(req: &SweepRequest) -> Result<Output, RunError> {
    let evaluator = commands::make_evaluator(&req.part, req.em_nj, req.natural);
    let supervise = crate::cli::Supervise::default();
    let (mut output, _cancelled) = match load_workload(&req.file)? {
        Workload::Kernel(kernel) => commands::explore(
            &kernel,
            evaluator,
            false,
            req.bound_cycles,
            req.bound_energy,
            req.pareto,
            req.telemetry,
            commands::engine_kind(&req.engine),
            true,
            &supervise,
            &req.obs,
            None,
        )?,
        Workload::Trace(tw) => commands::explore_trace(
            &tw,
            evaluator,
            req.bound_cycles,
            req.bound_energy,
            req.pareto,
            req.telemetry,
            &req.engine,
            true,
            &supervise,
            &req.obs,
            None,
        )?,
    };
    output.stderr.insert_str(
        0,
        "note: no workers (--distributed 0, none attached); sweeping locally\n",
    );
    Ok(output)
}

// ---------------------------------------------------------------------------
// Serve integration: shard jobs and --distribute
// ---------------------------------------------------------------------------

/// Checkpoint wire bytes plus `(local index, reason)` quarantine lines —
/// the payload of one shard-job response.
pub(crate) type ShardBytes = (Vec<u8>, Vec<(usize, String)>);

/// Runs one kernel shard job for the serve daemon: sweep the slice and
/// return the checkpoint wire bytes plus quarantine lines.
pub(crate) fn kernel_shard_bytes(
    kernel: &Kernel,
    evaluator: &Evaluator,
    engine: &str,
    workers: usize,
    start: usize,
    end: usize,
) -> Result<ShardBytes, RunError> {
    let designs = DesignSpace::paper().designs();
    shard_bytes(
        &Workload::Kernel(kernel.clone()),
        evaluator,
        engine,
        workers,
        start,
        end,
        &designs,
    )
}

/// [`kernel_shard_bytes`] for inline-trace shard jobs.
pub(crate) fn trace_shard_bytes(
    workload: &TraceWorkload,
    evaluator: &Evaluator,
    workers: usize,
    start: usize,
    end: usize,
) -> Result<ShardBytes, RunError> {
    let designs = TraceWorkload::design_space().designs();
    shard_bytes(
        &Workload::Trace(workload.clone()),
        evaluator,
        "fused",
        workers,
        start,
        end,
        &designs,
    )
}

fn shard_bytes(
    workload: &Workload,
    evaluator: &Evaluator,
    engine: &str,
    workers: usize,
    start: usize,
    end: usize,
    designs: &[CacheDesign],
) -> Result<ShardBytes, RunError> {
    if end > designs.len() || start >= end {
        return Err(RunError::Other(
            format!(
                "shard range [{start}..{end}) is invalid for the {}-design grid",
                designs.len()
            )
            .into(),
        ));
    }
    let slice = &designs[start..end];
    let spec = ShardSpec {
        index: 0,
        start,
        end,
        sweep_id: slice_id(workload, slice, evaluator),
    };
    let out = run_slice_output(workload, evaluator, engine, slice, &spec, Some(workers))
        .map_err(|e| RunError::Other(e.to_string().into()))?;
    let ck = Checkpoint {
        sweep_id: out.sweep_id,
        entries: out.entries,
    };
    Ok((ck.to_bytes(), out.quarantined))
}

/// `memx serve --distribute N`: route an explore job through the shard
/// coordinator onto `distribute` in-process workers. Output is
/// byte-identical to the undistributed explore path by the same argument
/// as `memx sweep` (and pinned by the suite's oracle).
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_kernel_sharded(
    kernel: &Kernel,
    evaluator: &Evaluator,
    engine: &str,
    workers: usize,
    distribute: usize,
    bound_cycles: Option<f64>,
    bound_energy: Option<f64>,
    pareto: bool,
) -> Result<(Output, bool), RunError> {
    let mut stderr = String::new();
    let designs = DesignSpace::paper().designs();
    commands::check_sweep_inputs(kernel, &designs, &mut stderr)?;
    let mut specs = partition(designs.len(), (2 * distribute).max(1));
    let workload = Workload::Kernel(kernel.clone());
    for spec in &mut specs {
        spec.sweep_id = slice_id(
            &workload,
            &designs[spec.start..spec.end],
            &evaluator.clone(),
        );
    }
    // Each in-process shard worker gets a share of the job's thread
    // budget so `--distribute` does not oversubscribe the slot's cores.
    let per_shard = (workers / distribute).max(1);
    let run_workload = Workload::Kernel(kernel.clone());
    let run_evaluator = evaluator.clone();
    let run_engine = engine.to_string();
    let run_designs = designs.clone();
    let run: std::sync::Arc<memexplore::shard::ShardFn> =
        std::sync::Arc::new(move |spec: &ShardSpec| {
            run_slice_output(
                &run_workload,
                &run_evaluator,
                &run_engine,
                &run_designs[spec.start..spec.end],
                spec,
                Some(per_shard),
            )
        });
    let executor = memexplore::ThreadExecutor::new(distribute, run);
    let local = |spec: &ShardSpec| {
        run_slice_output(
            &workload,
            &evaluator.clone(),
            engine,
            &designs[spec.start..spec.end],
            spec,
            Some(workers),
        )
    };
    let outcome = run_sharded(
        &executor,
        &specs,
        &designs,
        &local,
        &CoordinatorOptions::default(),
        None,
    )
    .map_err(|e| RunError::Other(e.to_string().into()))?;
    let mut slots_out = outcome.records;
    for (i, r) in slots_out.iter_mut().enumerate() {
        if let Some(r) = r {
            r.design = designs[i];
        }
    }
    let records: Vec<Record> = slots_out.iter().filter_map(Clone::clone).collect();
    for e in &outcome.errors {
        let _ = writeln!(stderr, "warning: {e}");
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "explored {} configurations of kernel {} (trace-driven simulation)",
        records.len(),
        kernel.name
    );
    commands::write_selection(&mut out, &records, bound_cycles, bound_energy, pareto);
    Ok((
        Output {
            stdout: out,
            stderr,
        },
        false,
    ))
}

// ---------------------------------------------------------------------------
// Hex (std-only wire encoding for shard job responses)
// ---------------------------------------------------------------------------

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

pub(crate) fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd-length hex stream ({} chars)", text.len()));
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(text.len() / 2);
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("non-hex byte {c:#04x} in result stream")),
        }
    };
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("abc").unwrap_err().contains("odd-length"));
        assert!(hex_decode("zz").unwrap_err().contains("non-hex"));
    }

    #[test]
    fn quarantine_lines_round_trip() {
        let mut stdout = String::new();
        for (i, m) in [(3usize, "boom"), (7, "replay panicked")] {
            let _ = writeln!(stdout, "quarantine {i} {}", sanitize(m));
        }
        stdout.push_str("unrelated noise\n");
        assert_eq!(
            parse_quarantine_lines(&stdout),
            vec![(3, "boom".to_string()), (7, "replay panicked".to_string())]
        );
    }

    #[test]
    fn sanitize_flattens_newlines() {
        assert_eq!(sanitize("a\nb\r\nc"), "a b  c");
    }
}
