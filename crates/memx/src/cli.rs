//! Argument parsing (no external parser crates).

use memexplore::Objective;
use std::error::Error;
use std::fmt;

/// The usage text printed by `memx help` and on errors.
pub const USAGE: &str = "\
memx — energy-aware data-cache exploration (DAC'99)

USAGE:
  memx explore   KERNEL.mx|TRACE.din [--part cy7c|lp2m|16m] [--em NJ]
                 [--natural] [--analytical] [--bound-cycles N]
                 [--bound-energy NJ] [--pareto] [--telemetry]
                 [--engine fused|per-design] [--no-analytic]
                 [--checkpoint PATH [--checkpoint-every N] [--resume]]
                 [--deadline SECS] [--log-json FILE] [--progress]
  memx pareto    KERNEL.mx|TRACE.din [--part cy7c|lp2m|16m] [--em NJ]
                 [--natural] [--format csv|json] [--exhaustive]
                 [--telemetry] [--engine fused|per-design] [--no-analytic]
                 [--checkpoint PATH [--checkpoint-every N] [--resume]]
                 [--deadline SECS] [--log-json FILE] [--progress]
  memx search    KERNEL.mx|TRACE.din
                 [--objective energy|cycles|weighted=WE,WC]
                 [--space paper|expansive] [--beam N] [--gap F]
                 [--deadline SECS] [--format text|csv|json]
                 [--part cy7c|lp2m|16m] [--em NJ] [--natural]
                 [--telemetry] [--no-analytic]
                 [--log-json FILE] [--progress]
  memx sweep     KERNEL.mx|TRACE.din --distributed N [--shards K]
                 [--attach HOST:PORT]... [--shard-dir DIR]
                 [--retry-budget N] [--backoff-ms MS] [--straggler-ms MS]
                 [--part cy7c|lp2m|16m] [--em NJ] [--natural]
                 [--bound-cycles N] [--bound-energy NJ] [--pareto]
                 [--telemetry] [--engine fused|per-design]
                 [--log-json FILE] [--progress]
  memx worker    KERNEL.mx|TRACE.din --start I --end J --checkpoint PATH
                 [--checkpoint-every N] [--resume]
                 [--part cy7c|lp2m|16m] [--em NJ] [--natural]
                 [--engine fused|per-design]
  memx serve     [--addr HOST:PORT] [--slots N] [--cache-entries N]
                 [--cache-bytes N] [--default-deadline SECS]
                 [--distribute N] [--log-json FILE] [--progress]
  memx submit    ADDR KERNEL.mx [--job explore|pareto|search]
                 [--part cy7c|lp2m|16m] [--em NJ] [--natural]
                 [--analytical] [--bound-cycles N] [--bound-energy NJ]
                 [--pareto] [--engine fused|per-design]
                 [--format csv|json|text] [--exhaustive]
                 [--objective energy|cycles|weighted=WE,WC]
                 [--space paper|expansive] [--beam N] [--gap F]
                 [--deadline SECS] [--wait-health SECS]
                 [--retries N] [--backoff MS]
  memx report    LOG.jsonl
  memx simulate  KERNEL.mx --cache N --line N [--assoc N] [--tiling B]
                 [--natural] [--classify]
  memx place     KERNEL.mx --cache N --line N
  memx min-cache KERNEL.mx --line N
  memx classes   KERNEL.mx
  memx trace     KERNEL.mx [--reads-only] [--din]
  memx simulate-din TRACE.din --cache N --line N [--assoc N] [--classify]
                 [--format text|csv|json]
  memx help

Distributed sweeps: `memx sweep --distributed N` shards the explore grid
across N local `memx worker` processes (plus any daemons named with
`--attach`), retries failures with exponential backoff, speculatively
re-dispatches stragglers, and merges results byte-identical to
`memx explore`. `memx worker` is the single-shard engine the coordinator
spawns; its checkpoint file is both the result stream and the
crash-recovery journal.

Workloads: the sweep commands (explore, pareto, search) and `memx submit`
accept either a loopir kernel file or a Dinero `.din` address trace
(detected by the `.din` extension). Traces are streamed in fixed-capacity
chunks, so multi-GB files run in bounded memory; the trace grid fixes
tiling at 1 because an external trace cannot be re-tiled.

Streams: records and reports go to stdout; telemetry summaries, progress,
notes, and warnings go to stderr, so piped output stays machine-readable.
`--log-json FILE` writes one JSON event per line; `memx report` renders a
run summary from such a log. `--checkpoint-every 0` selects the default
flush interval (32 records).

Kernel files use the loopir text format, e.g.:

  kernel Compress
  array a[32][32] elem 4
  for i = 1 .. 31
  for j = 1 .. 31
    read  a[i][j]
    read  a[i-1][j-1]
    write a[i][j]
";

/// Sweep-supervisor flags shared by `explore` and `pareto`
/// (checkpoint/resume/deadline). All default to off; the sweep then runs
/// supervised only when one of them is set.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Supervise {
    /// Checkpoint sidecar path (`--checkpoint`).
    pub checkpoint: Option<String>,
    /// Flush the checkpoint after every N completed records
    /// (`--checkpoint-every`, default 32).
    pub checkpoint_every: usize,
    /// Resume from an existing checkpoint (`--resume`).
    pub resume: bool,
    /// Cooperative deadline in seconds (`--deadline`).
    pub deadline_secs: Option<f64>,
}

impl Supervise {
    /// True when any supervisor feature was requested.
    pub fn is_active(&self) -> bool {
        self.checkpoint.is_some() || self.deadline_secs.is_some()
    }

    /// Cross-flag validation, run after the flag loop.
    fn validate(&self) -> Result<(), UsageError> {
        if self.resume && self.checkpoint.is_none() {
            return Err(err("`--resume` requires `--checkpoint PATH`"));
        }
        if self.checkpoint_every > 0 && self.checkpoint.is_none() {
            return Err(err("`--checkpoint-every` requires `--checkpoint PATH`"));
        }
        // `<= 0.0 || NaN` rather than `!(d > 0.0)`: same set, and clippy
        // prefers the comparison spelled positively.
        if self.deadline_secs.is_some_and(|d| d <= 0.0 || d.is_nan()) {
            return Err(err("`--deadline` must be a positive number of seconds"));
        }
        Ok(())
    }

    /// Handles one supervisor flag; returns false if `flag` is not one.
    fn parse_flag(&mut self, flag: &str, args: &mut Args<'_>) -> Result<bool, UsageError> {
        match flag {
            "--checkpoint" => self.checkpoint = Some(args.value_of(flag)?.to_string()),
            "--checkpoint-every" => {
                // 0 selects the default flush interval (32 records), so
                // scripts can pass a computed value without special-casing.
                let n: usize = parse_num(flag, args.value_of(flag)?)?;
                self.checkpoint_every = if n == 0 { 32 } else { n };
            }
            "--resume" => self.resume = true,
            "--deadline" => self.deadline_secs = Some(parse_num(flag, args.value_of(flag)?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Observability flags shared by `explore` and `pareto` (`--log-json`,
/// `--progress`). Both default to off; with both off the sweep runs with
/// zero observability overhead and byte-identical output.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObsFlags {
    /// JSONL event-log path (`--log-json FILE`).
    pub log_json: Option<String>,
    /// Live progress line on stderr (`--progress`).
    pub progress: bool,
}

impl ObsFlags {
    /// True when any observability feature was requested.
    pub fn is_active(&self) -> bool {
        self.log_json.is_some() || self.progress
    }

    /// Handles one observability flag; returns false if `flag` is not one.
    fn parse_flag(&mut self, flag: &str, args: &mut Args<'_>) -> Result<bool, UsageError> {
        match flag {
            "--log-json" => self.log_json = Some(args.value_of(flag)?.to_string()),
            "--progress" => self.progress = true,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// A parsed command line.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// Full design-space exploration with optional bounds.
    Explore {
        /// Path to the kernel file.
        file: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// Use the paper's analytical miss-rate model.
        analytical: bool,
        /// Cycle bound for the min-energy selection.
        bound_cycles: Option<f64>,
        /// Energy bound (nJ) for the min-time selection.
        bound_energy: Option<f64>,
        /// Print the Pareto frontier.
        pareto: bool,
        /// Print sweep telemetry (trace reuse, phase times, utilization).
        telemetry: bool,
        /// Simulation engine (`fused`, the default, or `per-design`).
        engine: String,
        /// Disable the analytic fast path (`--no-analytic`): replay every
        /// trace group even when it classifies analytic-exact.
        no_analytic: bool,
        /// Supervisor options (checkpoint/resume/deadline).
        supervise: Supervise,
        /// Observability options (JSONL event log, live progress).
        obs: ObsFlags,
    },
    /// The three-objective Pareto frontier over the paper grid, with
    /// admissible branch-and-bound pruning.
    Pareto {
        /// Path to the kernel file.
        file: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// Output format: `csv` (default) or `json`.
        format: String,
        /// Run the exhaustive sweep instead of the pruned one.
        exhaustive: bool,
        /// Print sweep telemetry (prune counts, phase times) as comments.
        telemetry: bool,
        /// Simulation engine (`fused`, the default, or `per-design`).
        engine: String,
        /// Disable the analytic fast path (`--no-analytic`).
        no_analytic: bool,
        /// Supervisor options (checkpoint/resume/deadline).
        supervise: Supervise,
        /// Observability options (JSONL event log, live progress).
        obs: ObsFlags,
    },
    /// Certified bound-guided best-first search for the grid's
    /// single-objective optimum (`memexplore::search`), with an anytime
    /// gap certificate — the way into the million-design grids.
    Search {
        /// Path to the kernel file.
        file: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// Objective to minimize.
        objective: Objective,
        /// Grid keyword: `paper` (default) or `expansive`.
        space: String,
        /// Beam width (`None` = exact search).
        beam: Option<usize>,
        /// Relative gap target (`0` certifies the optimum).
        gap: f64,
        /// Wall-clock budget in seconds (anytime result on expiry).
        deadline_secs: Option<f64>,
        /// Output format: `text` (default), `csv`, or `json`.
        format: String,
        /// Print search telemetry on stderr.
        telemetry: bool,
        /// Disable the analytic fast path (`--no-analytic`).
        no_analytic: bool,
        /// Observability options (JSONL event log, live progress).
        obs: ObsFlags,
    },
    /// Distributed exploration: shard the design grid across local
    /// worker processes and/or attached daemons, with retry/backoff,
    /// straggler re-dispatch, and a byte-identical merge.
    Sweep {
        /// Path to the kernel or `.din` trace file.
        file: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// Cycle bound for the min-energy selection.
        bound_cycles: Option<f64>,
        /// Energy bound (nJ) for the min-time selection.
        bound_energy: Option<f64>,
        /// Print the Pareto frontier.
        pareto: bool,
        /// Print merged sweep telemetry (including shard counters).
        telemetry: bool,
        /// Simulation engine forwarded to workers.
        engine: String,
        /// Local worker processes to spawn (0 = coordinator-local only,
        /// unless daemons are attached).
        distributed: usize,
        /// Shard count override (default: 2 per worker slot).
        shards: Option<usize>,
        /// Daemon addresses to attach as workers over HTTP.
        attach: Vec<String>,
        /// Directory for per-shard checkpoint files (default: a
        /// temporary directory).
        shard_dir: Option<String>,
        /// Extra attempts allowed per shard after the first.
        retry_budget: u32,
        /// Base retry backoff in milliseconds.
        backoff_ms: u64,
        /// Heartbeat age (ms) before a straggler is re-dispatched.
        straggler_ms: u64,
        /// Observability options (JSONL event log, live progress).
        obs: ObsFlags,
    },
    /// One shard of a distributed sweep: evaluate grid designs
    /// `[start, end)` and stream records into a checkpoint file (the
    /// coordinator's wire format and crash-recovery journal).
    Worker {
        /// Path to the kernel or `.din` trace file.
        file: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// Simulation engine (`fused` or `per-design`).
        engine: String,
        /// First global design index (inclusive).
        start: usize,
        /// One past the last global design index.
        end: usize,
        /// Checkpoint sidecar path (required: it is the result stream).
        checkpoint: String,
        /// Flush interval in records (0 selects the default).
        checkpoint_every: usize,
        /// Resume from an existing checkpoint (crash recovery).
        resume: bool,
    },
    /// Run the sweep-as-a-service daemon: exploration jobs over
    /// HTTP+JSON, fair scheduling onto a shared worker pool, and a
    /// content-addressed result cache with single-flight deduplication.
    Serve {
        /// Listen address (`HOST:PORT`; port 0 picks a free port).
        addr: String,
        /// Concurrent job slots (0 = one per available core).
        slots: usize,
        /// Result-cache capacity in entries.
        cache_entries: usize,
        /// Result-cache capacity in bytes.
        cache_bytes: usize,
        /// Deadline applied to jobs that do not set one (`None` = no cap).
        default_deadline: Option<f64>,
        /// Route explore jobs through the embedded shard coordinator
        /// onto N in-process workers (0 = off).
        distribute: usize,
        /// Observability options (JSONL event log, live progress).
        obs: ObsFlags,
    },
    /// Submit one job to a running `memx serve` daemon and print its
    /// response (the tiny client the CI smoke job and scripts use).
    Submit {
        /// Daemon address (`HOST:PORT`).
        addr: String,
        /// Path to the kernel file (read locally, sent in the request).
        file: String,
        /// Job kind: `explore` (default), `pareto`, or `search`.
        job: String,
        /// Off-chip part keyword (`cy7c`, `lp2m`, `16m`).
        part: String,
        /// Custom `Em` (nJ/access) overriding `part`.
        em_nj: Option<f64>,
        /// Use the natural (unoptimized) layout.
        natural: bool,
        /// explore: use the analytical miss-rate model.
        analytical: bool,
        /// explore: cycle bound for the min-energy selection.
        bound_cycles: Option<f64>,
        /// explore: energy bound (nJ) for the min-time selection.
        bound_energy: Option<f64>,
        /// explore: print the Pareto frontier.
        pareto: bool,
        /// Simulation engine (`fused` or `per-design`).
        engine: String,
        /// pareto/search output format.
        format: Option<String>,
        /// pareto: exhaustive instead of pruned.
        exhaustive: bool,
        /// search: objective to minimize.
        objective: Option<Objective>,
        /// search: grid keyword (`paper` or `expansive`).
        space: String,
        /// search: beam width.
        beam: Option<usize>,
        /// search: relative gap target.
        gap: f64,
        /// Per-job deadline in seconds.
        deadline_secs: Option<f64>,
        /// Poll `GET /v1/health` for up to SECS before submitting.
        wait_health_secs: Option<f64>,
        /// Retries after connection-refused/timeout (0 = fail fast).
        retries: u32,
        /// Base retry backoff in milliseconds (exponential + jitter).
        backoff_ms: u64,
    },
    /// Render a run summary from a `--log-json` event log.
    Report {
        /// Path to the JSONL event log.
        file: String,
    },
    /// Simulate one configuration.
    Simulate {
        /// Path to the kernel file.
        file: String,
        /// Cache size in bytes.
        cache: usize,
        /// Line size in bytes.
        line: usize,
        /// Associativity.
        assoc: usize,
        /// Tiling size.
        tiling: u64,
        /// Use the natural layout.
        natural: bool,
        /// Enable three-C miss classification.
        classify: bool,
    },
    /// Run the off-chip assignment and report the layout.
    Place {
        /// Path to the kernel file.
        file: String,
        /// Cache size in bytes.
        cache: u64,
        /// Line size in bytes.
        line: u64,
    },
    /// The §3 minimum cache size bound.
    MinCache {
        /// Path to the kernel file.
        file: String,
        /// Line size in bytes.
        line: u64,
    },
    /// Print the reference classes and cases.
    Classes {
        /// Path to the kernel file.
        file: String,
    },
    /// Emit the address trace in Dinero `.din` format.
    Trace {
        /// Path to the kernel file.
        file: String,
        /// Keep only reads.
        reads_only: bool,
    },
    /// Simulate a Dinero `.din` trace directly (no kernel knowledge).
    SimulateDin {
        /// Path to the `.din` file.
        file: String,
        /// Cache size in bytes.
        cache: usize,
        /// Line size in bytes.
        line: usize,
        /// Associativity.
        assoc: usize,
        /// Enable three-C miss classification.
        classify: bool,
        /// Output format: `text` (default), `csv`, or `json`.
        format: String,
    },
    /// Print usage.
    Help,
}

/// A command-line usage problem (bad flag, missing value, …).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for UsageError {}

fn err(msg: impl Into<String>) -> UsageError {
    UsageError(msg.into())
}

/// A tiny flag cursor over the argument list.
struct Args<'a> {
    items: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let item = self.items.get(self.pos)?;
        self.pos += 1;
        Some(item)
    }

    fn value_of(&mut self, flag: &str) -> Result<&'a str, UsageError> {
        self.next()
            .ok_or_else(|| err(format!("flag `{flag}` needs a value")))
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, UsageError> {
    value
        .parse()
        .map_err(|_| err(format!("bad value `{value}` for `{flag}`")))
}

fn parse_engine(value: &str) -> Result<String, UsageError> {
    if !["fused", "per-design"].contains(&value) {
        return Err(err(format!(
            "unknown engine `{value}` (expected fused or per-design)"
        )));
    }
    Ok(value.to_string())
}

/// Parses the argument vector (without the program name).
///
/// # Errors
///
/// [`UsageError`] describing the first problem; callers print it together
/// with [`USAGE`].
pub fn parse_args(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = Args {
        items: argv,
        pos: 0,
    };
    let sub = args.next().ok_or_else(|| err("missing subcommand"))?;
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "explore" => {
            let file = args
                .next()
                .ok_or_else(|| err("explore needs a kernel file"))?;
            let mut cmd = Command::Explore {
                file: file.to_string(),
                part: "cy7c".to_string(),
                em_nj: None,
                natural: false,
                analytical: false,
                bound_cycles: None,
                bound_energy: None,
                pareto: false,
                telemetry: false,
                engine: "fused".to_string(),
                no_analytic: false,
                supervise: Supervise::default(),
                obs: ObsFlags::default(),
            };
            while let Some(flag) = args.next() {
                let Command::Explore {
                    part,
                    em_nj,
                    natural,
                    analytical,
                    bound_cycles,
                    bound_energy,
                    pareto,
                    telemetry,
                    engine,
                    no_analytic,
                    supervise,
                    obs,
                    ..
                } = &mut cmd
                else {
                    unreachable!("cmd is Explore by construction");
                };
                match flag {
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        *part = v.to_string();
                    }
                    "--em" => *em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => *natural = true,
                    "--analytical" => *analytical = true,
                    "--bound-cycles" => {
                        *bound_cycles = Some(parse_num(flag, args.value_of(flag)?)?)
                    }
                    "--bound-energy" => {
                        *bound_energy = Some(parse_num(flag, args.value_of(flag)?)?)
                    }
                    "--pareto" => *pareto = true,
                    "--telemetry" => *telemetry = true,
                    "--engine" => *engine = parse_engine(args.value_of(flag)?)?,
                    "--no-analytic" => *no_analytic = true,
                    other => {
                        if !supervise.parse_flag(other, &mut args)?
                            && !obs.parse_flag(other, &mut args)?
                        {
                            return Err(err(format!("unknown flag `{other}` for explore")));
                        }
                    }
                }
            }
            if let Command::Explore { supervise, .. } = &cmd {
                supervise.validate()?;
            }
            Ok(cmd)
        }
        "pareto" => {
            let file = args
                .next()
                .ok_or_else(|| err("pareto needs a kernel file"))?
                .to_string();
            let mut part = "cy7c".to_string();
            let mut em_nj = None;
            let mut natural = false;
            let mut format = "csv".to_string();
            let mut exhaustive = false;
            let mut telemetry = false;
            let mut engine = "fused".to_string();
            let mut no_analytic = false;
            let mut supervise = Supervise::default();
            let mut obs = ObsFlags::default();
            while let Some(flag) = args.next() {
                match flag {
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        part = v.to_string();
                    }
                    "--em" => em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => natural = true,
                    "--format" => {
                        let v = args.value_of(flag)?;
                        if !["csv", "json"].contains(&v) {
                            return Err(err(format!(
                                "unknown format `{v}` (expected csv or json)"
                            )));
                        }
                        format = v.to_string();
                    }
                    "--exhaustive" => exhaustive = true,
                    "--telemetry" => telemetry = true,
                    "--engine" => engine = parse_engine(args.value_of(flag)?)?,
                    "--no-analytic" => no_analytic = true,
                    other => {
                        if !supervise.parse_flag(other, &mut args)?
                            && !obs.parse_flag(other, &mut args)?
                        {
                            return Err(err(format!("unknown flag `{other}` for pareto")));
                        }
                    }
                }
            }
            supervise.validate()?;
            Ok(Command::Pareto {
                file,
                part,
                em_nj,
                natural,
                format,
                exhaustive,
                telemetry,
                engine,
                no_analytic,
                supervise,
                obs,
            })
        }
        "search" => {
            let file = args
                .next()
                .ok_or_else(|| err("search needs a kernel file"))?
                .to_string();
            let mut part = "cy7c".to_string();
            let mut em_nj = None;
            let mut natural = false;
            let mut objective = Objective::Energy;
            let mut space = "paper".to_string();
            let mut beam = None;
            let mut gap = 0.0f64;
            let mut deadline_secs = None;
            let mut format = "text".to_string();
            let mut telemetry = false;
            let mut no_analytic = false;
            let mut obs = ObsFlags::default();
            while let Some(flag) = args.next() {
                match flag {
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        part = v.to_string();
                    }
                    "--em" => em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => natural = true,
                    "--objective" => objective = args.value_of(flag)?.parse().map_err(err)?,
                    "--space" => {
                        let v = args.value_of(flag)?;
                        if !["paper", "expansive"].contains(&v) {
                            return Err(err(format!(
                                "unknown space `{v}` (expected paper or expansive)"
                            )));
                        }
                        space = v.to_string();
                    }
                    "--beam" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        if n == 0 {
                            return Err(err("`--beam` must be at least 1"));
                        }
                        beam = Some(n);
                    }
                    "--gap" => {
                        let g: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if !g.is_finite() || g < 0.0 {
                            return Err(err("`--gap` must be a finite non-negative fraction"));
                        }
                        gap = g;
                    }
                    "--deadline" => {
                        let d: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if d <= 0.0 || d.is_nan() {
                            return Err(err("`--deadline` must be a positive number of seconds"));
                        }
                        deadline_secs = Some(d);
                    }
                    "--format" => {
                        let v = args.value_of(flag)?;
                        if !["text", "csv", "json"].contains(&v) {
                            return Err(err(format!(
                                "unknown format `{v}` (expected text, csv, or json)"
                            )));
                        }
                        format = v.to_string();
                    }
                    "--telemetry" => telemetry = true,
                    "--no-analytic" => no_analytic = true,
                    other => {
                        if !obs.parse_flag(other, &mut args)? {
                            return Err(err(format!("unknown flag `{other}` for search")));
                        }
                    }
                }
            }
            Ok(Command::Search {
                file,
                part,
                em_nj,
                natural,
                objective,
                space,
                beam,
                gap,
                deadline_secs,
                format,
                telemetry,
                no_analytic,
                obs,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7199".to_string();
            let mut slots = 0usize;
            let mut cache_entries = 256usize;
            let mut cache_bytes = 64usize << 20;
            let mut default_deadline = None;
            let mut distribute = 0usize;
            let mut obs = ObsFlags::default();
            while let Some(flag) = args.next() {
                match flag {
                    "--addr" => {
                        let v = args.value_of(flag)?;
                        if !v.contains(':') {
                            return Err(err(format!("`--addr` needs HOST:PORT, got `{v}`")));
                        }
                        addr = v.to_string();
                    }
                    "--slots" => slots = parse_num(flag, args.value_of(flag)?)?,
                    "--cache-entries" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        if n == 0 {
                            return Err(err("`--cache-entries` must be at least 1"));
                        }
                        cache_entries = n;
                    }
                    "--cache-bytes" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        if n == 0 {
                            return Err(err("`--cache-bytes` must be at least 1"));
                        }
                        cache_bytes = n;
                    }
                    "--default-deadline" => {
                        let d: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if d <= 0.0 || d.is_nan() {
                            return Err(err(
                                "`--default-deadline` must be a positive number of seconds",
                            ));
                        }
                        default_deadline = Some(d);
                    }
                    "--distribute" => distribute = parse_num(flag, args.value_of(flag)?)?,
                    other => {
                        if !obs.parse_flag(other, &mut args)? {
                            return Err(err(format!("unknown flag `{other}` for serve")));
                        }
                    }
                }
            }
            Ok(Command::Serve {
                addr,
                slots,
                cache_entries,
                cache_bytes,
                default_deadline,
                distribute,
                obs,
            })
        }
        "submit" => {
            let addr = args
                .next()
                .ok_or_else(|| err("submit needs a daemon ADDR (HOST:PORT)"))?
                .to_string();
            if !addr.contains(':') {
                return Err(err(format!("submit ADDR needs HOST:PORT, got `{addr}`")));
            }
            let file = args
                .next()
                .ok_or_else(|| err("submit needs a kernel file"))?
                .to_string();
            let mut job = "explore".to_string();
            let mut part = "cy7c".to_string();
            let mut em_nj = None;
            let mut natural = false;
            let mut analytical = false;
            let mut bound_cycles = None;
            let mut bound_energy = None;
            let mut pareto = false;
            let mut engine = "fused".to_string();
            let mut format = None;
            let mut exhaustive = false;
            let mut objective = None;
            let mut space = "paper".to_string();
            let mut beam = None;
            let mut gap = 0.0f64;
            let mut deadline_secs = None;
            let mut wait_health_secs = None;
            let mut retries = 0u32;
            let mut backoff_ms = 250u64;
            while let Some(flag) = args.next() {
                match flag {
                    "--job" => {
                        let v = args.value_of(flag)?;
                        if !["explore", "pareto", "search"].contains(&v) {
                            return Err(err(format!(
                                "unknown job `{v}` (expected explore, pareto, or search)"
                            )));
                        }
                        job = v.to_string();
                    }
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        part = v.to_string();
                    }
                    "--em" => em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => natural = true,
                    "--analytical" => analytical = true,
                    "--bound-cycles" => bound_cycles = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--bound-energy" => bound_energy = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--pareto" => pareto = true,
                    "--engine" => engine = parse_engine(args.value_of(flag)?)?,
                    "--format" => {
                        let v = args.value_of(flag)?;
                        if !["text", "csv", "json"].contains(&v) {
                            return Err(err(format!(
                                "unknown format `{v}` (expected text, csv, or json)"
                            )));
                        }
                        format = Some(v.to_string());
                    }
                    "--exhaustive" => exhaustive = true,
                    "--objective" => {
                        objective = Some(args.value_of(flag)?.parse().map_err(err)?);
                    }
                    "--space" => {
                        let v = args.value_of(flag)?;
                        if !["paper", "expansive"].contains(&v) {
                            return Err(err(format!(
                                "unknown space `{v}` (expected paper or expansive)"
                            )));
                        }
                        space = v.to_string();
                    }
                    "--beam" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        if n == 0 {
                            return Err(err("`--beam` must be at least 1"));
                        }
                        beam = Some(n);
                    }
                    "--gap" => {
                        let g: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if !g.is_finite() || g < 0.0 {
                            return Err(err("`--gap` must be a finite non-negative fraction"));
                        }
                        gap = g;
                    }
                    "--deadline" => {
                        let d: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if d <= 0.0 || d.is_nan() {
                            return Err(err("`--deadline` must be a positive number of seconds"));
                        }
                        deadline_secs = Some(d);
                    }
                    "--wait-health" => {
                        let d: f64 = parse_num(flag, args.value_of(flag)?)?;
                        if d <= 0.0 || d.is_nan() {
                            return Err(err(
                                "`--wait-health` must be a positive number of seconds",
                            ));
                        }
                        wait_health_secs = Some(d);
                    }
                    "--retries" => retries = parse_num(flag, args.value_of(flag)?)?,
                    "--backoff" => {
                        let ms: u64 = parse_num(flag, args.value_of(flag)?)?;
                        if ms == 0 {
                            return Err(err("`--backoff` must be at least 1 millisecond"));
                        }
                        backoff_ms = ms;
                    }
                    other => return Err(err(format!("unknown flag `{other}` for submit"))),
                }
            }
            Ok(Command::Submit {
                addr,
                file,
                job,
                part,
                em_nj,
                natural,
                analytical,
                bound_cycles,
                bound_energy,
                pareto,
                engine,
                format,
                exhaustive,
                objective,
                space,
                beam,
                gap,
                deadline_secs,
                wait_health_secs,
                retries,
                backoff_ms,
            })
        }
        "sweep" => {
            let file = args
                .next()
                .ok_or_else(|| err("sweep needs a kernel or trace file"))?
                .to_string();
            let mut part = "cy7c".to_string();
            let mut em_nj = None;
            let mut natural = false;
            let mut bound_cycles = None;
            let mut bound_energy = None;
            let mut pareto = false;
            let mut telemetry = false;
            let mut engine = "fused".to_string();
            let mut distributed = None;
            let mut shards = None;
            let mut attach = Vec::new();
            let mut shard_dir = None;
            let mut retry_budget = 3u32;
            let mut backoff_ms = 100u64;
            let mut straggler_ms = 10_000u64;
            let mut obs = ObsFlags::default();
            while let Some(flag) = args.next() {
                match flag {
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        part = v.to_string();
                    }
                    "--em" => em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => natural = true,
                    "--bound-cycles" => bound_cycles = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--bound-energy" => bound_energy = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--pareto" => pareto = true,
                    "--telemetry" => telemetry = true,
                    "--engine" => engine = parse_engine(args.value_of(flag)?)?,
                    "--distributed" => distributed = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--shards" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        if n == 0 {
                            return Err(err("`--shards` must be at least 1"));
                        }
                        shards = Some(n);
                    }
                    "--attach" => {
                        let v = args.value_of(flag)?;
                        if !v.contains(':') {
                            return Err(err(format!("`--attach` needs HOST:PORT, got `{v}`")));
                        }
                        attach.push(v.to_string());
                    }
                    "--shard-dir" => shard_dir = Some(args.value_of(flag)?.to_string()),
                    "--retry-budget" => retry_budget = parse_num(flag, args.value_of(flag)?)?,
                    "--backoff-ms" => {
                        let ms: u64 = parse_num(flag, args.value_of(flag)?)?;
                        if ms == 0 {
                            return Err(err("`--backoff-ms` must be at least 1"));
                        }
                        backoff_ms = ms;
                    }
                    "--straggler-ms" => {
                        let ms: u64 = parse_num(flag, args.value_of(flag)?)?;
                        if ms == 0 {
                            return Err(err("`--straggler-ms` must be at least 1"));
                        }
                        straggler_ms = ms;
                    }
                    other => {
                        if !obs.parse_flag(other, &mut args)? {
                            return Err(err(format!("unknown flag `{other}` for sweep")));
                        }
                    }
                }
            }
            // `--attach` alone is a valid worker pool; `--distributed`
            // is only mandatory when no daemon is attached.
            let distributed =
                match distributed {
                    Some(n) => n,
                    None if !attach.is_empty() => 0,
                    None => return Err(err(
                        "sweep needs `--distributed N` (0 = local only) or `--attach HOST:PORT`",
                    )),
                };
            Ok(Command::Sweep {
                file,
                part,
                em_nj,
                natural,
                bound_cycles,
                bound_energy,
                pareto,
                telemetry,
                engine,
                distributed,
                shards,
                attach,
                shard_dir,
                retry_budget,
                backoff_ms,
                straggler_ms,
                obs,
            })
        }
        "worker" => {
            let file = args
                .next()
                .ok_or_else(|| err("worker needs a kernel or trace file"))?
                .to_string();
            let mut part = "cy7c".to_string();
            let mut em_nj = None;
            let mut natural = false;
            let mut engine = "fused".to_string();
            let mut start = None;
            let mut end = None;
            let mut checkpoint = None;
            let mut checkpoint_every = 0usize;
            let mut resume = false;
            while let Some(flag) = args.next() {
                match flag {
                    "--part" => {
                        let v = args.value_of(flag)?;
                        if !["cy7c", "lp2m", "16m"].contains(&v) {
                            return Err(err(format!(
                                "unknown part `{v}` (expected cy7c, lp2m, or 16m)"
                            )));
                        }
                        part = v.to_string();
                    }
                    "--em" => em_nj = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--natural" => natural = true,
                    "--engine" => engine = parse_engine(args.value_of(flag)?)?,
                    "--start" => start = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--end" => end = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--checkpoint" => checkpoint = Some(args.value_of(flag)?.to_string()),
                    "--checkpoint-every" => {
                        let n: usize = parse_num(flag, args.value_of(flag)?)?;
                        checkpoint_every = if n == 0 { 32 } else { n };
                    }
                    "--resume" => resume = true,
                    other => return Err(err(format!("unknown flag `{other}` for worker"))),
                }
            }
            let start: usize = start.ok_or_else(|| err("worker needs `--start I`"))?;
            let end: usize = end.ok_or_else(|| err("worker needs `--end J`"))?;
            if end <= start {
                return Err(err("worker `--end` must be greater than `--start`"));
            }
            let checkpoint = checkpoint
                .ok_or_else(|| err("worker needs `--checkpoint PATH` (the result stream)"))?;
            Ok(Command::Worker {
                file,
                part,
                em_nj,
                natural,
                engine,
                start,
                end,
                checkpoint,
                checkpoint_every,
                resume,
            })
        }
        "report" => {
            let file = args
                .next()
                .ok_or_else(|| err("report needs a JSONL log file"))?
                .to_string();
            if let Some(extra) = args.next() {
                return Err(err(format!("unexpected argument `{extra}`")));
            }
            Ok(Command::Report { file })
        }
        "simulate" => {
            let file = args
                .next()
                .ok_or_else(|| err("simulate needs a kernel file"))?
                .to_string();
            let (mut cache, mut line) = (None, None);
            let (mut assoc, mut tiling) = (1usize, 1u64);
            let (mut natural, mut classify) = (false, false);
            while let Some(flag) = args.next() {
                match flag {
                    "--cache" => cache = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--line" => line = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--assoc" => assoc = parse_num(flag, args.value_of(flag)?)?,
                    "--tiling" => tiling = parse_num(flag, args.value_of(flag)?)?,
                    "--natural" => natural = true,
                    "--classify" => classify = true,
                    other => return Err(err(format!("unknown flag `{other}` for simulate"))),
                }
            }
            Ok(Command::Simulate {
                file,
                cache: cache.ok_or_else(|| err("simulate needs --cache"))?,
                line: line.ok_or_else(|| err("simulate needs --line"))?,
                assoc,
                tiling,
                natural,
                classify,
            })
        }
        "place" | "min-cache" => {
            let is_place = sub == "place";
            let file = args
                .next()
                .ok_or_else(|| err(format!("{sub} needs a kernel file")))?
                .to_string();
            let (mut cache, mut line) = (None, None);
            while let Some(flag) = args.next() {
                match flag {
                    "--cache" if is_place => cache = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--line" => line = Some(parse_num(flag, args.value_of(flag)?)?),
                    other => return Err(err(format!("unknown flag `{other}` for {sub}"))),
                }
            }
            let line = line.ok_or_else(|| err(format!("{sub} needs --line")))?;
            if is_place {
                Ok(Command::Place {
                    file,
                    cache: cache.ok_or_else(|| err("place needs --cache"))?,
                    line,
                })
            } else {
                Ok(Command::MinCache { file, line })
            }
        }
        "classes" => {
            let file = args
                .next()
                .ok_or_else(|| err("classes needs a kernel file"))?
                .to_string();
            if let Some(extra) = args.next() {
                return Err(err(format!("unexpected argument `{extra}`")));
            }
            Ok(Command::Classes { file })
        }
        "simulate-din" => {
            let file = args
                .next()
                .ok_or_else(|| err("simulate-din needs a trace file"))?
                .to_string();
            let (mut cache, mut line) = (None, None);
            let mut assoc = 1usize;
            let mut classify = false;
            let mut format = "text".to_string();
            while let Some(flag) = args.next() {
                match flag {
                    "--cache" => cache = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--line" => line = Some(parse_num(flag, args.value_of(flag)?)?),
                    "--assoc" => assoc = parse_num(flag, args.value_of(flag)?)?,
                    "--classify" => classify = true,
                    "--format" => {
                        let v = args.value_of(flag)?;
                        if !["text", "csv", "json"].contains(&v) {
                            return Err(err(format!(
                                "unknown format `{v}` (expected text, csv, or json)"
                            )));
                        }
                        format = v.to_string();
                    }
                    other => return Err(err(format!("unknown flag `{other}` for simulate-din"))),
                }
            }
            Ok(Command::SimulateDin {
                file,
                cache: cache.ok_or_else(|| err("simulate-din needs --cache"))?,
                line: line.ok_or_else(|| err("simulate-din needs --line"))?,
                assoc,
                classify,
                format,
            })
        }
        "trace" => {
            let file = args
                .next()
                .ok_or_else(|| err("trace needs a kernel file"))?
                .to_string();
            let mut reads_only = false;
            while let Some(flag) = args.next() {
                match flag {
                    "--reads-only" => reads_only = true,
                    // `.din` is already the only output format; the flag is
                    // accepted so scripts can state the intent explicitly.
                    "--din" => {}
                    other => return Err(err(format!("unknown flag `{other}` for trace"))),
                }
            }
            Ok(Command::Trace { file, reads_only })
        }
        other => Err(err(format!("unknown subcommand `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_explore_with_all_flags() {
        let cmd = parse_args(&argv(
            "explore k.mx --part 16m --natural --analytical --bound-cycles 5000 --bound-energy 5500 --pareto --telemetry --engine per-design --no-analytic",
        ))
        .expect("valid");
        match cmd {
            Command::Explore {
                file,
                part,
                natural,
                analytical,
                bound_cycles,
                bound_energy,
                pareto,
                telemetry,
                em_nj,
                engine,
                no_analytic,
                supervise,
                obs,
            } => {
                assert_eq!(file, "k.mx");
                assert_eq!(part, "16m");
                assert!(natural && analytical && pareto && telemetry);
                assert!(no_analytic);
                assert_eq!(bound_cycles, Some(5000.0));
                assert_eq!(bound_energy, Some(5500.0));
                assert_eq!(em_nj, None);
                assert_eq!(engine, "per-design");
                assert_eq!(supervise, Supervise::default());
                assert!(!supervise.is_active());
                assert_eq!(obs, ObsFlags::default());
                assert!(!obs.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn telemetry_defaults_off() {
        match parse_args(&argv("explore k.mx")).expect("valid") {
            Command::Explore { telemetry, .. } => assert!(!telemetry),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_pareto_with_all_flags() {
        let cmd = parse_args(&argv(
            "pareto k.mx --part lp2m --natural --format json --exhaustive --telemetry --no-analytic",
        ))
        .expect("valid");
        match cmd {
            Command::Pareto {
                file,
                part,
                em_nj,
                natural,
                format,
                exhaustive,
                telemetry,
                engine,
                no_analytic,
                supervise,
                obs,
            } => {
                assert_eq!(file, "k.mx");
                assert_eq!(part, "lp2m");
                assert_eq!(em_nj, None);
                assert!(natural && exhaustive && telemetry);
                assert!(no_analytic);
                assert_eq!(format, "json");
                assert_eq!(engine, "fused");
                assert!(!supervise.is_active());
                assert!(!obs.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn pareto_defaults_to_pruned_csv() {
        match parse_args(&argv("pareto k.mx")).expect("valid") {
            Command::Pareto {
                format,
                exhaustive,
                telemetry,
                ..
            } => {
                assert_eq!(format, "csv");
                assert!(!exhaustive && !telemetry);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_search_with_all_flags() {
        let cmd = parse_args(&argv(
            "search k.mx --objective weighted=1,0.5 --space expansive --beam 16 \
             --gap 0.01 --deadline 30 --format json --part lp2m --natural \
             --telemetry --no-analytic --log-json run.jsonl --progress",
        ))
        .expect("valid");
        match cmd {
            Command::Search {
                file,
                part,
                em_nj,
                natural,
                objective,
                space,
                beam,
                gap,
                deadline_secs,
                format,
                telemetry,
                no_analytic,
                obs,
            } => {
                assert_eq!(file, "k.mx");
                assert_eq!(part, "lp2m");
                assert_eq!(em_nj, None);
                assert!(natural && telemetry);
                assert!(no_analytic);
                assert_eq!(
                    objective,
                    Objective::Weighted {
                        energy_weight: 1.0,
                        cycles_weight: 0.5
                    }
                );
                assert_eq!(space, "expansive");
                assert_eq!(beam, Some(16));
                assert_eq!(gap, 0.01);
                assert_eq!(deadline_secs, Some(30.0));
                assert_eq!(format, "json");
                assert_eq!(obs.log_json.as_deref(), Some("run.jsonl"));
                assert!(obs.progress);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn search_defaults_to_exact_energy_on_the_paper_grid() {
        match parse_args(&argv("search k.mx")).expect("valid") {
            Command::Search {
                objective,
                space,
                beam,
                gap,
                deadline_secs,
                format,
                ..
            } => {
                assert_eq!(objective, Objective::Energy);
                assert_eq!(space, "paper");
                assert_eq!(beam, None);
                assert_eq!(gap, 0.0);
                assert_eq!(deadline_secs, None);
                assert_eq!(format, "text");
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn search_rejects_bad_values() {
        for (line, needle) in [
            ("search k.mx --objective speed", "unknown objective"),
            ("search k.mx --objective weighted=-1,2", "non-negative"),
            ("search k.mx --space tiny", "unknown space"),
            ("search k.mx --beam 0", "--beam"),
            ("search k.mx --gap -0.1", "--gap"),
            ("search k.mx --deadline 0", "--deadline"),
            ("search k.mx --format yaml", "unknown format"),
            ("search k.mx --checkpoint c.bin", "unknown flag"),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn engine_defaults_to_fused_and_rejects_unknown_values() {
        match parse_args(&argv("explore k.mx")).expect("valid") {
            Command::Explore { engine, .. } => assert_eq!(engine, "fused"),
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv("pareto k.mx --engine per-design")).expect("valid") {
            Command::Pareto { engine, .. } => assert_eq!(engine, "per-design"),
            other => panic!("wrong command: {other:?}"),
        }
        let e = parse_args(&argv("explore k.mx --engine turbo")).expect_err("should fail");
        assert!(e.0.contains("turbo"));
        assert!(parse_args(&argv("pareto k.mx --engine")).is_err());
    }

    #[test]
    fn pareto_rejects_bad_format() {
        let e = parse_args(&argv("pareto k.mx --format xml")).expect_err("should fail");
        assert!(e.0.contains("xml"));
        assert!(parse_args(&argv("pareto")).is_err());
    }

    #[test]
    fn simulate_requires_geometry() {
        let e = parse_args(&argv("simulate k.mx --cache 64")).expect_err("should fail");
        assert!(e.0.contains("--line"));
        let ok = parse_args(&argv(
            "simulate k.mx --cache 64 --line 8 --assoc 2 --classify",
        ))
        .expect("valid");
        assert!(matches!(
            ok,
            Command::Simulate {
                cache: 64,
                line: 8,
                assoc: 2,
                classify: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_supervisor_flags_on_both_sweeps() {
        let cmd = parse_args(&argv(
            "explore k.mx --checkpoint sweep.ckpt --checkpoint-every 8 --resume --deadline 2.5",
        ))
        .expect("valid");
        match cmd {
            Command::Explore { supervise, .. } => {
                assert_eq!(supervise.checkpoint.as_deref(), Some("sweep.ckpt"));
                assert_eq!(supervise.checkpoint_every, 8);
                assert!(supervise.resume);
                assert_eq!(supervise.deadline_secs, Some(2.5));
                assert!(supervise.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv("pareto k.mx --checkpoint p.ckpt")).expect("valid") {
            Command::Pareto { supervise, .. } => {
                assert_eq!(supervise.checkpoint.as_deref(), Some("p.ckpt"));
                assert!(!supervise.resume);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn supervisor_flag_combinations_are_validated() {
        let e = parse_args(&argv("explore k.mx --resume")).expect_err("should fail");
        assert!(e.0.contains("--checkpoint"), "{e}");
        let e = parse_args(&argv("pareto k.mx --checkpoint-every 4")).expect_err("should fail");
        assert!(e.0.contains("--checkpoint"), "{e}");
        assert!(parse_args(&argv("explore k.mx --deadline 0")).is_err());
        assert!(parse_args(&argv("explore k.mx --deadline -3")).is_err());
        assert!(parse_args(&argv("explore k.mx --checkpoint")).is_err());
    }

    #[test]
    fn checkpoint_every_zero_selects_the_default_interval() {
        match parse_args(&argv("explore k.mx --checkpoint c --checkpoint-every 0")).expect("valid")
        {
            Command::Explore { supervise, .. } => assert_eq!(supervise.checkpoint_every, 32),
            other => panic!("wrong command: {other:?}"),
        }
        // The flag still requires a checkpoint path, even spelled as 0.
        assert!(parse_args(&argv("explore k.mx --checkpoint-every 0")).is_err());
    }

    #[test]
    fn parses_observability_flags_on_both_sweeps() {
        match parse_args(&argv("explore k.mx --log-json run.jsonl --progress")).expect("valid") {
            Command::Explore { obs, .. } => {
                assert_eq!(obs.log_json.as_deref(), Some("run.jsonl"));
                assert!(obs.progress && obs.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv("pareto k.mx --progress")).expect("valid") {
            Command::Pareto { obs, .. } => {
                assert_eq!(obs.log_json, None);
                assert!(obs.progress && obs.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_args(&argv("explore k.mx --log-json")).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        match parse_args(&argv("serve")).expect("valid") {
            Command::Serve {
                addr,
                slots,
                cache_entries,
                cache_bytes,
                default_deadline,
                distribute,
                obs,
            } => {
                assert_eq!(addr, "127.0.0.1:7199");
                assert_eq!(slots, 0);
                assert_eq!(cache_entries, 256);
                assert_eq!(cache_bytes, 64 << 20);
                assert_eq!(default_deadline, None);
                assert_eq!(distribute, 0);
                assert!(!obs.is_active());
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv(
            "serve --addr 0.0.0.0:9000 --slots 4 --cache-entries 8 --cache-bytes 1024 \
             --default-deadline 30 --distribute 2 --log-json serve.jsonl --progress",
        ))
        .expect("valid")
        {
            Command::Serve {
                addr,
                slots,
                cache_entries,
                cache_bytes,
                default_deadline,
                distribute,
                obs,
            } => {
                assert_eq!(addr, "0.0.0.0:9000");
                assert_eq!(slots, 4);
                assert_eq!(cache_entries, 8);
                assert_eq!(cache_bytes, 1024);
                assert_eq!(default_deadline, Some(30.0));
                assert_eq!(distribute, 2);
                assert_eq!(obs.log_json.as_deref(), Some("serve.jsonl"));
                assert!(obs.progress);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_values() {
        for (line, needle) in [
            ("serve --addr nocolon", "HOST:PORT"),
            ("serve --cache-entries 0", "--cache-entries"),
            ("serve --cache-bytes 0", "--cache-bytes"),
            ("serve --default-deadline 0", "--default-deadline"),
            ("serve --default-deadline -5", "--default-deadline"),
            ("serve --telemetry", "unknown flag"),
            ("serve --wat", "unknown flag"),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn submit_defaults_and_flags() {
        match parse_args(&argv("submit 127.0.0.1:7199 k.mx")).expect("valid") {
            Command::Submit {
                addr,
                file,
                job,
                part,
                engine,
                format,
                objective,
                space,
                gap,
                wait_health_secs,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:7199");
                assert_eq!(file, "k.mx");
                assert_eq!(job, "explore");
                assert_eq!(part, "cy7c");
                assert_eq!(engine, "fused");
                assert_eq!(format, None);
                assert_eq!(objective, None);
                assert_eq!(space, "paper");
                assert_eq!(gap, 0.0);
                assert_eq!(wait_health_secs, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv(
            "submit h:1 k.mx --job search --objective cycles --space expansive \
             --beam 8 --gap 0.05 --deadline 10 --wait-health 5 --format json",
        ))
        .expect("valid")
        {
            Command::Submit {
                job,
                objective,
                space,
                beam,
                gap,
                deadline_secs,
                wait_health_secs,
                format,
                ..
            } => {
                assert_eq!(job, "search");
                assert_eq!(objective, Some(Objective::Cycles));
                assert_eq!(space, "expansive");
                assert_eq!(beam, Some(8));
                assert_eq!(gap, 0.05);
                assert_eq!(deadline_secs, Some(10.0));
                assert_eq!(wait_health_secs, Some(5.0));
                assert_eq!(format.as_deref(), Some("json"));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn submit_rejects_bad_values() {
        for (line, needle) in [
            ("submit", "ADDR"),
            ("submit nocolon k.mx", "HOST:PORT"),
            ("submit h:1", "kernel file"),
            ("submit h:1 k.mx --job simulate", "unknown job"),
            ("submit h:1 k.mx --beam 0", "--beam"),
            ("submit h:1 k.mx --gap -1", "--gap"),
            ("submit h:1 k.mx --deadline 0", "--deadline"),
            ("submit h:1 k.mx --wait-health 0", "--wait-health"),
            ("submit h:1 k.mx --telemetry", "unknown flag"),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn submit_parses_retry_flags_with_defaults() {
        match parse_args(&argv("submit h:1 k.mx")).expect("valid") {
            Command::Submit {
                retries,
                backoff_ms,
                ..
            } => {
                assert_eq!(retries, 0);
                assert_eq!(backoff_ms, 250);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv("submit h:1 k.mx --retries 4 --backoff 50")).expect("valid") {
            Command::Submit {
                retries,
                backoff_ms,
                ..
            } => {
                assert_eq!(retries, 4);
                assert_eq!(backoff_ms, 50);
            }
            other => panic!("wrong command: {other:?}"),
        }
        for (line, needle) in [
            ("submit h:1 k.mx --retries many", "--retries"),
            ("submit h:1 k.mx --backoff 0", "--backoff"),
            ("submit h:1 k.mx --backoff", "--backoff"),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn serve_parses_distribute() {
        match parse_args(&argv("serve --distribute 4")).expect("valid") {
            Command::Serve { distribute, .. } => assert_eq!(distribute, 4),
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv("serve")).expect("valid") {
            Command::Serve { distribute, .. } => assert_eq!(distribute, 0),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn sweep_parses_with_defaults_and_flags() {
        match parse_args(&argv("sweep k.mx --distributed 2")).expect("valid") {
            Command::Sweep {
                file,
                distributed,
                shards,
                attach,
                retry_budget,
                backoff_ms,
                straggler_ms,
                pareto,
                ..
            } => {
                assert_eq!(file, "k.mx");
                assert_eq!(distributed, 2);
                assert_eq!(shards, None);
                assert!(attach.is_empty());
                assert_eq!(retry_budget, 3);
                assert_eq!(backoff_ms, 100);
                assert_eq!(straggler_ms, 10_000);
                assert!(!pareto);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse_args(&argv(
            "sweep t.din --distributed 0 --shards 8 --attach h:1 --attach h:2 \
             --shard-dir /tmp/s --retry-budget 1 --backoff-ms 10 --straggler-ms 500 \
             --part lp2m --natural --pareto --telemetry --bound-cycles 9000",
        ))
        .expect("valid")
        {
            Command::Sweep {
                distributed,
                shards,
                attach,
                shard_dir,
                retry_budget,
                backoff_ms,
                straggler_ms,
                part,
                natural,
                pareto,
                telemetry,
                bound_cycles,
                ..
            } => {
                assert_eq!(distributed, 0);
                assert_eq!(shards, Some(8));
                assert_eq!(attach, vec!["h:1".to_string(), "h:2".to_string()]);
                assert_eq!(shard_dir.as_deref(), Some("/tmp/s"));
                assert_eq!(retry_budget, 1);
                assert_eq!(backoff_ms, 10);
                assert_eq!(straggler_ms, 500);
                assert_eq!(part, "lp2m");
                assert!(natural && pareto && telemetry);
                assert_eq!(bound_cycles, Some(9000.0));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn sweep_rejects_bad_values() {
        for (line, needle) in [
            ("sweep", "kernel or trace"),
            ("sweep k.mx", "--distributed"),
            ("sweep k.mx --distributed 2 --shards 0", "--shards"),
            ("sweep k.mx --distributed 2 --attach nocolon", "HOST:PORT"),
            ("sweep k.mx --distributed 2 --backoff-ms 0", "--backoff-ms"),
            (
                "sweep k.mx --distributed 2 --straggler-ms 0",
                "--straggler-ms",
            ),
            ("sweep k.mx --distributed 2 --checkpoint c", "unknown flag"),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn worker_parses_and_validates_its_range() {
        match parse_args(&argv(
            "worker k.mx --start 5 --end 10 --checkpoint s.ckpt --checkpoint-every 0 --resume \
             --engine per-design --part 16m",
        ))
        .expect("valid")
        {
            Command::Worker {
                file,
                start,
                end,
                checkpoint,
                checkpoint_every,
                resume,
                engine,
                part,
                ..
            } => {
                assert_eq!(file, "k.mx");
                assert_eq!((start, end), (5, 10));
                assert_eq!(checkpoint, "s.ckpt");
                assert_eq!(checkpoint_every, 32);
                assert!(resume);
                assert_eq!(engine, "per-design");
                assert_eq!(part, "16m");
            }
            other => panic!("wrong command: {other:?}"),
        }
        for (line, needle) in [
            ("worker k.mx --end 3 --checkpoint c", "--start"),
            ("worker k.mx --start 0 --checkpoint c", "--end"),
            ("worker k.mx --start 3 --end 3 --checkpoint c", "greater"),
            ("worker k.mx --start 0 --end 5", "--checkpoint"),
            (
                "worker k.mx --start 0 --end 5 --checkpoint c --wat",
                "unknown flag",
            ),
        ] {
            let e = parse_args(&argv(line)).expect_err(line);
            assert!(e.0.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn parses_report_command() {
        assert_eq!(
            parse_args(&argv("report run.jsonl")).expect("valid"),
            Command::Report {
                file: "run.jsonl".into()
            }
        );
        assert!(parse_args(&argv("report")).is_err());
        assert!(parse_args(&argv("report a.jsonl b.jsonl")).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_with_context() {
        let e = parse_args(&argv("explore k.mx --wat")).expect_err("should fail");
        assert!(e.0.contains("--wat") && e.0.contains("explore"));
    }

    #[test]
    fn unknown_part_is_rejected() {
        let e = parse_args(&argv("explore k.mx --part dram")).expect_err("should fail");
        assert!(e.0.contains("dram"));
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&argv(h)).expect("valid"), Command::Help);
        }
    }

    #[test]
    fn missing_subcommand() {
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn place_and_min_cache() {
        assert!(matches!(
            parse_args(&argv("place k.mx --cache 64 --line 8")).expect("valid"),
            Command::Place {
                cache: 64,
                line: 8,
                ..
            }
        ));
        assert!(matches!(
            parse_args(&argv("min-cache k.mx --line 16")).expect("valid"),
            Command::MinCache { line: 16, .. }
        ));
        // place's --cache is not valid for min-cache.
        assert!(parse_args(&argv("min-cache k.mx --cache 64 --line 8")).is_err());
    }

    #[test]
    fn simulate_din_parses() {
        let ok =
            parse_args(&argv("simulate-din t.din --cache 128 --line 16 --assoc 4")).expect("valid");
        match ok {
            Command::SimulateDin {
                cache,
                line,
                assoc,
                classify,
                format,
                ..
            } => {
                assert_eq!((cache, line, assoc), (128, 16, 4));
                assert!(!classify);
                assert_eq!(format, "text");
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse_args(&argv("simulate-din t.din --line 16")).is_err());
    }

    #[test]
    fn simulate_din_formats() {
        for f in ["text", "csv", "json"] {
            let line = format!("simulate-din t.din --cache 64 --line 8 --format {f}");
            match parse_args(&argv(&line)).expect("valid") {
                Command::SimulateDin { format, .. } => assert_eq!(format, f),
                other => panic!("wrong command: {other:?}"),
            }
        }
        let e = parse_args(&argv(
            "simulate-din t.din --cache 64 --line 8 --format yaml",
        ))
        .expect_err("should fail");
        assert!(e.0.contains("yaml"));
    }

    #[test]
    fn trace_accepts_din_marker() {
        assert_eq!(
            parse_args(&argv("trace k.mx --din --reads-only")).expect("valid"),
            Command::Trace {
                file: "k.mx".into(),
                reads_only: true,
            }
        );
        assert!(parse_args(&argv("trace k.mx --json")).is_err());
    }

    #[test]
    fn bad_numbers_are_reported() {
        let e = parse_args(&argv("simulate k.mx --cache sixty --line 8")).expect_err("fail");
        assert!(e.0.contains("sixty"));
    }
}
