//! Exit-code contract of the `memx` binary.
//!
//! * 0 — success
//! * 1 — runtime failure (parse error, infeasible grid, …)
//! * 2 — invalid CLI input, invalid cache geometry (non-power-of-two
//!   size/line/assoc — the shift-based address math would silently
//!   mis-index), **or** an I/O failure (unreadable input, unwritable or
//!   corrupt checkpoint), always with a one-line `error: …` message on
//!   stderr
//!
//! These run the real binary (`CARGO_BIN_EXE_memx`) so the contract is
//! pinned end to end, not just at the library layer.

use std::path::PathBuf;
use std::process::{Command, Output};

fn memx(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memx"))
        .args(args)
        .output()
        .expect("memx binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memx exited normally")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Self-cleaning scratch dir holding a small valid kernel.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("memx-exit-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        Self { dir }
    }

    fn kernel(&self) -> String {
        let path = self.dir.join("k.mx");
        std::fs::write(
            &path,
            "kernel Compress\narray a[32][32] elem 4\nfor i = 1 .. 31\nfor j = 1 .. 31\n  read a[i][j]\n  read a[i-1][j-1]\n  write a[i][j]\n",
        )
        .expect("tempdir is writable");
        path.to_string_lossy().into_owned()
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn assert_one_line_error(out: &Output) {
    let err = stderr(out);
    assert!(err.starts_with("error: "), "stderr: {err:?}");
    assert_eq!(
        err.trim_end().lines().count(),
        1,
        "I/O errors must be one line: {err:?}"
    );
}

#[test]
fn success_is_exit_zero() {
    let scratch = Scratch::new("ok");
    let out = memx(&["classes", &scratch.kernel()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
}

#[test]
fn invalid_cli_is_exit_two_with_usage() {
    for args in [
        &["explore"][..],
        &["frobnicate"][..],
        &["explore", "k.mx", "--wat"][..],
        &["explore", "k.mx", "--resume"][..],
    ] {
        let out = memx(args);
        assert_eq!(exit_code(&out), 2, "args {args:?}");
        assert!(stderr(&out).contains("USAGE"), "args {args:?}");
    }
}

#[test]
fn unreadable_input_is_exit_two_one_line() {
    for args in [
        &["explore", "/nonexistent/k.mx"][..],
        &["classes", "/nonexistent/k.mx"][..],
        &[
            "simulate-din",
            "/nonexistent/t.din",
            "--cache",
            "64",
            "--line",
            "8",
        ][..],
    ] {
        let out = memx(args);
        assert_eq!(exit_code(&out), 2, "args {args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
        assert!(stderr(&out).contains("cannot read"), "args {args:?}");
        // I/O failures do not dump the usage text; that is for CLI errors.
        assert!(!stderr(&out).contains("USAGE"), "args {args:?}");
    }
}

#[test]
fn unwritable_checkpoint_path_is_exit_two() {
    let scratch = Scratch::new("unwritable");
    let kernel = scratch.kernel();
    let out = memx(&[
        "explore",
        &kernel,
        "--checkpoint",
        "/nonexistent-dir/sweep.ckpt",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert_one_line_error(&out);
    assert!(stderr(&out).contains("cannot write checkpoint"));
}

#[test]
fn corrupt_checkpoint_on_resume_is_exit_two() {
    let scratch = Scratch::new("corrupt");
    let kernel = scratch.kernel();
    let ckpt = scratch.path("sweep.ckpt");
    std::fs::write(&ckpt, [b'x'; 64]).expect("tempdir writable");
    let out = memx(&[
        "explore",
        &kernel,
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
        "--resume",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert_one_line_error(&out);
    assert!(
        stderr(&out).contains("not a checkpoint file"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn runtime_failures_are_exit_one() {
    let scratch = Scratch::new("runtime");
    // Unparseable kernel text: runtime, not I/O.
    let bad = scratch.path("bad.mx");
    std::fs::write(&bad, "this is not a kernel").expect("tempdir writable");
    let out = memx(&["classes", bad.to_str().expect("utf8 path")]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
}

#[test]
fn bad_geometry_is_exit_two_everywhere() {
    let scratch = Scratch::new("geometry");
    let kernel = scratch.kernel();
    let din = scratch.path("t.din");
    std::fs::write(&din, "0 0\n0 8\n1 10\n").expect("tempdir writable");
    let din = din.to_str().expect("utf8 path").to_string();
    for args in [
        // Non-power-of-two cache size: shift-indexing cannot address it.
        &["simulate", &kernel, "--cache", "48", "--line", "8"][..],
        // Non-power-of-two line size.
        &["simulate", &kernel, "--cache", "64", "--line", "6"][..],
        // Line larger than the cache.
        &["simulate", &kernel, "--cache", "64", "--line", "128"][..],
        // More ways than lines.
        &[
            "simulate", &kernel, "--cache", "64", "--line", "32", "--assoc", "4",
        ][..],
        &["place", &kernel, "--cache", "48", "--line", "8"][..],
        &["min-cache", &kernel, "--line", "6"][..],
        &["simulate-din", &din, "--cache", "48", "--line", "8"][..],
        &["simulate-din", &din, "--cache", "64", "--line", "6"][..],
    ] {
        let out = memx(args);
        assert_eq!(exit_code(&out), 2, "args {args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
        // Geometry errors are input errors, not CLI-syntax errors: the
        // message names the bad value instead of dumping the usage text.
        assert!(!stderr(&out).contains("USAGE"), "args {args:?}");
        assert!(
            stderr(&out).contains("geometry") || stderr(&out).contains("power of two"),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn checkpointed_sweep_matches_plain_sweep_on_stdout() {
    let scratch = Scratch::new("ckpt-identity");
    let kernel = scratch.kernel();
    let ckpt = scratch.path("sweep.ckpt");
    let plain = memx(&["explore", &kernel, "--pareto"]);
    let supervised = memx(&[
        "explore",
        &kernel,
        "--pareto",
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
        "--checkpoint-every",
        "16",
    ]);
    assert_eq!(exit_code(&plain), 0, "stderr: {}", stderr(&plain));
    assert_eq!(exit_code(&supervised), 0, "stderr: {}", stderr(&supervised));
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&supervised.stdout),
        "supervised stdout must be byte-identical to a plain run"
    );
    assert!(ckpt.exists(), "sidecar file was written");
    // Resuming from the completed checkpoint reproduces the same stdout.
    let resumed = memx(&[
        "explore",
        &kernel,
        "--pareto",
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 0, "stderr: {}", stderr(&resumed));
    assert_eq!(plain.stdout, resumed.stdout);
    assert!(stderr(&resumed).contains("resumed"), "{}", stderr(&resumed));
}

#[test]
fn sweep_mismatch_on_resume_is_exit_two() {
    let scratch = Scratch::new("mismatch");
    let kernel = scratch.kernel();
    let ckpt = scratch.path("sweep.ckpt");
    let first = memx(&[
        "explore",
        &kernel,
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
    ]);
    assert_eq!(exit_code(&first), 0, "stderr: {}", stderr(&first));
    // Same checkpoint, different evaluator (natural layout): rejected.
    let out = memx(&[
        "explore",
        &kernel,
        "--natural",
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
        "--resume",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("different sweep"), "{}", stderr(&out));
}

#[test]
fn all_infeasible_grid_is_a_typed_error_not_empty_output() {
    let scratch = Scratch::new("infeasible");
    // Two reads 512 elements apart share a reference class, so the §3
    // minimum conflict-free cache is ~2 KiB at every line size — above the
    // paper grid's largest cache (1024 B). No candidate is feasible.
    let path = scratch.path("huge.mx");
    std::fs::write(
        &path,
        "kernel Infeasible\narray a[1024][1024] elem 4\nfor i = 0 .. 7\nfor j = 0 .. 255\n  read a[i][j]\n  read a[i][j+512]\n",
    )
    .expect("tempdir writable");
    let kernel = path.to_str().expect("utf8 path");
    for args in [
        &["search", kernel][..],
        &["pareto", kernel][..],
        &["explore", kernel][..],
    ] {
        let out = memx(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}: {}", stderr(&out));
        assert_one_line_error(&out);
        assert!(
            stderr(&out).contains("infeasible"),
            "args {args:?}: {}",
            stderr(&out)
        );
        assert!(
            out.stdout.is_empty(),
            "no partial stdout on an infeasible grid: {:?}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn search_certifies_the_explore_optimum() {
    let scratch = Scratch::new("search");
    let kernel = scratch.kernel();
    let explored = memx(&["explore", &kernel]);
    let searched = memx(&["search", &kernel]);
    assert_eq!(exit_code(&explored), 0, "stderr: {}", stderr(&explored));
    assert_eq!(exit_code(&searched), 0, "stderr: {}", stderr(&searched));
    let line = |out: &Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("minimum energy"))
            .expect("minimum energy line")
            .to_string()
    };
    assert_eq!(line(&explored), line(&searched));
    assert!(
        String::from_utf8_lossy(&searched.stdout).contains("optimum certified"),
        "{}",
        String::from_utf8_lossy(&searched.stdout)
    );
}

/// A `HOST:PORT` that refuses connections: bind an ephemeral port, then
/// drop the listener so nothing is accepting there.
fn dead_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

#[test]
fn submit_refused_without_retries_is_exit_two_fast() {
    let scratch = Scratch::new("submit-refused");
    let kernel = scratch.kernel();
    let started = std::time::Instant::now();
    let out = memx(&["submit", &dead_addr(), &kernel]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert_one_line_error(&out);
    assert!(
        stderr(&out).contains("cannot reach daemon"),
        "{}",
        stderr(&out)
    );
    // No retries requested: one connect attempt, no backoff sleeps.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "refused submit must fail fast, took {:?}",
        started.elapsed()
    );
}

#[test]
fn submit_retries_report_attempt_count_on_exhaustion() {
    let scratch = Scratch::new("submit-retries");
    let kernel = scratch.kernel();
    let out = memx(&[
        "submit",
        &dead_addr(),
        &kernel,
        "--retries",
        "2",
        "--backoff",
        "10",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert_one_line_error(&out);
    assert!(
        stderr(&out).contains("after 3 attempts"),
        "exhausted retries must name the attempt count: {}",
        stderr(&out)
    );
}

#[test]
fn submit_rejects_bad_retry_flags() {
    for args in [
        &["submit", "127.0.0.1:1", "k.mx", "--retries"][..],
        &["submit", "127.0.0.1:1", "k.mx", "--backoff", "0"][..],
        &["submit", "127.0.0.1:1", "k.mx", "--backoff"][..],
    ] {
        let out = memx(args);
        assert_eq!(exit_code(&out), 2, "args {args:?}: {}", stderr(&out));
    }
}

#[test]
fn sweep_without_workers_flag_is_exit_two_with_usage() {
    let scratch = Scratch::new("sweep-noflag");
    let kernel = scratch.kernel();
    let out = memx(&["sweep", &kernel]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--distributed"), "{}", stderr(&out));
}

#[test]
fn worker_bad_range_is_exit_two() {
    let scratch = Scratch::new("worker-range");
    let kernel = scratch.kernel();
    let ckpt = scratch.path("w.ckpt");
    let ckpt = ckpt.to_str().expect("utf8 path");
    // end <= start is a CLI error.
    let out = memx(&[
        "worker",
        &kernel,
        "--start",
        "5",
        "--end",
        "5",
        "--checkpoint",
        ckpt,
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    // A range past the grid is an I/O-class error (exit 2, one line).
    let out = memx(&[
        "worker",
        &kernel,
        "--start",
        "0",
        "--end",
        "999999",
        "--checkpoint",
        ckpt,
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert_one_line_error(&out);
    assert!(stderr(&out).contains("exceeds"), "{}", stderr(&out));
}

#[test]
fn worker_checkpoint_is_the_result_stream() {
    let scratch = Scratch::new("worker-ok");
    let kernel = scratch.kernel();
    let ckpt = scratch.path("w.ckpt");
    let out = memx(&[
        "worker",
        &kernel,
        "--start",
        "0",
        "--end",
        "8",
        "--checkpoint",
        ckpt.to_str().expect("utf8 path"),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        ckpt.exists(),
        "final flush must leave the checkpoint behind"
    );
    assert!(
        stderr(&out).contains("designs [0..8) done"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn deadline_yields_partial_result_with_exit_zero() {
    let scratch = Scratch::new("deadline");
    let kernel = scratch.kernel();
    // A deadline that cannot fit the whole sweep: tiny but non-zero so at
    // least the cancellation path runs; the result must stay well-formed.
    let out = memx(&["explore", &kernel, "--telemetry", "--deadline", "0.000001"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explored"), "{stdout}");
}
