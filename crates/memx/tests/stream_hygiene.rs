//! Stream-hygiene contract of the `memx` binary.
//!
//! * stdout carries only machine-readable records (explore report lines,
//!   pareto CSV/JSON) — `--telemetry`, progress, and notes never leak in.
//! * stdout is byte-identical with and without observability flags.
//! * every `--log-json` line parses as a canonical event and re-emits
//!   bit-identically, and `memx report` renders a summary from it.

use memexplore::Event;
use std::path::PathBuf;
use std::process::{Command, Output};

fn memx(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memx"))
        .args(args)
        .output()
        .expect("memx binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_ok(out: &Output) {
    assert_eq!(out.status.code(), Some(0), "memx failed: {}", stderr(out));
}

/// Self-cleaning scratch dir holding a small valid kernel.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("memx-hygiene-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        Self { dir }
    }

    fn kernel(&self) -> String {
        let path = self.dir.join("k.mx");
        std::fs::write(
            &path,
            "kernel Compress\narray a[32][32] elem 4\nfor i = 1 .. 31\nfor j = 1 .. 31\n  read a[i][j]\n  read a[i-1][j-1]\n  write a[i][j]\n",
        )
        .expect("tempdir is writable");
        path.to_string_lossy().into_owned()
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn telemetry_goes_to_stderr_not_stdout() {
    let scratch = Scratch::new("telemetry");
    let kernel = scratch.kernel();

    let plain = memx(&["explore", &kernel]);
    let with_telemetry = memx(&["explore", &kernel, "--telemetry"]);
    assert_ok(&plain);
    assert_ok(&with_telemetry);
    // `--telemetry` must not change the record stream at all.
    assert_eq!(plain.stdout, with_telemetry.stdout);
    assert!(
        stderr(&with_telemetry).contains("sweep:"),
        "summary missing from stderr: {}",
        stderr(&with_telemetry)
    );
    assert!(
        !stdout(&with_telemetry).contains("sweep:"),
        "summary leaked into stdout: {}",
        stdout(&with_telemetry)
    );
}

#[test]
fn pareto_csv_stays_pure_rows_with_telemetry() {
    let scratch = Scratch::new("csv");
    let kernel = scratch.kernel();
    let out = memx(&["pareto", &kernel, "--telemetry"]);
    assert_ok(&out);
    let rows = stdout(&out);
    let mut lines = rows.lines();
    assert_eq!(
        lines.next(),
        Some("cache,line,assoc,tiling,miss_rate,cycles,energy_nj,conflict_free")
    );
    for line in lines {
        assert_eq!(
            line.split(',').count(),
            8,
            "non-CSV line on stdout: {line:?}"
        );
    }
    assert!(stderr(&out).contains("prune"), "{}", stderr(&out));
}

#[test]
fn stdout_is_byte_identical_with_observability_on() {
    let scratch = Scratch::new("identical");
    let kernel = scratch.kernel();
    let log = scratch.path("run.jsonl");

    let plain = memx(&["explore", &kernel, "--pareto"]);
    let observed = memx(&[
        "explore",
        &kernel,
        "--pareto",
        "--log-json",
        &log,
        "--progress",
    ]);
    assert_ok(&plain);
    assert_ok(&observed);
    assert_eq!(
        plain.stdout, observed.stdout,
        "observability must not change the record stream"
    );

    let plain = memx(&["pareto", &kernel]);
    let observed = memx(&["pareto", &kernel, "--log-json", &log]);
    assert_ok(&plain);
    assert_ok(&observed);
    assert_eq!(plain.stdout, observed.stdout);
}

#[test]
fn log_json_lines_round_trip_and_report_renders_them() {
    let scratch = Scratch::new("log");
    let kernel = scratch.kernel();
    let log = scratch.path("run.jsonl");

    assert_ok(&memx(&["explore", &kernel, "--log-json", &log]));
    let text = std::fs::read_to_string(&log).expect("log was written");
    assert!(!text.is_empty(), "log must contain events");
    for (i, line) in text.lines().enumerate() {
        let event = Event::parse(line).unwrap_or_else(|e| panic!("line {}: {e}: {line:?}", i + 1));
        assert_eq!(
            event.to_jsonl(),
            line,
            "line {} does not re-emit bit-identically",
            i + 1
        );
    }

    let report = memx(&["report", &log]);
    assert_ok(&report);
    let summary = stdout(&report);
    assert!(summary.contains("phases:"), "{summary}");
    assert!(summary.contains("simulate"), "{summary}");
    assert!(summary.contains("designs:"), "{summary}");
    // The paper grid is fully evaluated in an unsupervised explore, so the
    // report's recomputed total must equal the grid size parsed from the
    // explore banner on stdout.
    let banner = stdout(&memx(&["explore", &kernel]));
    let total: u64 = banner
        .split_whitespace()
        .nth(1)
        .expect("explore banner starts with `explored N`")
        .parse()
        .expect("count is numeric");
    assert!(
        summary.contains(&format!("designs: {total} completed")),
        "report total must match the sweep: {summary}"
    );
}

#[test]
fn report_rejects_garbage_with_line_number() {
    let scratch = Scratch::new("badlog");
    let bad = scratch.path("bad.jsonl");
    std::fs::write(&bad, "{\"v\":1}\n").expect("tempdir writable");
    let out = memx(&["report", &bad]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("line 1"), "{}", stderr(&out));

    let missing = scratch.path("nope.jsonl");
    let out = memx(&["report", &missing]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn progress_writes_to_stderr_only() {
    let scratch = Scratch::new("progress");
    let kernel = scratch.kernel();
    let out = memx(&["explore", &kernel, "--progress"]);
    assert_ok(&out);
    assert!(
        stderr(&out).contains("designs"),
        "progress line missing from stderr: {}",
        stderr(&out)
    );
    assert!(!stdout(&out).contains('\r'), "progress leaked into stdout");
}
