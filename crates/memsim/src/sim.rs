//! The trace-driven simulation loop.

use crate::bus::{BusEncoding, BusMonitor, BusStats};
use crate::cache::Cache;
use crate::classify::{Classifier, MissClassCounts};
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// One trace event fed to the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Byte address of the first byte accessed.
    pub addr: u64,
    /// Access width in bytes (≥ 1).
    pub size: u32,
    /// Store if true, load otherwise.
    pub is_write: bool,
}

impl TraceEvent {
    /// A load of `size` bytes at `addr`.
    pub fn read(addr: u64, size: u32) -> Self {
        TraceEvent {
            addr,
            size,
            is_write: false,
        }
    }

    /// A store of `size` bytes at `addr`.
    pub fn write(addr: u64, size: u32) -> Self {
        TraceEvent {
            addr,
            size,
            is_write: true,
        }
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The simulated configuration.
    pub config: CacheConfig,
    /// Hit/miss counters.
    pub stats: CacheStats,
    /// Processor↔cache address-bus activity.
    pub cpu_bus: BusStats,
    /// Cache↔memory address-bus activity (fills + writebacks).
    pub mem_bus: BusStats,
    /// Three-C classification, if enabled.
    pub miss_classes: Option<MissClassCounts>,
}

/// Drives trace events through a [`Cache`], a [`BusMonitor`], and optionally
/// a [`Classifier`].
///
/// Accesses wider than a line, or unaligned accesses spanning a line
/// boundary, are split into one access per line touched (each counted
/// separately, as Dinero does with its `-atype` splitting).
///
/// # Example
///
/// ```
/// use memsim::{CacheConfig, Simulator, TraceEvent};
///
/// let cfg = CacheConfig::new(64, 8, 2)?;
/// let mut sim = Simulator::new(cfg);
/// sim.run([TraceEvent::read(0, 4), TraceEvent::read(4, 4), TraceEvent::read(8, 4)]);
/// let report = sim.into_report();
/// assert_eq!(report.stats.reads, 3);
/// assert_eq!(report.stats.read_misses(), 2); // lines 0 and 8
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    cache: Cache,
    bus: BusMonitor,
    classifier: Option<Classifier>,
    stats: CacheStats,
    /// Line-aligned address held by the single-entry line buffer, if one is
    /// configured (Su–Despain block buffering: repeated accesses to the
    /// most recent line skip the cell arrays).
    line_buffer: Option<Option<u64>>,
}

impl Simulator {
    /// A simulator with a Gray-coded bus and no miss classification.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_options(config, BusEncoding::Gray, false)
    }

    /// Full control over bus encoding and classification.
    pub fn with_options(config: CacheConfig, encoding: BusEncoding, classify: bool) -> Self {
        Simulator {
            cache: Cache::new(config),
            bus: BusMonitor::new(encoding),
            classifier: classify
                .then(|| Classifier::new(&config).expect("valid config implies valid shadow")),
            stats: CacheStats::new(),
            line_buffer: None,
        }
    }

    /// Adds a single-entry line buffer in front of the cache
    /// (builder-style). Read hits to the buffered line are counted in
    /// [`CacheStats::buffer_hits`] and do not consult the arrays; writes
    /// always go to the cache and invalidate the buffer when they allocate
    /// a different line.
    pub fn with_line_buffer(mut self) -> Self {
        self.line_buffer = Some(None);
        self
    }

    /// Processes one event (splitting line-spanning accesses).
    pub fn step(&mut self, event: TraceEvent) {
        let shift = self.cache.config().line().trailing_zeros();
        let size = event.size.max(1) as u64;
        let first_line = event.addr >> shift;
        let last_line = (event.addr + size - 1) >> shift;
        if first_line == last_line {
            self.access_one(event.addr, event.is_write);
            return;
        }
        for l in first_line..=last_line {
            let addr = if l == first_line {
                event.addr
            } else {
                l << shift
            };
            self.access_one(addr, event.is_write);
        }
    }

    fn access_one(&mut self, addr: u64, is_write: bool) {
        self.bus.observe_cpu(addr);
        let line_base = self.cache.config().line_base(addr);
        if let Some(buffered) = &mut self.line_buffer {
            if !is_write && *buffered == Some(line_base) {
                // Served entirely by the buffer; the arrays stay quiet and
                // replacement state is untouched (the buffered line was the
                // MRU line already).
                self.stats.reads += 1;
                self.stats.read_hits += 1;
                self.stats.buffer_hits += 1;
                if let Some(c) = &mut self.classifier {
                    c.observe(addr, true);
                }
                return;
            }
        }
        let out = self.cache.access(addr, is_write);
        if let Some(buffered) = &mut self.line_buffer {
            // The buffer tracks the most recently accessed line once it is
            // resident (hit or freshly filled); write-through no-allocate
            // misses leave it unchanged.
            if out.hit || out.fill.is_some() {
                *buffered = Some(line_base);
            }
        }
        if is_write {
            self.stats.writes += 1;
            if out.hit {
                self.stats.write_hits += 1;
            }
        } else {
            self.stats.reads += 1;
            if out.hit {
                self.stats.read_hits += 1;
            }
        }
        if let Some(fill) = out.fill {
            self.stats.fills += 1;
            self.bus.observe_mem(fill);
        }
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.writebacks += 1;
            self.bus.observe_mem(wb);
        }
        if let Some(c) = &mut self.classifier {
            c.observe(addr, out.hit);
        }
    }

    /// Runs every event of an iterator.
    pub fn run<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        for e in events {
            self.step(e);
        }
    }

    /// Replays a materialized trace slice (e.g. from a
    /// [`TraceArena`](crate::TraceArena)) without consuming it.
    pub fn run_slice(&mut self, events: &[TraceEvent]) {
        for &e in events {
            self.step(e);
        }
    }

    /// Current counters (the run can continue afterwards).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Read access to the underlying cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Finishes the run and returns the collected report.
    pub fn into_report(self) -> SimReport {
        SimReport {
            config: *self.cache.config(),
            stats: self.stats,
            cpu_bus: self.bus.cpu(),
            mem_bus: self.bus.mem(),
            miss_classes: self.classifier.map(|c| c.counts()),
        }
    }

    /// Convenience: simulate a whole trace in one call.
    pub fn simulate<I: IntoIterator<Item = TraceEvent>>(
        config: CacheConfig,
        events: I,
    ) -> SimReport {
        let mut sim = Simulator::new(config);
        sim.run(events);
        sim.into_report()
    }

    /// Convenience: simulate a materialized trace slice in one call.
    pub fn simulate_slice(config: CacheConfig, events: &[TraceEvent]) -> SimReport {
        let mut sim = Simulator::new(config);
        sim.run_slice(events);
        sim.into_report()
    }

    /// Convenience: simulate with three-C classification enabled.
    pub fn simulate_classified<I: IntoIterator<Item = TraceEvent>>(
        config: CacheConfig,
        events: I,
    ) -> SimReport {
        let mut sim = Simulator::with_options(config, BusEncoding::Gray, true);
        sim.run(events);
        sim.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_access_touches_both_lines() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(6, 4)); // bytes 6..10 span lines 0 and 1
        let r = sim.into_report();
        assert_eq!(r.stats.reads, 2);
        assert_eq!(r.stats.read_misses(), 2);
    }

    #[test]
    fn aligned_access_is_single() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(8, 8));
        assert_eq!(sim.stats().reads, 1);
    }

    #[test]
    fn report_counts_fills_and_writebacks() {
        let cfg = CacheConfig::new(16, 8, 1).unwrap(); // 2 sets
        let mut sim = Simulator::new(cfg);
        sim.run([
            TraceEvent::write(0, 4),
            TraceEvent::read(16, 4), // evicts dirty line 0
        ]);
        let r = sim.into_report();
        assert_eq!(r.stats.fills, 2);
        assert_eq!(r.stats.writebacks, 1);
        assert_eq!(r.mem_bus.transfers, 3); // 2 fills + 1 writeback
    }

    #[test]
    fn classification_is_optional_and_consistent() {
        let cfg = CacheConfig::new(32, 8, 1).unwrap();
        let trace: Vec<TraceEvent> = (0..50)
            .map(|i| TraceEvent::read((i * 8) % 128, 4))
            .collect();
        let plain = Simulator::simulate(cfg, trace.iter().copied());
        assert!(plain.miss_classes.is_none());
        let classified = Simulator::simulate_classified(cfg, trace);
        let classes = classified.miss_classes.unwrap();
        assert_eq!(classes.total(), classified.stats.misses());
        assert_eq!(plain.stats, classified.stats);
    }

    #[test]
    fn cpu_bus_sees_every_line_access() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.run([TraceEvent::read(0, 4), TraceEvent::read(6, 4)]); // second spans
        let r = sim.into_report();
        assert_eq!(r.cpu_bus.transfers, 3);
    }

    #[test]
    fn zero_size_access_counts_once() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(0, 0));
        assert_eq!(sim.stats().reads, 1);
    }

    #[test]
    fn line_buffer_absorbs_same_line_reads() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg).with_line_buffer();
        sim.run([
            TraceEvent::read(0, 4), // miss, fills + buffers line 0
            TraceEvent::read(4, 4), // buffer hit
            TraceEvent::read(0, 4), // buffer hit
            TraceEvent::read(8, 4), // different line: cache miss
            TraceEvent::read(4, 4), // back to line 0: cache hit, re-buffers
            TraceEvent::read(0, 4), // buffer hit
        ]);
        let st = sim.stats();
        assert_eq!(st.reads, 6);
        assert_eq!(st.read_hits, 4);
        assert_eq!(st.buffer_hits, 3);
    }

    #[test]
    fn line_buffer_never_changes_hit_miss_totals() {
        let cfg = CacheConfig::new(32, 8, 2).unwrap();
        let trace: Vec<TraceEvent> = (0..200)
            .map(|i| TraceEvent::read((i * 4) % 256, 4))
            .collect();
        let plain = Simulator::simulate(cfg, trace.iter().copied()).stats;
        let mut buffered = Simulator::new(cfg).with_line_buffer();
        buffered.run(trace);
        let bstats = *buffered.stats();
        assert_eq!(plain.read_hits, bstats.read_hits);
        assert_eq!(plain.fills, bstats.fills);
        assert!(bstats.buffer_hits <= bstats.read_hits);
        assert!(bstats.buffer_hits > 0);
    }

    #[test]
    fn plain_simulator_reports_zero_buffer_hits() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let report = Simulator::simulate(cfg, (0..32).map(|i| TraceEvent::read(i, 1)));
        assert_eq!(report.stats.buffer_hits, 0);
    }
}
