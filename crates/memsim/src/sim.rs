//! The trace-driven simulation loop.

use crate::bank::ReplayBank;
use crate::bus::{BusEncoding, BusStats};
use crate::cache::Cache;
use crate::classify::MissClassCounts;
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// One trace event fed to the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Byte address of the first byte accessed.
    pub addr: u64,
    /// Access width in bytes (≥ 1).
    pub size: u32,
    /// Store if true, load otherwise.
    pub is_write: bool,
}

impl TraceEvent {
    /// A load of `size` bytes at `addr`.
    pub fn read(addr: u64, size: u32) -> Self {
        TraceEvent {
            addr,
            size,
            is_write: false,
        }
    }

    /// A store of `size` bytes at `addr`.
    pub fn write(addr: u64, size: u32) -> Self {
        TraceEvent {
            addr,
            size,
            is_write: true,
        }
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The simulated configuration.
    pub config: CacheConfig,
    /// Hit/miss counters.
    pub stats: CacheStats,
    /// Processor↔cache address-bus activity.
    pub cpu_bus: BusStats,
    /// Cache↔memory address-bus activity (fills + writebacks).
    pub mem_bus: BusStats,
    /// Three-C classification, if enabled.
    pub miss_classes: Option<MissClassCounts>,
}

/// Drives trace events through a [`Cache`], a
/// [`BusMonitor`](crate::BusMonitor), and optionally a
/// [`Classifier`](crate::Classifier).
///
/// Accesses wider than a line, or unaligned accesses spanning a line
/// boundary, are split into one access per line touched (each counted
/// separately, as Dinero does with its `-atype` splitting).
///
/// Internally this is a [`ReplayBank`] of exactly one lane, so the
/// single-design and fused multi-design paths share one stepping core.
///
/// # Example
///
/// ```
/// use memsim::{CacheConfig, Simulator, TraceEvent};
///
/// let cfg = CacheConfig::new(64, 8, 2)?;
/// let mut sim = Simulator::new(cfg);
/// sim.run([TraceEvent::read(0, 4), TraceEvent::read(4, 4), TraceEvent::read(8, 4)]);
/// let report = sim.into_report();
/// assert_eq!(report.stats.reads, 3);
/// assert_eq!(report.stats.read_misses(), 2); // lines 0 and 8
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    bank: ReplayBank,
}

impl Simulator {
    /// A simulator with a Gray-coded bus and no miss classification.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_options(config, BusEncoding::Gray, false)
    }

    /// Full control over bus encoding and classification.
    pub fn with_options(config: CacheConfig, encoding: BusEncoding, classify: bool) -> Self {
        Simulator {
            bank: ReplayBank::with_options(&[config], encoding, classify),
        }
    }

    /// Adds a single-entry line buffer in front of the cache
    /// (builder-style). Read hits to the buffered line are counted in
    /// [`CacheStats::buffer_hits`] and do not consult the arrays; writes
    /// always go to the cache and invalidate the buffer when they allocate
    /// a different line.
    pub fn with_line_buffer(mut self) -> Self {
        self.bank = self.bank.with_line_buffers();
        self
    }

    /// Processes one event (splitting line-spanning accesses).
    pub fn step(&mut self, event: TraceEvent) {
        self.bank.step(event);
    }

    /// Runs every event of an iterator.
    pub fn run<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        self.bank.run(events);
    }

    /// Replays a materialized trace slice (e.g. from a
    /// [`TraceArena`](crate::TraceArena)) without consuming it.
    ///
    /// A lone simulator replays event by event through the same stepping
    /// core as [`step`](Self::step); the class-major batch replay of
    /// [`ReplayBank::run_slice`] only pays off when several lanes share
    /// the per-class stream, which a bank of one never does.
    pub fn run_slice(&mut self, events: &[TraceEvent]) {
        for &event in events {
            self.bank.step(event);
        }
    }

    /// Feeds one chunk of a streamed trace — the incremental stepper
    /// form of [`run_slice`](Self::run_slice). Simulator state persists
    /// across calls, so chunked feeding (any chunking) followed by
    /// [`finish`](Self::finish) reports bit-identically to one
    /// whole-slice scan.
    pub fn feed(&mut self, chunk: &[TraceEvent]) {
        self.run_slice(chunk);
    }

    /// Ends a [`feed`](Self::feed) run (alias of
    /// [`into_report`](Self::into_report), named for the streaming
    /// protocol).
    pub fn finish(self) -> SimReport {
        self.into_report()
    }

    /// Current counters (the run can continue afterwards).
    pub fn stats(&self) -> &CacheStats {
        self.bank.stats(0)
    }

    /// Read access to the underlying cache.
    pub fn cache(&self) -> &Cache {
        self.bank.cache(0)
    }

    /// Finishes the run and returns the collected report.
    pub fn into_report(self) -> SimReport {
        self.bank
            .into_reports()
            .pop()
            .expect("a Simulator is a bank of exactly one lane")
    }

    /// Convenience: simulate a whole trace in one call.
    pub fn simulate<I: IntoIterator<Item = TraceEvent>>(
        config: CacheConfig,
        events: I,
    ) -> SimReport {
        let mut sim = Simulator::new(config);
        sim.run(events);
        sim.into_report()
    }

    /// Convenience: simulate a materialized trace slice in one call.
    pub fn simulate_slice(config: CacheConfig, events: &[TraceEvent]) -> SimReport {
        let mut sim = Simulator::new(config);
        sim.run_slice(events);
        sim.into_report()
    }

    /// Convenience: simulate with three-C classification enabled.
    pub fn simulate_classified<I: IntoIterator<Item = TraceEvent>>(
        config: CacheConfig,
        events: I,
    ) -> SimReport {
        let mut sim = Simulator::with_options(config, BusEncoding::Gray, true);
        sim.run(events);
        sim.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_access_touches_both_lines() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(6, 4)); // bytes 6..10 span lines 0 and 1
        let r = sim.into_report();
        assert_eq!(r.stats.reads, 2);
        assert_eq!(r.stats.read_misses(), 2);
    }

    #[test]
    fn aligned_access_is_single() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(8, 8));
        assert_eq!(sim.stats().reads, 1);
    }

    #[test]
    fn report_counts_fills_and_writebacks() {
        let cfg = CacheConfig::new(16, 8, 1).unwrap(); // 2 sets
        let mut sim = Simulator::new(cfg);
        sim.run([
            TraceEvent::write(0, 4),
            TraceEvent::read(16, 4), // evicts dirty line 0
        ]);
        let r = sim.into_report();
        assert_eq!(r.stats.fills, 2);
        assert_eq!(r.stats.writebacks, 1);
        assert_eq!(r.mem_bus.transfers, 3); // 2 fills + 1 writeback
    }

    #[test]
    fn classification_is_optional_and_consistent() {
        let cfg = CacheConfig::new(32, 8, 1).unwrap();
        let trace: Vec<TraceEvent> = (0..50)
            .map(|i| TraceEvent::read((i * 8) % 128, 4))
            .collect();
        let plain = Simulator::simulate(cfg, trace.iter().copied());
        assert!(plain.miss_classes.is_none());
        let classified = Simulator::simulate_classified(cfg, trace);
        let classes = classified.miss_classes.unwrap();
        assert_eq!(classes.total(), classified.stats.misses());
        assert_eq!(plain.stats, classified.stats);
    }

    #[test]
    fn cpu_bus_sees_every_line_access() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.run([TraceEvent::read(0, 4), TraceEvent::read(6, 4)]); // second spans
        let r = sim.into_report();
        assert_eq!(r.cpu_bus.transfers, 3);
    }

    #[test]
    fn zero_size_access_counts_once() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg);
        sim.step(TraceEvent::read(0, 0));
        assert_eq!(sim.stats().reads, 1);
    }

    #[test]
    fn line_buffer_absorbs_same_line_reads() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut sim = Simulator::new(cfg).with_line_buffer();
        sim.run([
            TraceEvent::read(0, 4), // miss, fills + buffers line 0
            TraceEvent::read(4, 4), // buffer hit
            TraceEvent::read(0, 4), // buffer hit
            TraceEvent::read(8, 4), // different line: cache miss
            TraceEvent::read(4, 4), // back to line 0: cache hit, re-buffers
            TraceEvent::read(0, 4), // buffer hit
        ]);
        let st = sim.stats();
        assert_eq!(st.reads, 6);
        assert_eq!(st.read_hits, 4);
        assert_eq!(st.buffer_hits, 3);
    }

    #[test]
    fn line_buffer_never_changes_hit_miss_totals() {
        let cfg = CacheConfig::new(32, 8, 2).unwrap();
        let trace: Vec<TraceEvent> = (0..200)
            .map(|i| TraceEvent::read((i * 4) % 256, 4))
            .collect();
        let plain = Simulator::simulate(cfg, trace.iter().copied()).stats;
        let mut buffered = Simulator::new(cfg).with_line_buffer();
        buffered.run(trace);
        let bstats = *buffered.stats();
        assert_eq!(plain.read_hits, bstats.read_hits);
        assert_eq!(plain.fills, bstats.fills);
        assert!(bstats.buffer_hits <= bstats.read_hits);
        assert!(bstats.buffer_hits > 0);
    }

    #[test]
    fn plain_simulator_reports_zero_buffer_hits() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let report = Simulator::simulate(cfg, (0..32).map(|i| TraceEvent::read(i, 1)));
        assert_eq!(report.stats.buffer_hits, 0);
    }
}
