//! Address-bus activity tracking.
//!
//! The DAC'99 energy model charges the address decode path and the I/O pads
//! per *bit switch* on the address bus, assuming **Gray code encoding of the
//! address lines** (§2.3). [`BusMonitor`] observes the address streams on
//! the processor↔cache bus (every access) and on the cache↔memory bus
//! (misses and writebacks) and accumulates switch counts, from which the
//! model's `Add_bs` — average bit switches per access — is derived.

/// Converts a binary value to its reflected Gray code.
///
/// # Example
///
/// ```
/// use memsim::gray_encode;
/// assert_eq!(gray_encode(0), 0);
/// assert_eq!(gray_encode(1), 1);
/// assert_eq!(gray_encode(2), 3);
/// assert_eq!(gray_encode(3), 2);
/// ```
pub fn gray_encode(x: u64) -> u64 {
    x ^ (x >> 1)
}

/// How addresses are driven onto a bus.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BusEncoding {
    /// Reflected Gray code (the paper's assumption): sequential addresses
    /// toggle exactly one line.
    #[default]
    Gray,
    /// Plain binary, for the ablation study.
    Binary,
}

impl BusEncoding {
    /// Encodes `addr` for this bus.
    pub fn encode(self, addr: u64) -> u64 {
        match self {
            BusEncoding::Gray => gray_encode(addr),
            BusEncoding::Binary => addr,
        }
    }
}

/// Accumulated switching activity for one bus.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BusStats {
    /// Number of values driven.
    pub transfers: u64,
    /// Total bit transitions between consecutive values.
    pub bit_switches: u64,
}

impl BusStats {
    /// Average bit switches per transfer; 0 for an idle bus.
    pub fn avg_switches(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.bit_switches as f64 / self.transfers as f64
        }
    }
}

/// Tracks switching on the processor-side and memory-side address buses.
///
/// # Example
///
/// ```
/// use memsim::{BusEncoding, BusMonitor};
///
/// let mut bus = BusMonitor::new(BusEncoding::Gray);
/// bus.observe_cpu(0);
/// bus.observe_cpu(1); // Gray: exactly 1 line toggles
/// bus.observe_cpu(2); // Gray(1)=1, Gray(2)=3: 1 toggle
/// assert_eq!(bus.cpu().bit_switches, 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusMonitor {
    encoding: BusEncoding,
    cpu: BusStats,
    mem: BusStats,
    last_cpu: Option<u64>,
    last_mem: Option<u64>,
}

impl BusMonitor {
    /// A monitor with no observed traffic.
    pub fn new(encoding: BusEncoding) -> Self {
        BusMonitor {
            encoding,
            cpu: BusStats::default(),
            mem: BusStats::default(),
            last_cpu: None,
            last_mem: None,
        }
    }

    /// The encoding in use.
    pub fn encoding(&self) -> BusEncoding {
        self.encoding
    }

    /// Records an address driven on the processor↔cache bus.
    pub fn observe_cpu(&mut self, addr: u64) {
        Self::observe(self.encoding, &mut self.cpu, &mut self.last_cpu, addr);
    }

    /// Records an address driven on the cache↔memory bus.
    pub fn observe_mem(&mut self, addr: u64) {
        Self::observe(self.encoding, &mut self.mem, &mut self.last_mem, addr);
    }

    /// Records a run of addresses driven on the cache↔memory bus —
    /// equivalent to calling [`observe_mem`](Self::observe_mem) once per
    /// element, but with the switch accumulator and the previous coded
    /// value held in registers across the run instead of reloaded per
    /// call. The bulk replay scan drives every fill address of a chunk
    /// through here in one go.
    pub fn observe_mem_run(&mut self, addrs: &[u64]) {
        let Some((&first, rest)) = addrs.split_first() else {
            return;
        };
        let encoding = self.encoding;
        let mut prev = encoding.encode(first);
        let mut switches = match self.last_mem {
            Some(last) => (last ^ prev).count_ones() as u64,
            None => prev.count_ones() as u64,
        };
        for &addr in rest {
            let coded = encoding.encode(addr);
            switches += (prev ^ coded).count_ones() as u64;
            prev = coded;
        }
        self.mem.transfers += addrs.len() as u64;
        self.mem.bit_switches += switches;
        self.last_mem = Some(prev);
    }

    fn observe(encoding: BusEncoding, stats: &mut BusStats, last: &mut Option<u64>, addr: u64) {
        let coded = encoding.encode(addr);
        stats.transfers += 1;
        if let Some(prev) = *last {
            stats.bit_switches += (prev ^ coded).count_ones() as u64;
        } else {
            // First drive: lines charge from the idle (all-zero) state.
            stats.bit_switches += coded.count_ones() as u64;
        }
        *last = Some(coded);
    }

    /// Processor-side bus statistics.
    pub fn cpu(&self) -> BusStats {
        self.cpu
    }

    /// Memory-side bus statistics.
    pub fn mem(&self) -> BusStats {
        self.mem
    }
}

impl Default for BusMonitor {
    fn default() -> Self {
        Self::new(BusEncoding::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_adjacent_values_differ_by_one_bit() {
        for x in 0u64..1024 {
            let d = (gray_encode(x) ^ gray_encode(x + 1)).count_ones();
            assert_eq!(d, 1, "gray({x}) vs gray({}) differ by {d} bits", x + 1);
        }
    }

    #[test]
    fn gray_code_is_a_bijection_on_small_ranges() {
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..4096 {
            assert!(seen.insert(gray_encode(x)));
        }
    }

    #[test]
    fn sequential_scan_has_unit_switching_under_gray() {
        let mut bus = BusMonitor::new(BusEncoding::Gray);
        for a in 0u64..100 {
            bus.observe_cpu(a);
        }
        // First drive charges 0 lines (gray(0)=0), then 1 per step.
        assert_eq!(bus.cpu().bit_switches, 99);
        assert!((bus.cpu().avg_switches() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn binary_encoding_switches_more_on_carries() {
        let mut gray = BusMonitor::new(BusEncoding::Gray);
        let mut bin = BusMonitor::new(BusEncoding::Binary);
        for a in 0u64..256 {
            gray.observe_cpu(a);
            bin.observe_cpu(a);
        }
        assert!(bin.cpu().bit_switches > gray.cpu().bit_switches);
    }

    #[test]
    fn mem_bus_is_tracked_separately() {
        let mut bus = BusMonitor::default();
        bus.observe_cpu(1);
        bus.observe_mem(64);
        assert_eq!(bus.cpu().transfers, 1);
        assert_eq!(bus.mem().transfers, 1);
    }

    #[test]
    fn idle_bus_has_zero_average() {
        assert_eq!(BusMonitor::default().cpu().avg_switches(), 0.0);
    }
}
