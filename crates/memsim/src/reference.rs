//! A deliberately naive reference cache model for differential testing.
//!
//! The production [`Cache`](crate::Cache)/[`Simulator`](crate::Simulator)
//! pair is built for sweep throughput: shift/mask address arithmetic,
//! per-set way vectors, monotonic stamps. This module reimplements the
//! same *semantics* in the most obvious way possible — one flat `Vec` of
//! resident lines, linear search, `/` and `%` instead of shifts, explicit
//! per-byte line splitting — so the two implementations share no code and
//! no tricks. `tests/reference_differential.rs` drives random traces
//! through both and asserts identical [`CacheStats`], which is how bugs in
//! either address path would surface.
//!
//! Scope: LRU and FIFO replacement with both write policies. PLRU and
//! random replacement are stateful heuristics whose "naive" version would
//! have to copy the production algorithm verbatim, which tests nothing, so
//! they are excluded (the production PLRU/random paths are covered by the
//! direct-mapped-equivalence property, where no replacement choice
//! exists).

use crate::config::{CacheConfig, Replacement, WritePolicy};
use crate::sim::TraceEvent;
use crate::stats::CacheStats;

/// One resident line. The full line-aligned byte address is stored —
/// no tags, no set/tag split to reconstruct from.
#[derive(Clone, Copy, Debug)]
struct Line {
    base: u64,
    dirty: bool,
    /// Last-use time (LRU) — refreshed on every touch.
    used_at: u64,
    /// Fill time (FIFO) — set once when the line comes in.
    filled_at: u64,
}

/// The naive model: every resident line in one unordered vector.
///
/// # Example
///
/// ```
/// use memsim::reference::ReferenceCache;
/// use memsim::CacheConfig;
///
/// let mut cache = ReferenceCache::new(CacheConfig::new(64, 8, 1)?);
/// assert!(!cache.access(0x10, false)); // cold miss
/// assert!(cache.access(0x17, false));  // same line
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceCache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl ReferenceCache {
    /// An empty reference cache.
    ///
    /// # Panics
    ///
    /// Panics on PLRU or random replacement — the naive model covers LRU
    /// and FIFO only (see the module docs).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            matches!(config.replacement, Replacement::Lru | Replacement::Fifo),
            "reference model supports LRU and FIFO only, got {}",
            config.replacement
        );
        ReferenceCache {
            config,
            lines: Vec::new(),
            clock: 0,
            stats: CacheStats::new(),
        }
    }

    /// Set index of `addr`, by division — not by shifting.
    fn set_of(&self, addr: u64) -> u64 {
        (addr / self.config.line() as u64) % self.config.num_sets() as u64
    }

    /// Line-aligned base of `addr`, by remainder — not by masking.
    fn base_of(&self, addr: u64) -> u64 {
        addr - addr % self.config.line() as u64
    }

    /// One line access (the caller splits spanning accesses). Returns
    /// whether it hit, and updates the counters.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let base = self.base_of(addr);
        let set = self.set_of(addr);

        // Linear search of the whole vector for the line.
        let found = self.lines.iter_mut().find(|l| l.base == base);
        if let Some(line) = found {
            if self.config.replacement == Replacement::Lru {
                line.used_at = self.clock;
            }
            if is_write && self.config.write_policy == WritePolicy::WriteBackAllocate {
                line.dirty = true;
            }
            self.count(is_write, true);
            return true;
        }

        self.count(is_write, false);
        if is_write && self.config.write_policy == WritePolicy::WriteThroughNoAllocate {
            return false; // straight to memory, nothing allocated
        }

        // The set is full when `assoc` of its lines are resident; evict
        // the oldest by the policy's notion of age, else just insert.
        let mut residents: Vec<usize> = (0..self.lines.len())
            .filter(|&i| self.set_of(self.lines[i].base) == set)
            .collect();
        debug_assert!(residents.len() <= self.config.assoc());
        if residents.len() == self.config.assoc() {
            residents.sort_by_key(|&i| match self.config.replacement {
                Replacement::Lru => self.lines[i].used_at,
                _ => self.lines[i].filled_at,
            });
            let victim = residents[0];
            let old = self.lines.swap_remove(victim);
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.writebacks += 1;
            }
        }
        self.stats.fills += 1;
        self.lines.push(Line {
            base,
            dirty: is_write && self.config.write_policy == WritePolicy::WriteBackAllocate,
            used_at: self.clock,
            filled_at: self.clock,
        });
        false
    }

    fn count(&mut self, is_write: bool, hit: bool) {
        if is_write {
            self.stats.writes += 1;
            if hit {
                self.stats.write_hits += 1;
            }
        } else {
            self.stats.reads += 1;
            if hit {
                self.stats.read_hits += 1;
            }
        }
    }

    /// Processes one event, splitting it per byte: walk every byte the
    /// access covers and issue a line access each time a new line starts.
    /// (The production simulator jumps line to line arithmetically; the
    /// walk is the naive spelling of the same split.)
    pub fn step(&mut self, event: TraceEvent) {
        let size = u64::from(event.size.max(1));
        let mut prev_line = None;
        for b in event.addr..event.addr + size {
            let line_no = b / self.config.line() as u64;
            if prev_line != Some(line_no) {
                let addr = if prev_line.is_none() { event.addr } else { b };
                self.access(addr, event.is_write);
                prev_line = Some(line_no);
            }
        }
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Convenience: run a whole trace and return the counters.
    pub fn simulate<I: IntoIterator<Item = TraceEvent>>(
        config: CacheConfig,
        events: I,
    ) -> CacheStats {
        let mut cache = ReferenceCache::new(config);
        for e in events {
            cache.step(e);
        }
        cache.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: usize, line: usize, assoc: usize) -> CacheConfig {
        CacheConfig::new(size, line, assoc).expect("valid geometry")
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = ReferenceCache::new(cfg(64, 8, 1));
        assert!(!c.access(0x10, false));
        assert!(c.access(0x17, false));
        assert!(!c.access(0x18, false));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = ReferenceCache::new(cfg(64, 8, 1)); // 8 sets
        assert!(!c.access(0, false));
        assert!(!c.access(64, false)); // same set, evicts line 0
        assert!(!c.access(0, false));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_and_fifo_differ_on_the_classic_pattern() {
        // 0, 16, 0, 32 in one 2-way set: LRU keeps 0, FIFO evicts it.
        let trace = [0u64, 16, 0, 32, 0];
        let run = |policy| {
            let mut c = ReferenceCache::new(cfg(32, 8, 2).with_replacement(policy));
            for &a in &trace {
                c.access(a, false);
            }
            c.stats().read_hits
        };
        assert_eq!(run(Replacement::Lru), 2); // second 0 and final 0 hit
        assert_eq!(run(Replacement::Fifo), 1); // final 0 was evicted
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = ReferenceCache::new(
            cfg(16, 8, 1).with_write_policy(WritePolicy::WriteThroughNoAllocate),
        );
        assert!(!c.access(0, true));
        assert_eq!(c.stats().fills, 0);
        assert!(!c.access(0, false)); // still not resident
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = ReferenceCache::new(cfg(16, 8, 1)); // 2 sets
        c.access(0, true);
        c.access(16, false); // conflict in set 0, dirty victim
        assert_eq!(c.stats().writebacks, 1);
        c.access(32, false); // clean victim
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn spanning_access_is_split_per_line() {
        let mut c = ReferenceCache::new(cfg(64, 8, 1));
        c.step(TraceEvent::read(6, 4)); // bytes 6..10 touch lines 0 and 1
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_misses(), 2);
    }

    #[test]
    fn zero_size_access_counts_once() {
        let mut c = ReferenceCache::new(cfg(64, 8, 1));
        c.step(TraceEvent::read(0, 0));
        assert_eq!(c.stats().reads, 1);
    }

    #[test]
    #[should_panic(expected = "LRU and FIFO only")]
    fn plru_is_rejected() {
        ReferenceCache::new(cfg(32, 8, 4).with_replacement(Replacement::Plru));
    }
}
