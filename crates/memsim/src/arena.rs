//! Trace-once storage shared across simulations.
//!
//! Design-space sweeps evaluate many cache configurations against the same
//! access trace. Regenerating the trace for every `(T, L, S, B)` point is
//! the dominant redundant cost of a sweep: all associativities over one
//! layout/tiling see byte-identical event streams. A [`TraceArena`]
//! materializes each distinct trace exactly once into one flat
//! `Vec<TraceEvent>` and hands out `&[TraceEvent]` slices, so simulators
//! replay a shared immutable buffer instead of re-walking the loop nest.
//!
//! The arena is built in two stages to fit parallel sweeps: produce each
//! keyed trace independently (possibly on worker threads), then
//! [`TraceArena::assemble`] them in deterministic key order. The finished
//! arena is immutable and can be shared by reference across scoped threads.
//!
//! # Example
//!
//! ```
//! use memsim::{CacheConfig, Simulator, TraceArena, TraceEvent};
//!
//! let arena = TraceArena::assemble(vec![
//!     ("stream", (0..8).map(|i| TraceEvent::read(i * 4, 4)).collect()),
//!     ("stride", (0..8).map(|i| TraceEvent::read(i * 64, 4)).collect()),
//! ]);
//! let cfg = CacheConfig::new(64, 16, 1)?;
//! let stream = Simulator::simulate_slice(cfg, arena.get(&"stream").unwrap());
//! let stride = Simulator::simulate_slice(cfg, arena.get(&"stride").unwrap());
//! assert!(stream.stats.read_misses() < stride.stats.read_misses());
//! assert_eq!(arena.events().len(), 16);
//! # Ok::<(), memsim::ConfigError>(())
//! ```

use crate::sim::TraceEvent;
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

/// A flat, immutable store of trace events addressed by key.
///
/// `K` identifies one logical trace — sweeps typically key by the
/// parameters the trace depends on (e.g. `(cache size, line size, tiling)`).
#[derive(Clone, Debug)]
pub struct TraceArena<K> {
    events: Vec<TraceEvent>,
    spans: HashMap<K, Range<usize>>,
}

impl<K: Eq + Hash> TraceArena<K> {
    /// An empty arena.
    pub fn new() -> Self {
        TraceArena {
            events: Vec::new(),
            spans: HashMap::new(),
        }
    }

    /// Builds an arena from independently generated traces, concatenating
    /// them in the given order. Later duplicates of a key are dropped (the
    /// first occurrence wins), keeping assembly deterministic.
    pub fn assemble(traces: impl IntoIterator<Item = (K, Vec<TraceEvent>)>) -> Self {
        let mut arena = TraceArena::new();
        for (key, trace) in traces {
            arena.insert(key, trace);
        }
        arena
    }

    /// Appends one keyed trace; returns `false` (and drops the trace) if
    /// the key is already present.
    pub fn insert(&mut self, key: K, trace: Vec<TraceEvent>) -> bool {
        if self.spans.contains_key(&key) {
            return false;
        }
        let start = self.events.len();
        self.events.extend_from_slice(&trace);
        self.spans.insert(key, start..self.events.len());
        true
    }

    /// Generates and stores the trace for `key` unless already present,
    /// then returns its slice. Serial-use convenience; parallel builders
    /// should pre-generate and [`assemble`](Self::assemble).
    pub fn intern_with(
        &mut self,
        key: K,
        generate: impl FnOnce() -> Vec<TraceEvent>,
    ) -> &[TraceEvent] {
        let span = match self.spans.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let trace = generate();
                let start = self.events.len();
                self.events.extend_from_slice(&trace);
                e.insert(start..self.events.len()).clone()
            }
        };
        &self.events[span]
    }

    /// The stored trace for `key`, if any.
    pub fn get<Q>(&self, key: &Q) -> Option<&[TraceEvent]>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.spans.get(key).map(|span| &self.events[span.clone()])
    }

    /// Number of distinct traces stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no traces.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The whole flat event buffer (all traces back to back).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl<K: Eq + Hash> Default for TraceArena<K> {
    fn default() -> Self {
        TraceArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(addrs: &[u64]) -> Vec<TraceEvent> {
        addrs.iter().map(|&a| TraceEvent::read(a, 4)).collect()
    }

    #[test]
    fn spans_map_back_to_their_traces() {
        let arena = TraceArena::assemble(vec![
            (1u32, reads(&[0, 4, 8])),
            (2, reads(&[100])),
            (3, Vec::new()),
        ]);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.get(&1).unwrap().len(), 3);
        assert_eq!(arena.get(&2).unwrap()[0].addr, 100);
        assert_eq!(arena.get(&3).unwrap(), &[]);
        assert!(arena.get(&4).is_none());
        assert_eq!(arena.events().len(), 4);
    }

    #[test]
    fn first_insert_wins() {
        let mut arena = TraceArena::new();
        assert!(arena.insert("k", reads(&[1])));
        assert!(!arena.insert("k", reads(&[2, 3])));
        assert_eq!(arena.get("k").unwrap().len(), 1);
        assert_eq!(arena.events().len(), 1);
    }

    #[test]
    fn intern_with_generates_once() {
        let mut arena = TraceArena::new();
        let mut calls = 0;
        for _ in 0..3 {
            let slice = arena.intern_with(7u64, || {
                calls += 1;
                reads(&[0, 8])
            });
            assert_eq!(slice.len(), 2);
        }
        assert_eq!(calls, 1);
        assert_eq!(arena.events().len(), 2);
    }

    #[test]
    fn empty_arena_behaves() {
        let arena: TraceArena<u8> = TraceArena::default();
        assert!(arena.is_empty());
        assert_eq!(arena.events().len(), 0);
    }
}
