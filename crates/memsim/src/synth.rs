//! Synthetic trace generators.
//!
//! Deterministic (seeded) reference streams for benchmarking the simulator
//! and stress-testing analyses independent of the loop-nest front end:
//! sequential scans, fixed strides, uniform random, and a hot/cold mixture
//! approximating the temporal locality of real programs.

use crate::sim::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic access-pattern description.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Pattern {
    /// `addr = base + i·stride`, wrapping at `footprint`.
    Strided {
        /// Bytes between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random addresses within the footprint.
    Uniform,
    /// With probability `hot_fraction`, access the hot region (first
    /// `hot_bytes` of the footprint); otherwise anywhere — the classic
    /// 90/10-style locality mixture.
    HotCold {
        /// Size of the hot region in bytes.
        hot_bytes: u64,
        /// Probability of touching the hot region.
        hot_fraction: f64,
    },
}

/// Generates `count` read accesses of `access_size` bytes within
/// `footprint` bytes following `pattern`. Deterministic per `seed`.
///
/// # Panics
///
/// Panics if `footprint` is zero, `access_size` is zero, a stride of zero
/// is given, or a hot region larger than the footprint / a fraction outside
/// `[0, 1]` is given.
pub fn generate(
    pattern: Pattern,
    footprint: u64,
    access_size: u32,
    count: usize,
    seed: u64,
) -> Vec<TraceEvent> {
    assert!(footprint > 0, "footprint must be positive");
    assert!(access_size > 0, "access size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    match pattern {
        Pattern::Strided { stride } => {
            assert!(stride > 0, "stride must be positive");
            (0..count)
                .map(|i| TraceEvent::read((i as u64 * stride) % footprint, access_size))
                .collect()
        }
        Pattern::Uniform => (0..count)
            .map(|_| TraceEvent::read(rng.gen_range(0..footprint), access_size))
            .collect(),
        Pattern::HotCold {
            hot_bytes,
            hot_fraction,
        } => {
            assert!(
                hot_bytes > 0 && hot_bytes <= footprint,
                "hot region must fit"
            );
            assert!(
                (0.0..=1.0).contains(&hot_fraction),
                "hot fraction must be a probability"
            );
            (0..count)
                .map(|_| {
                    let addr = if rng.gen_bool(hot_fraction) {
                        rng.gen_range(0..hot_bytes)
                    } else {
                        rng.gen_range(0..footprint)
                    };
                    TraceEvent::read(addr, access_size)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, Simulator};

    #[test]
    fn strided_wraps_at_the_footprint() {
        let t = generate(Pattern::Strided { stride: 8 }, 32, 4, 6, 0);
        let addrs: Vec<u64> = t.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24, 0, 8]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(Pattern::Uniform, 4096, 4, 100, 42);
        let b = generate(Pattern::Uniform, 4096, 4, 100, 42);
        let c = generate(Pattern::Uniform, 4096, 4, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_inside_the_footprint() {
        for pattern in [
            Pattern::Strided { stride: 12 },
            Pattern::Uniform,
            Pattern::HotCold {
                hot_bytes: 64,
                hot_fraction: 0.9,
            },
        ] {
            for e in generate(pattern, 1024, 4, 500, 7) {
                assert!(e.addr < 1024);
            }
        }
    }

    #[test]
    fn hot_cold_hits_more_than_uniform() {
        let cfg = CacheConfig::new(256, 8, 2).expect("valid geometry");
        let hot = generate(
            Pattern::HotCold {
                hot_bytes: 128,
                hot_fraction: 0.9,
            },
            64 * 1024,
            4,
            5000,
            1,
        );
        let uni = generate(Pattern::Uniform, 64 * 1024, 4, 5000, 1);
        let mr_hot = Simulator::simulate(cfg, hot).stats.read_miss_rate();
        let mr_uni = Simulator::simulate(cfg, uni).stats.read_miss_rate();
        assert!(
            mr_hot < mr_uni,
            "locality must help: hot {mr_hot} vs uniform {mr_uni}"
        );
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let _ = generate(Pattern::Strided { stride: 0 }, 64, 4, 10, 0);
    }

    #[test]
    #[should_panic(expected = "hot region")]
    fn oversized_hot_region_panics() {
        let _ = generate(
            Pattern::HotCold {
                hot_bytes: 128,
                hot_fraction: 0.5,
            },
            64,
            4,
            10,
            0,
        );
    }
}
