//! The cache proper: sets, ways, and replacement state.

use crate::config::{CacheConfig, Replacement, WritePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of a single line access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line written back to memory, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address of the line brought in from memory, if any
    /// (`None` on hits and on write-through misses without allocation).
    pub fill: Option<u64>,
    /// Line-aligned address evicted to make room (clean or dirty), if any.
    pub evicted: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    dirty: bool,
    /// Monotonic counter value at last *use* (LRU) or at *fill* (FIFO).
    stamp: u64,
}

#[derive(Clone, Debug)]
struct Set {
    ways: Vec<Option<Way>>,
    /// Tree-PLRU direction bits (bit per internal node), used when the
    /// policy is [`Replacement::Plru`].
    plru_bits: u64,
}

/// A set-associative cache with pluggable replacement and write policies.
///
/// Addresses are byte addresses; the cache tracks presence per line. Data
/// contents are not modelled — this is a performance/energy simulator, not a
/// functional one.
///
/// # Example
///
/// ```
/// use memsim::{Cache, CacheConfig, Replacement};
///
/// let cfg = CacheConfig::new(32, 8, 2)?.with_replacement(Replacement::Lru);
/// let mut cache = Cache::new(cfg);
/// cache.read(0);
/// cache.read(32);   // same set, second way
/// cache.read(0);    // LRU refresh
/// let out = cache.read(64); // evicts line 32, not line 0
/// assert_eq!(out.evicted, Some(32));
/// assert!(cache.read(0).hit);
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    clock: u64,
    rng: Option<StdRng>,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![
            Set {
                ways: vec![None; config.assoc()],
                plru_bits: 0,
            };
            config.num_sets()
        ];
        let rng = match config.replacement {
            Replacement::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        Cache {
            config,
            sets,
            clock: 0,
            rng,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Invalidates every line, returning the cache to its initial state.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.ways.iter_mut().for_each(|w| *w = None);
            set.plru_bits = 0;
        }
        self.clock = 0;
    }

    /// Reads the line containing `addr`.
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, false)
    }

    /// Writes the line containing `addr`.
    pub fn write(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, true)
    }

    /// Performs one line access. Multi-byte accesses that span a line
    /// boundary must be split by the caller (see
    /// [`Simulator`](crate::sim::Simulator), which does this).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let (set_idx, tag) = self.config.locate(addr);
        let line_base = self.config.line_base(addr);
        let assoc = self.config.assoc();
        let replacement = self.config.replacement;
        let write_policy = self.config.write_policy;
        let clock = self.clock;

        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way_idx) = set
            .ways
            .iter()
            .position(|w| w.is_some_and(|w| w.tag == tag))
        {
            let way = set.ways[way_idx].as_mut().expect("way just matched");
            if replacement == Replacement::Lru {
                way.stamp = clock;
            }
            if is_write {
                match write_policy {
                    WritePolicy::WriteBackAllocate => way.dirty = true,
                    WritePolicy::WriteThroughNoAllocate => {} // memory updated directly
                }
            }
            if replacement == Replacement::Plru {
                touch_plru(&mut set.plru_bits, way_idx, assoc);
            }
            return AccessOutcome {
                hit: true,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Miss path.
        if is_write && write_policy == WritePolicy::WriteThroughNoAllocate {
            // Write goes straight to memory; nothing is allocated.
            return AccessOutcome {
                hit: false,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Choose a victim way: first invalid way, else per policy.
        let victim_idx = match set.ways.iter().position(Option::is_none) {
            Some(idx) => idx,
            None => match replacement {
                Replacement::Lru | Replacement::Fifo => set
                    .ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.expect("all ways valid").stamp)
                    .map(|(i, _)| i)
                    .expect("associativity is at least 1"),
                Replacement::Plru => plru_victim(set.plru_bits, assoc),
                Replacement::Random { .. } => self
                    .rng
                    .as_mut()
                    .expect("random policy always has an rng")
                    .gen_range(0..assoc),
            },
        };

        let set = &mut self.sets[set_idx];
        let old = set.ways[victim_idx];
        let (writeback, evicted) = match old {
            Some(w) => {
                let evicted_base = self.config.reconstruct_line_base(set_idx, w.tag);
                (w.dirty.then_some(evicted_base), Some(evicted_base))
            }
            None => (None, None),
        };

        set.ways[victim_idx] = Some(Way {
            tag,
            dirty: is_write && write_policy == WritePolicy::WriteBackAllocate,
            stamp: clock,
        });
        if replacement == Replacement::Plru {
            touch_plru(&mut set.plru_bits, victim_idx, assoc);
        }

        AccessOutcome {
            hit: false,
            writeback,
            fill: Some(line_base),
            evicted,
        }
    }

    /// True if the line containing `addr` is currently cached (no state
    /// change — useful in tests and in the conflict-miss classifier).
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.config.locate(addr);
        self.sets[set_idx]
            .ways
            .iter()
            .any(|w| w.is_some_and(|w| w.tag == tag))
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().filter(|w| w.is_some()).count())
            .sum()
    }
}

impl CacheConfig {
    /// Rebuilds the line-aligned byte address from `(set, tag)`.
    fn reconstruct_line_base(&self, set: usize, tag: u64) -> u64 {
        (tag * self.num_sets() as u64 + set as u64) * self.line() as u64
    }
}

/// Walks the PLRU tree from the root, flipping the bits along the path to
/// point *away* from `way`, marking it most-recently used.
fn touch_plru(bits: &mut u64, way: usize, assoc: usize) {
    debug_assert!(assoc.is_power_of_two());
    let mut node = 0usize; // root
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let go_right = way >= mid;
        // Bit semantics: 0 = victim on the left, 1 = victim on the right.
        // Point the victim pointer at the *other* half.
        if go_right {
            *bits &= !(1 << node);
            lo = mid;
            node = 2 * node + 2;
        } else {
            *bits |= 1 << node;
            hi = mid;
            node = 2 * node + 1;
        }
    }
}

/// Follows the PLRU victim pointers from the root to a leaf.
fn plru_victim(bits: u64, assoc: usize) -> usize {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bits & (1 << node) != 0 {
            lo = mid;
            node = 2 * node + 2;
        } else {
            hi = mid;
            node = 2 * node + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Replacement, WritePolicy};

    fn cache(size: usize, line: usize, assoc: usize) -> Cache {
        Cache::new(CacheConfig::new(size, line, assoc).unwrap())
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = cache(64, 8, 1);
        assert!(!c.read(0x10).hit);
        assert!(c.read(0x17).hit);
        assert!(!c.read(0x18).hit);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = cache(64, 8, 1); // 8 sets
        assert!(!c.read(0).hit);
        assert!(!c.read(64).hit); // same set 0, evicts
        assert!(!c.read(0).hit); // evicted again
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn two_way_lru_keeps_recently_used() {
        let mut c = cache(32, 8, 2); // 2 sets, addresses 0,16,32 map to set 0
        c.read(0);
        c.read(16);
        c.read(0); // refresh 0
        let out = c.read(32);
        assert_eq!(out.evicted, Some(16));
        assert!(c.contains(0));
        assert!(!c.contains(16));
    }

    #[test]
    fn fifo_evicts_in_fill_order() {
        let cfg = CacheConfig::new(32, 8, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo);
        let mut c = Cache::new(cfg);
        c.read(0);
        c.read(16);
        c.read(0); // does NOT refresh under FIFO
        let out = c.read(32);
        assert_eq!(out.evicted, Some(0));
    }

    #[test]
    fn plru_four_way_behaves_sanely() {
        let cfg = CacheConfig::new(32, 8, 4)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for a in [0u64, 32, 64, 96] {
            assert!(!c.read(a).hit);
        }
        // All four resident; a fifth distinct line evicts exactly one.
        let out = c.read(128);
        assert!(out.evicted.is_some());
        assert_eq!(c.valid_lines(), 4);
        // The most recently touched line (96) must survive one eviction
        // under tree-PLRU.
        assert!(c.contains(128));
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let cfg = CacheConfig::new(64, 8, 8)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for i in 0..8u64 {
            c.read(i * 64);
        }
        for i in 8..64u64 {
            let just_read = i * 64;
            let out = c.read(just_read);
            assert_ne!(out.evicted, Some(just_read));
            assert!(c.contains(just_read));
        }
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = CacheConfig::new(32, 8, 4)
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let mut c = Cache::new(cfg);
            let mut evictions = Vec::new();
            for i in 0..64u64 {
                if let Some(e) = c.read(i * 8 % 512).evicted {
                    evictions.push(e);
                }
            }
            evictions
        };
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    fn writeback_marks_dirty_and_writes_back() {
        let mut c = cache(16, 8, 1); // 2 sets
        c.write(0);
        let out = c.read(16); // set 0 conflict, dirty victim
        assert_eq!(out.writeback, Some(0));
        assert_eq!(out.evicted, Some(0));
        let out2 = c.read(32); // clean victim now
        assert_eq!(out2.writeback, None);
        assert_eq!(out2.evicted, Some(16));
    }

    #[test]
    fn write_through_does_not_allocate() {
        let cfg = CacheConfig::new(16, 8, 1)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(cfg);
        assert!(!c.write(0).hit);
        assert!(!c.contains(0));
        c.read(0);
        assert!(c.write(0).hit); // write hits update in place
        let out = c.read(16);
        assert_eq!(out.writeback, None); // never dirty
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut c = cache(64, 8, 2);
        c.read(0);
        c.read(64);
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.read(0).hit);
    }

    #[test]
    fn fill_reports_line_base() {
        let mut c = cache(64, 16, 1);
        let out = c.read(0x23);
        assert_eq!(out.fill, Some(0x20));
    }

    #[test]
    fn evicted_address_round_trips() {
        let mut c = cache(64, 8, 1); // 8 sets
        c.read(8 * 3 + 64 * 5); // set 3, tag 5
        let out = c.read(8 * 3 + 64 * 9); // same set, different tag
        assert_eq!(out.evicted, Some(8 * 3 + 64 * 5));
    }

    #[test]
    fn fully_associative_no_conflict_misses() {
        let mut c = Cache::new(CacheConfig::fully_associative(64, 8).unwrap());
        // 8 lines with addresses that would all collide direct-mapped.
        for i in 0..8u64 {
            assert!(!c.read(i * 64).hit);
        }
        for i in 0..8u64 {
            assert!(c.read(i * 64).hit, "line {i} should still be resident");
        }
    }
}
