//! The cache proper: sets, ways, and replacement state.

use crate::config::{CacheConfig, Replacement, WritePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of a single line access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line written back to memory, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address of the line brought in from memory, if any
    /// (`None` on hits and on write-through misses without allocation).
    pub fill: Option<u64>,
    /// Line-aligned address evicted to make room (clean or dirty), if any.
    pub evicted: Option<u64>,
}

/// A set-associative cache with pluggable replacement and write policies.
///
/// Addresses are byte addresses; the cache tracks presence per line. Data
/// contents are not modelled — this is a performance/energy simulator, not a
/// functional one.
///
/// # Example
///
/// ```
/// use memsim::{Cache, CacheConfig, Replacement};
///
/// let cfg = CacheConfig::new(32, 8, 2)?.with_replacement(Replacement::Lru);
/// let mut cache = Cache::new(cfg);
/// cache.read(0);
/// cache.read(32);   // same set, second way
/// cache.read(0);    // LRU refresh
/// let out = cache.read(64); // evicts line 32, not line 0
/// assert_eq!(out.evicted, Some(32));
/// assert!(cache.read(0).hit);
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Tag keys, set-major: set `s` owns `keys[s * assoc..(s + 1) * assoc]`.
    /// A valid way stores `(tag << 1) | 1`; an invalid way stores `0`. The
    /// tag is `addr >> (line_shift + sets_shift)`, which leaves the marker
    /// bit free whenever the cache maps more than one byte per set
    /// (debug-asserted in [`access_line`](Self::access_line)). Keeping the
    /// probe loop on a flat `u64` array — tags only, no replacement
    /// metadata interleaved — is what makes `access` cheap: it is the
    /// inner loop of every sweep.
    keys: Vec<u64>,
    /// Monotonic counter value at last *use* (LRU) or at *fill* (FIFO),
    /// parallel to `keys`; only read for valid ways.
    stamps: Vec<u64>,
    /// Dirty flags, parallel to `keys`.
    dirty: Vec<bool>,
    /// Tree-PLRU direction bits (bit per internal node), one word per set,
    /// used when the policy is [`Replacement::Plru`].
    plru_bits: Vec<u64>,
    /// `line.trailing_zeros()` — precomputed, the geometry is validated.
    line_shift: u32,
    /// `num_sets.trailing_zeros()` — shift between line number and tag.
    sets_shift: u32,
    /// `num_sets - 1` — mask from line number to set index.
    set_mask: u64,
    clock: u64,
    rng: Option<StdRng>,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let rng = match config.replacement {
            Replacement::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        let lines = config.num_sets() * config.assoc();
        Cache {
            line_shift: config.line().trailing_zeros(),
            sets_shift: config.num_sets().trailing_zeros(),
            set_mask: config.num_sets() as u64 - 1,
            config,
            keys: vec![0; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            plru_bits: vec![0; config.num_sets()],
            clock: 0,
            rng,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// `line.trailing_zeros()` — the shift from byte address to line number.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Invalidates every line, returning the cache to its initial state.
    pub fn flush(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = 0);
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.plru_bits.iter_mut().for_each(|b| *b = 0);
        self.clock = 0;
    }

    /// Reads the line containing `addr`.
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, false)
    }

    /// Writes the line containing `addr`.
    pub fn write(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, true)
    }

    /// Performs one line access. Multi-byte accesses that span a line
    /// boundary must be split by the caller (see
    /// [`Simulator`](crate::sim::Simulator), which does this).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.access_line(addr >> self.line_shift, is_write)
    }

    /// Performs one access by line number (`addr >> line_shift`). This is
    /// the core of [`access`](Self::access); the fused
    /// [`ReplayBank`](crate::ReplayBank) calls it directly with line
    /// numbers precomputed once per line-size class.
    pub fn access_line(&mut self, line_addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets_shift;
        debug_assert!(tag <= u64::MAX >> 1, "tag must leave the marker bit free");
        let key = (tag << 1) | 1;
        let assoc = self.config.assoc();
        let replacement = self.config.replacement;
        let write_policy = self.config.write_policy;
        let clock = self.clock;

        let base = set_idx * assoc;
        let set = &self.keys[base..base + assoc];

        // Hit path.
        if let Some(way_idx) = set.iter().position(|&k| k == key) {
            if replacement == Replacement::Lru {
                self.stamps[base + way_idx] = clock;
            }
            if is_write && write_policy == WritePolicy::WriteBackAllocate {
                self.dirty[base + way_idx] = true;
            }
            if replacement == Replacement::Plru {
                touch_plru(&mut self.plru_bits[set_idx], way_idx, assoc);
            }
            return AccessOutcome {
                hit: true,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Miss path.
        if is_write && write_policy == WritePolicy::WriteThroughNoAllocate {
            // Write goes straight to memory; nothing is allocated.
            return AccessOutcome {
                hit: false,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Choose a victim way: first invalid way, else per policy.
        let victim_idx = match set.iter().position(|&k| k == 0) {
            Some(idx) => idx,
            None => match replacement {
                Replacement::Lru | Replacement::Fifo => self.stamps[base..base + assoc]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| s)
                    .map(|(i, _)| i)
                    .expect("associativity is at least 1"),
                Replacement::Plru => plru_victim(self.plru_bits[set_idx], assoc),
                Replacement::Random { .. } => self
                    .rng
                    .as_mut()
                    .expect("random policy always has an rng")
                    .gen_range(0..assoc),
            },
        };

        let victim = base + victim_idx;
        let old_key = self.keys[victim];
        let (writeback, evicted) = if old_key != 0 {
            let evicted_line = ((old_key >> 1) << self.sets_shift) | set_idx as u64;
            let evicted_base = evicted_line << self.line_shift;
            (
                self.dirty[victim].then_some(evicted_base),
                Some(evicted_base),
            )
        } else {
            (None, None)
        };

        self.keys[victim] = key;
        self.stamps[victim] = clock;
        self.dirty[victim] = is_write && write_policy == WritePolicy::WriteBackAllocate;
        if replacement == Replacement::Plru {
            touch_plru(&mut self.plru_bits[set_idx], victim_idx, assoc);
        }

        AccessOutcome {
            hit: false,
            writeback,
            fill: Some(line_addr << self.line_shift),
            evicted,
        }
    }

    /// Whether [`run_read_lines`](Self::run_read_lines) reproduces this
    /// cache's canonical behaviour. The bulk path specializes the two
    /// stamp-ordered policies (LRU and FIFO) up to 8 ways — the widest
    /// associativity whose per-way tag digests fit one `u64` word. PLRU
    /// and seeded-random lanes keep the scalar loop: their replacement
    /// state (tree bits, RNG draws) is advanced per access and gains
    /// nothing from the packed probe.
    pub(crate) fn bulk_read_eligible(&self) -> bool {
        matches!(
            self.config.replacement,
            Replacement::Lru | Replacement::Fifo
        ) && matches!(self.config.assoc(), 1 | 2 | 4 | 8)
    }

    /// Replays a read-only stream of line numbers through the cache in one
    /// tight scan — the bulk-lane fast path of
    /// [`ReplayBank`](crate::ReplayBank).
    ///
    /// Equivalent to calling [`access_line`](Self::access_line) with
    /// `is_write == false` for each element, under two preconditions the
    /// bank enforces (debug-asserted here):
    ///
    /// * [`bulk_read_eligible`](Self::bulk_read_eligible) holds, and
    /// * the cache holds **no dirty lines** (the bank routes every stream
    ///   through the scalar path once it has seen a single write), so a
    ///   read miss can never trigger a writeback.
    ///
    /// Each fill's line-aligned byte address is appended to `fill_scratch`
    /// in access order — the caller drives the memory-side bus from it in
    /// one predictable scan after the loop. Counters come back in bulk;
    /// the caller adds the read total itself (a property of the stream,
    /// not the lane).
    ///
    /// Direct-mapped lanes skip the `stamps`/`clock` bookkeeping entirely:
    /// with one way per set the victim is always way 0 and the stamp array
    /// is never read back, for this or any later access. Set-associative
    /// lanes maintain `stamps` and `clock` exactly as the scalar path
    /// does, probing via a per-set SWAR digest word (8 bits per way:
    /// valid bit + 7 tag bits) rebuilt from the canonical arrays once per
    /// call — hits and invalid ways resolve with bitwise compares instead
    /// of a per-way scan.
    pub(crate) fn run_read_lines(
        &mut self,
        lines: &[u64],
        max_line: u64,
        digest_scratch: &mut Vec<u64>,
        word_scratch: &mut Vec<u64>,
        fill_scratch: &mut Vec<u64>,
    ) -> BulkReadOutcome {
        debug_assert!(self.bulk_read_eligible());
        debug_assert!(
            self.dirty.iter().all(|&d| !d),
            "bulk read replay requires an all-clean cache"
        );
        fill_scratch.clear();
        let mut out = BulkReadOutcome::default();
        let set_mask = self.set_mask;
        let sets_shift = self.sets_shift;
        let line_shift = self.line_shift;
        let assoc = self.config.assoc();

        if assoc == 1 {
            let keys = &mut self.keys[..];
            // The extra `& (len - 1)` is a no-op (sets are a power of
            // two) that lets the compiler prove the index in bounds.
            let idx_mask = keys.len() - 1;
            for &line in lines {
                let set = (line & set_mask) as usize & idx_mask;
                let key = ((line >> sets_shift) << 1) | 1;
                let old = keys[set];
                keys[set] = key;
                if old == key {
                    out.hits += 1;
                } else {
                    out.evictions += u64::from(old != 0);
                    fill_scratch.push(line << line_shift);
                }
            }
            out.fills = fill_scratch.len() as u64;
            self.clock += lines.len() as u64;
            return out;
        }

        // When every tag in the stream fits 15 bits, a set's whole state —
        // keys *and* recency order — packs into exact 16-bit way entries
        // (one u64 word for 2/4 ways, a word pair for 8), and the probe
        // needs no confirming key load and the miss no stamp scan. Wider
        // tags (real `.din` address streams) take the 7-bit-digest probe,
        // which accelerates but never replaces the canonical arrays.
        let narrow = (max_line >> sets_shift) < (1 << 15);
        match (narrow, assoc) {
            (true, 2) => {
                self.run_read_lines_exact::<2>(lines, word_scratch, fill_scratch, &mut out)
            }
            (true, 4) => {
                self.run_read_lines_exact::<4>(lines, word_scratch, fill_scratch, &mut out)
            }
            (true, 8) => self.run_read_lines_exact8(lines, word_scratch, fill_scratch, &mut out),
            (_, 2) => self.run_read_lines_swar::<2>(lines, digest_scratch, fill_scratch, &mut out),
            (_, 4) => self.run_read_lines_swar::<4>(lines, digest_scratch, fill_scratch, &mut out),
            (_, 8) => self.run_read_lines_swar::<8>(lines, digest_scratch, fill_scratch, &mut out),
            _ => unreachable!("bulk_read_eligible gates associativity"),
        }
        out.fills = fill_scratch.len() as u64;
        out
    }

    /// Exact packed-recency bulk scan, monomorphized per associativity:
    /// each set is one `u64` of `A` 16-bit way entries (full key, never
    /// zero when valid), ordered newest-first — recency order for LRU,
    /// fill order for FIFO. The order *is* the replacement state:
    ///
    /// * **probe** — splat the key and SWAR-compare; a match is a hit with
    ///   no confirming load (entries are exact);
    /// * **LRU hit** — move the matched entry to slot 0 with three masks
    ///   and a shift;
    /// * **FIFO hit** — nothing: fill order is untouched by hits;
    /// * **miss** — the victim is whatever 16-bit entry falls off the top
    ///   of `(word << 16) | key`; a zero entry was an invalid way (no
    ///   eviction). No stamp scan, no invalid-way scan.
    ///
    /// Words are rebuilt from the canonical `keys`/`stamps` arrays at scan
    /// start (sorting each set's ways newest-first) and written back at
    /// scan end: slot `i` becomes way `i` with stamp `clock − i`. Ways are
    /// interchangeable — sets carry no way identity, only membership and
    /// stamp *order*, both of which the write-back preserves exactly — so
    /// a later scalar scan, digest scan, or rebuilt exact scan continues
    /// bit-identically.
    fn run_read_lines_exact<const A: usize>(
        &mut self,
        lines: &[u64],
        word_scratch: &mut Vec<u64>,
        fill_scratch: &mut Vec<u64>,
        out: &mut BulkReadOutcome,
    ) {
        debug_assert_eq!(A, self.config.assoc());
        let set_mask = self.set_mask;
        let sets_shift = self.sets_shift;
        let line_shift = self.line_shift;
        let sets = self.config.num_sets();
        let is_lru = self.config.replacement == Replacement::Lru;
        let word_mask: u64 = if 16 * A == 64 {
            u64::MAX
        } else {
            (1u64 << (16 * A)) - 1
        };

        word_scratch.clear();
        word_scratch.resize(sets, 0);
        for (s, word) in word_scratch.iter_mut().enumerate() {
            let base = s * A;
            // Newest-first insertion sort of the set's valid ways; invalid
            // ways (key 0) have stamp 0 and sink to the top slots as zero
            // entries. Valid stamps are ≥ 1 and unique within a set.
            let mut order: [(u64, u64); A] = [(0, 0); A];
            for j in 0..A {
                let entry = (self.stamps[base + j], self.keys[base + j]);
                let mut k = j;
                while k > 0 && order[k - 1].0 < entry.0 {
                    order[k] = order[k - 1];
                    k -= 1;
                }
                order[k] = entry;
            }
            for (i, &(_, key)) in order.iter().enumerate() {
                *word |= key << (16 * i);
            }
        }

        let words = &mut word_scratch[..];
        let idx_mask = words.len() - 1;
        let fills_before = fill_scratch.len();
        for &line in lines {
            let set = (line & set_mask) as usize & idx_mask;
            let key = ((line >> sets_shift) << 1) | 1;
            let w = words[set];
            let x = w ^ (key * EXACT16_LO);
            let zeros = x.wrapping_sub(EXACT16_LO) & !x & EXACT16_HI & word_mask;
            if zeros != 0 {
                // Slot 0 is already MRU — skip the reorder store so the
                // next probe of this set needs no forwarded load.
                if is_lru && zeros & 0x8000 == 0 {
                    let slot = (zeros.trailing_zeros() / 16) as usize;
                    let below = (1u64 << (16 * slot)) - 1;
                    words[set] = (w & !((below << 16) | 0xffff)) | ((w & below) << 16) | key;
                }
                continue;
            }
            let evicted = (w >> (16 * (A - 1))) & 0xffff;
            out.evictions += u64::from(evicted != 0);
            words[set] = ((w << 16) & word_mask) | key;
            fill_scratch.push(line << line_shift);
        }
        // Hits are the complement of the misses this scan appended.
        out.hits += (lines.len() - (fill_scratch.len() - fills_before)) as u64;

        // Write back: slot i → way i. `clock − i` keeps newest-first stamp
        // order; a set's valid slots never outnumber its accesses, so
        // valid stamps stay ≥ 1 and future fills (stamped > clock) stay
        // newest.
        self.clock += lines.len() as u64;
        for (s, &word) in word_scratch.iter().enumerate() {
            let base = s * A;
            for i in 0..A {
                let key = (word >> (16 * i)) & 0xffff;
                self.keys[base + i] = key;
                self.stamps[base + i] = if key == 0 { 0 } else { self.clock - i as u64 };
            }
        }
    }

    /// [`run_read_lines_exact`](Self::run_read_lines_exact) for 8-way
    /// sets: the recency sequence spans a *pair* of u64 words — `lo`
    /// holds slots 0–3 (newest first), `hi` slots 4–7 — kept as two
    /// plain u64s rather than one u128 so every store forwards cleanly
    /// to the next probe of the same set. A miss shifts both words with
    /// `lo`'s top entry carrying into `hi`; an LRU hit in `hi` removes
    /// the entry there and pushes `lo`'s top entry down as it reinserts
    /// the key at slot 0.
    fn run_read_lines_exact8(
        &mut self,
        lines: &[u64],
        word_scratch: &mut Vec<u64>,
        fill_scratch: &mut Vec<u64>,
        out: &mut BulkReadOutcome,
    ) {
        const A: usize = 8;
        debug_assert_eq!(A, self.config.assoc());
        let set_mask = self.set_mask;
        let sets_shift = self.sets_shift;
        let line_shift = self.line_shift;
        let sets = self.config.num_sets();
        let is_lru = self.config.replacement == Replacement::Lru;

        word_scratch.clear();
        word_scratch.resize(sets * 2, 0);
        for s in 0..sets {
            let base = s * A;
            let mut order: [(u64, u64); A] = [(0, 0); A];
            for j in 0..A {
                let entry = (self.stamps[base + j], self.keys[base + j]);
                let mut k = j;
                while k > 0 && order[k - 1].0 < entry.0 {
                    order[k] = order[k - 1];
                    k -= 1;
                }
                order[k] = entry;
            }
            for (i, &(_, key)) in order.iter().enumerate() {
                word_scratch[s * 2 + i / 4] |= key << (16 * (i % 4));
            }
        }

        let words = &mut word_scratch[..];
        let idx_mask = words.len() / 2 - 1;
        let fills_before = fill_scratch.len();
        for &line in lines {
            let set = (line & set_mask) as usize & idx_mask;
            let key = ((line >> sets_shift) << 1) | 1;
            let lo = words[set * 2];
            let hi = words[set * 2 + 1];
            let splat = key * EXACT16_LO;
            let xl = lo ^ splat;
            let zl = xl.wrapping_sub(EXACT16_LO) & !xl & EXACT16_HI;
            if zl != 0 {
                // Slot 0 is already MRU — skip the reorder store so the
                // next probe of this set needs no forwarded load.
                if is_lru && zl & 0x8000 == 0 {
                    let slot = (zl.trailing_zeros() / 16) as usize;
                    let below = (1u64 << (16 * slot)) - 1;
                    words[set * 2] = (lo & !((below << 16) | 0xffff)) | ((lo & below) << 16) | key;
                }
                continue;
            }
            let xh = hi ^ splat;
            let zh = xh.wrapping_sub(EXACT16_LO) & !xh & EXACT16_HI;
            if zh != 0 {
                if is_lru {
                    let slot = (zh.trailing_zeros() / 16) as usize;
                    let below = (1u64 << (16 * slot)) - 1;
                    // The key leaves `hi`; lo's oldest entry slides down
                    // into hi's slot 0 as the key re-enters lo at slot 0.
                    words[set * 2 + 1] =
                        (hi & !((below << 16) | 0xffff)) | ((hi & below) << 16) | (lo >> 48);
                    words[set * 2] = (lo << 16) | key;
                }
                continue;
            }
            let evicted = hi >> 48;
            out.evictions += u64::from(evicted != 0);
            words[set * 2 + 1] = (hi << 16) | (lo >> 48);
            words[set * 2] = (lo << 16) | key;
            fill_scratch.push(line << line_shift);
        }
        out.hits += (lines.len() - (fill_scratch.len() - fills_before)) as u64;

        self.clock += lines.len() as u64;
        for s in 0..sets {
            let base = s * A;
            for i in 0..A {
                let key = (word_scratch[s * 2 + i / 4] >> (16 * (i % 4))) & 0xffff;
                self.keys[base + i] = key;
                self.stamps[base + i] = if key == 0 { 0 } else { self.clock - i as u64 };
            }
        }
    }

    /// Set-associative bulk scan, monomorphized per associativity: each
    /// set's ways pack into
    /// one SWAR digest word (8 bits per way: valid marker + 7 tag bits),
    /// rebuilt from the canonical arrays once per call, so a probe is one
    /// load plus bitwise compares instead of eight key loads.
    fn run_read_lines_swar<const A: usize>(
        &mut self,
        lines: &[u64],
        digest_scratch: &mut Vec<u64>,
        fill_scratch: &mut Vec<u64>,
        out: &mut BulkReadOutcome,
    ) {
        let assoc = A;
        debug_assert_eq!(assoc, self.config.assoc());
        let set_mask = self.set_mask;
        let sets_shift = self.sets_shift;
        let line_shift = self.line_shift;
        let sets = self.config.num_sets();
        digest_scratch.clear();
        digest_scratch.resize(sets, 0);
        for (s, word) in digest_scratch.iter_mut().enumerate() {
            let base = s * assoc;
            for j in 0..assoc {
                let k = self.keys[base + j];
                if k != 0 {
                    *word |= digest_byte(k) << (8 * j);
                }
            }
        }

        let is_lru = self.config.replacement == Replacement::Lru;
        let keys = &mut self.keys[..];
        let stamps = &mut self.stamps[..];
        let digests = &mut digest_scratch[..];
        let idx_mask = digests.len() - 1;
        let mut clock = self.clock;
        for &line in lines {
            clock += 1;
            let set = (line & set_mask) as usize & idx_mask;
            let key = ((line >> sets_shift) << 1) | 1;
            let base = set * assoc;
            let d = digests[set];
            // Splat the probe byte across all 8 lanes; zero bytes of the
            // XOR mark candidate ways (7-bit digest collisions are
            // resolved against the full key).
            let x = d ^ (digest_byte(key) * SWAR_LO);
            let mut zeros = x.wrapping_sub(SWAR_LO) & !x & SWAR_HI;
            let mut hit = false;
            while zeros != 0 {
                let j = (zeros.trailing_zeros() / 8) as usize;
                if keys[base + j] == key {
                    if is_lru {
                        stamps[base + j] = clock;
                    }
                    hit = true;
                    break;
                }
                zeros &= zeros - 1;
            }
            if hit {
                out.hits += 1;
                continue;
            }
            // Miss: first invalid way (a clear 0x80 bit), else the
            // stamp-minimal way — identical victim choice to the scalar
            // path for LRU and FIFO.
            let invalid = !d & SWAR_HI & ((1u128 << (8 * A)) - 1) as u64;
            let victim = if invalid != 0 {
                (invalid.trailing_zeros() / 8) as usize
            } else {
                out.evictions += 1;
                let mut v = 0;
                let mut best = stamps[base];
                for j in 1..assoc {
                    if stamps[base + j] < best {
                        best = stamps[base + j];
                        v = j;
                    }
                }
                v
            };
            keys[base + victim] = key;
            stamps[base + victim] = clock;
            digests[set] = (d & !(0xffu64 << (8 * victim))) | (digest_byte(key) << (8 * victim));
            fill_scratch.push(line << line_shift);
        }
        self.clock = clock;
    }

    /// True if the line containing `addr` is currently cached (no state
    /// change — useful in tests and in the conflict-miss classifier).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let key = ((line_addr >> self.sets_shift) << 1) | 1;
        let base = set_idx * self.config.assoc();
        self.keys[base..base + self.config.assoc()].contains(&key)
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.keys.iter().filter(|&&k| k != 0).count()
    }
}

/// Counters accumulated by one [`Cache::run_read_lines`] scan. Read
/// totals are a property of the stream and stay with the caller.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct BulkReadOutcome {
    pub hits: u64,
    pub fills: u64,
    pub evictions: u64,
}

/// `0x01` repeated — the SWAR splat multiplier.
const SWAR_LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` repeated — the SWAR high-bit mask.
const SWAR_HI: u64 = 0x8080_8080_8080_8080;
/// `0x0001` repeated per 16-bit lane — the exact-key splat multiplier.
const EXACT16_LO: u64 = 0x0001_0001_0001_0001;
/// `0x8000` repeated per 16-bit lane — the exact-key high-bit mask.
const EXACT16_HI: u64 = 0x8000_8000_8000_8000;

/// One way's 8-bit digest: valid marker plus the low 7 tag bits. Never
/// zero for a valid way, so it cannot collide with an empty digest byte.
#[inline]
fn digest_byte(key: u64) -> u64 {
    0x80 | ((key >> 1) & 0x7f)
}

/// Walks the PLRU tree from the root, flipping the bits along the path to
/// point *away* from `way`, marking it most-recently used.
fn touch_plru(bits: &mut u64, way: usize, assoc: usize) {
    debug_assert!(assoc.is_power_of_two());
    let mut node = 0usize; // root
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let go_right = way >= mid;
        // Bit semantics: 0 = victim on the left, 1 = victim on the right.
        // Point the victim pointer at the *other* half.
        if go_right {
            *bits &= !(1 << node);
            lo = mid;
            node = 2 * node + 2;
        } else {
            *bits |= 1 << node;
            hi = mid;
            node = 2 * node + 1;
        }
    }
}

/// Follows the PLRU victim pointers from the root to a leaf.
fn plru_victim(bits: u64, assoc: usize) -> usize {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bits & (1 << node) != 0 {
            lo = mid;
            node = 2 * node + 2;
        } else {
            hi = mid;
            node = 2 * node + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Replacement, WritePolicy};

    fn cache(size: usize, line: usize, assoc: usize) -> Cache {
        Cache::new(CacheConfig::new(size, line, assoc).unwrap())
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = cache(64, 8, 1);
        assert!(!c.read(0x10).hit);
        assert!(c.read(0x17).hit);
        assert!(!c.read(0x18).hit);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = cache(64, 8, 1); // 8 sets
        assert!(!c.read(0).hit);
        assert!(!c.read(64).hit); // same set 0, evicts
        assert!(!c.read(0).hit); // evicted again
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn two_way_lru_keeps_recently_used() {
        let mut c = cache(32, 8, 2); // 2 sets, addresses 0,16,32 map to set 0
        c.read(0);
        c.read(16);
        c.read(0); // refresh 0
        let out = c.read(32);
        assert_eq!(out.evicted, Some(16));
        assert!(c.contains(0));
        assert!(!c.contains(16));
    }

    #[test]
    fn fifo_evicts_in_fill_order() {
        let cfg = CacheConfig::new(32, 8, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo);
        let mut c = Cache::new(cfg);
        c.read(0);
        c.read(16);
        c.read(0); // does NOT refresh under FIFO
        let out = c.read(32);
        assert_eq!(out.evicted, Some(0));
    }

    #[test]
    fn plru_four_way_behaves_sanely() {
        let cfg = CacheConfig::new(32, 8, 4)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for a in [0u64, 32, 64, 96] {
            assert!(!c.read(a).hit);
        }
        // All four resident; a fifth distinct line evicts exactly one.
        let out = c.read(128);
        assert!(out.evicted.is_some());
        assert_eq!(c.valid_lines(), 4);
        // The most recently touched line (96) must survive one eviction
        // under tree-PLRU.
        assert!(c.contains(128));
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let cfg = CacheConfig::new(64, 8, 8)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for i in 0..8u64 {
            c.read(i * 64);
        }
        for i in 8..64u64 {
            let just_read = i * 64;
            let out = c.read(just_read);
            assert_ne!(out.evicted, Some(just_read));
            assert!(c.contains(just_read));
        }
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = CacheConfig::new(32, 8, 4)
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let mut c = Cache::new(cfg);
            let mut evictions = Vec::new();
            for i in 0..64u64 {
                if let Some(e) = c.read(i * 8 % 512).evicted {
                    evictions.push(e);
                }
            }
            evictions
        };
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    fn writeback_marks_dirty_and_writes_back() {
        let mut c = cache(16, 8, 1); // 2 sets
        c.write(0);
        let out = c.read(16); // set 0 conflict, dirty victim
        assert_eq!(out.writeback, Some(0));
        assert_eq!(out.evicted, Some(0));
        let out2 = c.read(32); // clean victim now
        assert_eq!(out2.writeback, None);
        assert_eq!(out2.evicted, Some(16));
    }

    #[test]
    fn write_through_does_not_allocate() {
        let cfg = CacheConfig::new(16, 8, 1)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(cfg);
        assert!(!c.write(0).hit);
        assert!(!c.contains(0));
        c.read(0);
        assert!(c.write(0).hit); // write hits update in place
        let out = c.read(16);
        assert_eq!(out.writeback, None); // never dirty
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut c = cache(64, 8, 2);
        c.read(0);
        c.read(64);
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.read(0).hit);
    }

    #[test]
    fn fill_reports_line_base() {
        let mut c = cache(64, 16, 1);
        let out = c.read(0x23);
        assert_eq!(out.fill, Some(0x20));
    }

    #[test]
    fn evicted_address_round_trips() {
        let mut c = cache(64, 8, 1); // 8 sets
        c.read(8 * 3 + 64 * 5); // set 3, tag 5
        let out = c.read(8 * 3 + 64 * 9); // same set, different tag
        assert_eq!(out.evicted, Some(8 * 3 + 64 * 5));
    }

    #[test]
    fn fully_associative_no_conflict_misses() {
        let mut c = Cache::new(CacheConfig::fully_associative(64, 8).unwrap());
        // 8 lines with addresses that would all collide direct-mapped.
        for i in 0..8u64 {
            assert!(!c.read(i * 64).hit);
        }
        for i in 0..8u64 {
            assert!(c.read(i * 64).hit, "line {i} should still be resident");
        }
    }
}
