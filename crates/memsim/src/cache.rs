//! The cache proper: sets, ways, and replacement state.

use crate::config::{CacheConfig, Replacement, WritePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The result of a single line access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Line-aligned address of a dirty line written back to memory, if any.
    pub writeback: Option<u64>,
    /// Line-aligned address of the line brought in from memory, if any
    /// (`None` on hits and on write-through misses without allocation).
    pub fill: Option<u64>,
    /// Line-aligned address evicted to make room (clean or dirty), if any.
    pub evicted: Option<u64>,
}

/// A set-associative cache with pluggable replacement and write policies.
///
/// Addresses are byte addresses; the cache tracks presence per line. Data
/// contents are not modelled — this is a performance/energy simulator, not a
/// functional one.
///
/// # Example
///
/// ```
/// use memsim::{Cache, CacheConfig, Replacement};
///
/// let cfg = CacheConfig::new(32, 8, 2)?.with_replacement(Replacement::Lru);
/// let mut cache = Cache::new(cfg);
/// cache.read(0);
/// cache.read(32);   // same set, second way
/// cache.read(0);    // LRU refresh
/// let out = cache.read(64); // evicts line 32, not line 0
/// assert_eq!(out.evicted, Some(32));
/// assert!(cache.read(0).hit);
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Tag keys, set-major: set `s` owns `keys[s * assoc..(s + 1) * assoc]`.
    /// A valid way stores `(tag << 1) | 1`; an invalid way stores `0`. The
    /// tag is `addr >> (line_shift + sets_shift)`, which leaves the marker
    /// bit free whenever the cache maps more than one byte per set
    /// (debug-asserted in [`access_line`](Self::access_line)). Keeping the
    /// probe loop on a flat `u64` array — tags only, no replacement
    /// metadata interleaved — is what makes `access` cheap: it is the
    /// inner loop of every sweep.
    keys: Vec<u64>,
    /// Monotonic counter value at last *use* (LRU) or at *fill* (FIFO),
    /// parallel to `keys`; only read for valid ways.
    stamps: Vec<u64>,
    /// Dirty flags, parallel to `keys`.
    dirty: Vec<bool>,
    /// Tree-PLRU direction bits (bit per internal node), one word per set,
    /// used when the policy is [`Replacement::Plru`].
    plru_bits: Vec<u64>,
    /// `line.trailing_zeros()` — precomputed, the geometry is validated.
    line_shift: u32,
    /// `num_sets.trailing_zeros()` — shift between line number and tag.
    sets_shift: u32,
    /// `num_sets - 1` — mask from line number to set index.
    set_mask: u64,
    clock: u64,
    rng: Option<StdRng>,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let rng = match config.replacement {
            Replacement::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };
        let lines = config.num_sets() * config.assoc();
        Cache {
            line_shift: config.line().trailing_zeros(),
            sets_shift: config.num_sets().trailing_zeros(),
            set_mask: config.num_sets() as u64 - 1,
            config,
            keys: vec![0; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            plru_bits: vec![0; config.num_sets()],
            clock: 0,
            rng,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// `line.trailing_zeros()` — the shift from byte address to line number.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Invalidates every line, returning the cache to its initial state.
    pub fn flush(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = 0);
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.plru_bits.iter_mut().for_each(|b| *b = 0);
        self.clock = 0;
    }

    /// Reads the line containing `addr`.
    pub fn read(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, false)
    }

    /// Writes the line containing `addr`.
    pub fn write(&mut self, addr: u64) -> AccessOutcome {
        self.access(addr, true)
    }

    /// Performs one line access. Multi-byte accesses that span a line
    /// boundary must be split by the caller (see
    /// [`Simulator`](crate::sim::Simulator), which does this).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.access_line(addr >> self.line_shift, is_write)
    }

    /// Performs one access by line number (`addr >> line_shift`). This is
    /// the core of [`access`](Self::access); the fused
    /// [`ReplayBank`](crate::ReplayBank) calls it directly with line
    /// numbers precomputed once per line-size class.
    pub fn access_line(&mut self, line_addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.sets_shift;
        debug_assert!(tag <= u64::MAX >> 1, "tag must leave the marker bit free");
        let key = (tag << 1) | 1;
        let assoc = self.config.assoc();
        let replacement = self.config.replacement;
        let write_policy = self.config.write_policy;
        let clock = self.clock;

        let base = set_idx * assoc;
        let set = &self.keys[base..base + assoc];

        // Hit path.
        if let Some(way_idx) = set.iter().position(|&k| k == key) {
            if replacement == Replacement::Lru {
                self.stamps[base + way_idx] = clock;
            }
            if is_write && write_policy == WritePolicy::WriteBackAllocate {
                self.dirty[base + way_idx] = true;
            }
            if replacement == Replacement::Plru {
                touch_plru(&mut self.plru_bits[set_idx], way_idx, assoc);
            }
            return AccessOutcome {
                hit: true,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Miss path.
        if is_write && write_policy == WritePolicy::WriteThroughNoAllocate {
            // Write goes straight to memory; nothing is allocated.
            return AccessOutcome {
                hit: false,
                writeback: None,
                fill: None,
                evicted: None,
            };
        }

        // Choose a victim way: first invalid way, else per policy.
        let victim_idx = match set.iter().position(|&k| k == 0) {
            Some(idx) => idx,
            None => match replacement {
                Replacement::Lru | Replacement::Fifo => self.stamps[base..base + assoc]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| s)
                    .map(|(i, _)| i)
                    .expect("associativity is at least 1"),
                Replacement::Plru => plru_victim(self.plru_bits[set_idx], assoc),
                Replacement::Random { .. } => self
                    .rng
                    .as_mut()
                    .expect("random policy always has an rng")
                    .gen_range(0..assoc),
            },
        };

        let victim = base + victim_idx;
        let old_key = self.keys[victim];
        let (writeback, evicted) = if old_key != 0 {
            let evicted_line = ((old_key >> 1) << self.sets_shift) | set_idx as u64;
            let evicted_base = evicted_line << self.line_shift;
            (
                self.dirty[victim].then_some(evicted_base),
                Some(evicted_base),
            )
        } else {
            (None, None)
        };

        self.keys[victim] = key;
        self.stamps[victim] = clock;
        self.dirty[victim] = is_write && write_policy == WritePolicy::WriteBackAllocate;
        if replacement == Replacement::Plru {
            touch_plru(&mut self.plru_bits[set_idx], victim_idx, assoc);
        }

        AccessOutcome {
            hit: false,
            writeback,
            fill: Some(line_addr << self.line_shift),
            evicted,
        }
    }

    /// True if the line containing `addr` is currently cached (no state
    /// change — useful in tests and in the conflict-miss classifier).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let key = ((line_addr >> self.sets_shift) << 1) | 1;
        let base = set_idx * self.config.assoc();
        self.keys[base..base + self.config.assoc()].contains(&key)
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.keys.iter().filter(|&&k| k != 0).count()
    }
}

/// Walks the PLRU tree from the root, flipping the bits along the path to
/// point *away* from `way`, marking it most-recently used.
fn touch_plru(bits: &mut u64, way: usize, assoc: usize) {
    debug_assert!(assoc.is_power_of_two());
    let mut node = 0usize; // root
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let go_right = way >= mid;
        // Bit semantics: 0 = victim on the left, 1 = victim on the right.
        // Point the victim pointer at the *other* half.
        if go_right {
            *bits &= !(1 << node);
            lo = mid;
            node = 2 * node + 2;
        } else {
            *bits |= 1 << node;
            hi = mid;
            node = 2 * node + 1;
        }
    }
}

/// Follows the PLRU victim pointers from the root to a leaf.
fn plru_victim(bits: u64, assoc: usize) -> usize {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if bits & (1 << node) != 0 {
            lo = mid;
            node = 2 * node + 2;
        } else {
            hi = mid;
            node = 2 * node + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Replacement, WritePolicy};

    fn cache(size: usize, line: usize, assoc: usize) -> Cache {
        Cache::new(CacheConfig::new(size, line, assoc).unwrap())
    }

    #[test]
    fn cold_miss_then_hit_within_line() {
        let mut c = cache(64, 8, 1);
        assert!(!c.read(0x10).hit);
        assert!(c.read(0x17).hit);
        assert!(!c.read(0x18).hit);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = cache(64, 8, 1); // 8 sets
        assert!(!c.read(0).hit);
        assert!(!c.read(64).hit); // same set 0, evicts
        assert!(!c.read(0).hit); // evicted again
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn two_way_lru_keeps_recently_used() {
        let mut c = cache(32, 8, 2); // 2 sets, addresses 0,16,32 map to set 0
        c.read(0);
        c.read(16);
        c.read(0); // refresh 0
        let out = c.read(32);
        assert_eq!(out.evicted, Some(16));
        assert!(c.contains(0));
        assert!(!c.contains(16));
    }

    #[test]
    fn fifo_evicts_in_fill_order() {
        let cfg = CacheConfig::new(32, 8, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo);
        let mut c = Cache::new(cfg);
        c.read(0);
        c.read(16);
        c.read(0); // does NOT refresh under FIFO
        let out = c.read(32);
        assert_eq!(out.evicted, Some(0));
    }

    #[test]
    fn plru_four_way_behaves_sanely() {
        let cfg = CacheConfig::new(32, 8, 4)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for a in [0u64, 32, 64, 96] {
            assert!(!c.read(a).hit);
        }
        // All four resident; a fifth distinct line evicts exactly one.
        let out = c.read(128);
        assert!(out.evicted.is_some());
        assert_eq!(c.valid_lines(), 4);
        // The most recently touched line (96) must survive one eviction
        // under tree-PLRU.
        assert!(c.contains(128));
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let cfg = CacheConfig::new(64, 8, 8)
            .unwrap()
            .with_replacement(Replacement::Plru);
        let mut c = Cache::new(cfg);
        for i in 0..8u64 {
            c.read(i * 64);
        }
        for i in 8..64u64 {
            let just_read = i * 64;
            let out = c.read(just_read);
            assert_ne!(out.evicted, Some(just_read));
            assert!(c.contains(just_read));
        }
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let mk = |seed| {
            let cfg = CacheConfig::new(32, 8, 4)
                .unwrap()
                .with_replacement(Replacement::Random { seed });
            let mut c = Cache::new(cfg);
            let mut evictions = Vec::new();
            for i in 0..64u64 {
                if let Some(e) = c.read(i * 8 % 512).evicted {
                    evictions.push(e);
                }
            }
            evictions
        };
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    fn writeback_marks_dirty_and_writes_back() {
        let mut c = cache(16, 8, 1); // 2 sets
        c.write(0);
        let out = c.read(16); // set 0 conflict, dirty victim
        assert_eq!(out.writeback, Some(0));
        assert_eq!(out.evicted, Some(0));
        let out2 = c.read(32); // clean victim now
        assert_eq!(out2.writeback, None);
        assert_eq!(out2.evicted, Some(16));
    }

    #[test]
    fn write_through_does_not_allocate() {
        let cfg = CacheConfig::new(16, 8, 1)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(cfg);
        assert!(!c.write(0).hit);
        assert!(!c.contains(0));
        c.read(0);
        assert!(c.write(0).hit); // write hits update in place
        let out = c.read(16);
        assert_eq!(out.writeback, None); // never dirty
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut c = cache(64, 8, 2);
        c.read(0);
        c.read(64);
        assert!(c.valid_lines() > 0);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.read(0).hit);
    }

    #[test]
    fn fill_reports_line_base() {
        let mut c = cache(64, 16, 1);
        let out = c.read(0x23);
        assert_eq!(out.fill, Some(0x20));
    }

    #[test]
    fn evicted_address_round_trips() {
        let mut c = cache(64, 8, 1); // 8 sets
        c.read(8 * 3 + 64 * 5); // set 3, tag 5
        let out = c.read(8 * 3 + 64 * 9); // same set, different tag
        assert_eq!(out.evicted, Some(8 * 3 + 64 * 5));
    }

    #[test]
    fn fully_associative_no_conflict_misses() {
        let mut c = Cache::new(CacheConfig::fully_associative(64, 8).unwrap());
        // 8 lines with addresses that would all collide direct-mapped.
        for i in 0..8u64 {
            assert!(!c.read(i * 64).hit);
        }
        for i in 0..8u64 {
            assert!(c.read(i * 64).hit, "line {i} should still be resident");
        }
    }
}
