//! Chunked trace sources: the streaming side of the replay layer.
//!
//! Every sweep engine used to assume a fully materialized
//! `&[TraceEvent]` slice. A [`TraceSource`] instead hands out
//! fixed-capacity chunks of events on demand, so a multi-GB Dinero
//! `.din` trace can be swept with peak memory bounded by
//! O(chunk × concurrent readers) rather than O(trace). Three
//! implementations cover the system's workloads:
//!
//! * [`SliceSource`] — an in-memory slice (arena traces), chunked by
//!   subslicing; the zero-cost adapter for the existing path,
//! * [`DinSource`] — a buffered, incrementally parsed `.din` reader
//!   with typed I/O and parse errors ([`TraceSourceError`]),
//! * [`IterSource`] — any event iterator (e.g. `loopir::TraceGen`
//!   mapped to events) without an intermediate collect.
//!
//! Chunking is *protocol-invariant*: replaying the chunks of any source
//! through [`ReplayBank::feed`](crate::ReplayBank::feed) /
//! [`finish`](crate::ReplayBank::finish) produces counters bit-identical
//! to one whole-slice scan, for every chunk capacity ≥ 1 (lane state and
//! the shared CPU buses persist across `run_slice` calls — see
//! `ReplayBank::run_slice_ticked`, which has relied on this invariant
//! since the fused engine landed).
//!
//! A [`TraceFingerprint`] accumulates a streaming 128-bit FNV-1a hash
//! over the event bytes plus an exact event count, giving external
//! traces a stable content address (used by the `memx serve` result
//! cache in place of kernel IR) without a second pass.

use crate::din::{parse_din_line, DinLabel, ParseDinError};
use crate::sim::TraceEvent;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Default events per chunk (64 Ki events ≈ 1 MiB of `TraceEvent`s):
/// large enough that per-chunk overhead vanishes against replay cost,
/// small enough that a worker's resident buffer stays around a megabyte.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 16;

/// A typed failure while pulling events from a source. `Io` and `Parse`
/// both carry the originating path (or a pseudo-path label for in-memory
/// readers) so CLI layers can surface `file:line`-quality diagnostics and
/// map the failure to the bad-input exit code.
#[derive(Debug)]
pub enum TraceSourceError {
    /// The underlying reader failed.
    Io {
        /// Path (or label) of the source.
        path: String,
        /// The I/O error.
        error: io::Error,
    },
    /// A `.din` line failed to parse.
    Parse {
        /// Path (or label) of the source.
        path: String,
        /// The parse error, with its 1-based line number.
        error: ParseDinError,
    },
}

impl fmt::Display for TraceSourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSourceError::Io { path, error } => write!(f, "{path}: {error}"),
            TraceSourceError::Parse { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for TraceSourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceSourceError::Io { error, .. } => Some(error),
            TraceSourceError::Parse { error, .. } => Some(error),
        }
    }
}

/// An incremental producer of trace-event chunks.
///
/// The protocol: each [`fill`](Self::fill) call clears `buf`, appends up
/// to `capacity` events, and returns how many it appended; `Ok(0)` means
/// the source is exhausted (and stays exhausted). After an `Err` the
/// source is poisoned — no events were leaked into `buf` beyond the ones
/// already reported by *earlier* successful fills, and callers must not
/// keep pulling.
pub trait TraceSource {
    /// Pulls the next chunk. See the trait docs for the contract.
    ///
    /// # Errors
    ///
    /// A typed [`TraceSourceError`] on I/O failure or malformed input.
    fn fill(
        &mut self,
        buf: &mut Vec<TraceEvent>,
        capacity: usize,
    ) -> Result<usize, TraceSourceError>;
}

/// A materialized slice served in chunks (the arena path).
pub struct SliceSource<'a> {
    events: &'a [TraceEvent],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over `events`, starting at the beginning.
    pub fn new(events: &'a [TraceEvent]) -> Self {
        SliceSource { events, pos: 0 }
    }
}

impl TraceSource for SliceSource<'_> {
    fn fill(
        &mut self,
        buf: &mut Vec<TraceEvent>,
        capacity: usize,
    ) -> Result<usize, TraceSourceError> {
        buf.clear();
        let n = capacity.max(1).min(self.events.len() - self.pos);
        buf.extend_from_slice(&self.events[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Any event iterator served in chunks (e.g. direct `loopir::TraceGen`
/// emission, or `memsim::synth` generation without a collect).
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = TraceEvent>> IterSource<I> {
    /// A source draining `iter`.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I: Iterator<Item = TraceEvent>> TraceSource for IterSource<I> {
    fn fill(
        &mut self,
        buf: &mut Vec<TraceEvent>,
        capacity: usize,
    ) -> Result<usize, TraceSourceError> {
        buf.clear();
        buf.extend(self.iter.by_ref().take(capacity.max(1)));
        Ok(buf.len())
    }
}

/// Converts one Dinero record to the replay event convention used
/// throughout: byte-granular accesses (`size` 1), instruction fetches
/// replayed as reads — exactly what `memx simulate-din` has always done,
/// so streamed and materialized `.din` replay agree bit for bit.
pub fn din_event(label: DinLabel, addr: u64) -> TraceEvent {
    TraceEvent {
        addr,
        size: 1,
        is_write: label == DinLabel::Write,
    }
}

/// A buffered, incrementally parsed `.din` reader: multi-GB traces
/// stream through a fixed line buffer plus one chunk buffer, never a
/// whole-file `Vec`. Parsing matches [`crate::din::parse_din`] line for
/// line (blank lines skipped, `0x` prefixes accepted, 1-based line
/// numbers in errors); a malformed line or mid-stream I/O failure
/// surfaces as a typed [`TraceSourceError`] with no partial record
/// leaked into the chunk delivered alongside the error.
#[derive(Debug)]
pub struct DinSource<R> {
    reader: R,
    path: String,
    line_no: usize,
    line: String,
    done: bool,
}

impl DinSource<BufReader<File>> {
    /// Opens a `.din` file for streaming.
    ///
    /// # Errors
    ///
    /// [`TraceSourceError::Io`] if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceSourceError> {
        let path = path.as_ref();
        let label = path.display().to_string();
        let file = File::open(path).map_err(|error| TraceSourceError::Io {
            path: label.clone(),
            error,
        })?;
        Ok(DinSource::from_reader(BufReader::new(file), label))
    }
}

impl<R: BufRead> DinSource<R> {
    /// A source over any buffered reader; `path` labels diagnostics.
    pub fn from_reader(reader: R, path: impl Into<String>) -> Self {
        DinSource {
            reader,
            path: path.into(),
            line_no: 0,
            line: String::new(),
            done: false,
        }
    }
}

impl<R: BufRead> TraceSource for DinSource<R> {
    fn fill(
        &mut self,
        buf: &mut Vec<TraceEvent>,
        capacity: usize,
    ) -> Result<usize, TraceSourceError> {
        buf.clear();
        let capacity = capacity.max(1);
        while !self.done && buf.len() < capacity {
            self.line.clear();
            let n =
                self.reader
                    .read_line(&mut self.line)
                    .map_err(|error| TraceSourceError::Io {
                        path: self.path.clone(),
                        error,
                    })?;
            if n == 0 {
                self.done = true;
                break;
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let record =
                parse_din_line(trimmed, self.line_no).map_err(|error| TraceSourceError::Parse {
                    path: self.path.clone(),
                    error,
                })?;
            buf.push(din_event(record.label, record.addr));
        }
        Ok(buf.len())
    }
}

// FNV-1a, 128-bit — the same constants as the serve cache's content
// addressing (kept local: memsim sits below core in the crate DAG).
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A streaming content fingerprint of a trace: a 128-bit FNV-1a hash
/// over each event's `(addr, size, is_write)` bytes plus an exact event
/// count. Feeding the same events in the same order yields the same
/// fingerprint regardless of chunk boundaries, so any [`TraceSource`]
/// impl over the same content addresses identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFingerprint {
    hash: u128,
    events: u64,
}

impl Default for TraceFingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceFingerprint {
    /// An empty fingerprint (the FNV offset basis, zero events).
    pub fn new() -> Self {
        TraceFingerprint {
            hash: FNV128_OFFSET,
            events: 0,
        }
    }

    /// Absorbs a chunk of events.
    pub fn update(&mut self, chunk: &[TraceEvent]) {
        let mut h = self.hash;
        for e in chunk {
            for b in e.addr.to_le_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            for b in e.size.to_le_bytes() {
                h = (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME);
            }
            h = (h ^ u128::from(u8::from(e.is_write))).wrapping_mul(FNV128_PRIME);
        }
        self.hash = h;
        self.events += chunk.len() as u64;
    }

    /// The 128-bit digest accumulated so far.
    pub fn digest(&self) -> u128 {
        self.hash
    }

    /// Events absorbed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The digest as fixed-width lowercase hex.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.hash)
    }
}

/// Drains a source, computing its fingerprint (the streaming pre-pass
/// that gives an external trace a content address and an event count
/// without materializing it).
///
/// # Errors
///
/// Propagates the source's first [`TraceSourceError`].
pub fn fingerprint_source(
    source: &mut dyn TraceSource,
    chunk_capacity: usize,
) -> Result<TraceFingerprint, TraceSourceError> {
    let mut fp = TraceFingerprint::new();
    let mut buf = Vec::with_capacity(chunk_capacity.max(1));
    while source.fill(&mut buf, chunk_capacity)? > 0 {
        fp.update(&buf);
    }
    Ok(fp)
}

/// Drains a source into one `Vec` — the materialized reference for
/// differential tests (and small inputs where streaming buys nothing).
///
/// # Errors
///
/// Propagates the source's first [`TraceSourceError`].
pub fn collect_source(
    source: &mut dyn TraceSource,
    chunk_capacity: usize,
) -> Result<Vec<TraceEvent>, TraceSourceError> {
    let mut out = Vec::new();
    let mut buf = Vec::with_capacity(chunk_capacity.max(1));
    while source.fill(&mut buf, chunk_capacity)? > 0 {
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::ReplayBank;

    fn stride_events(n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                if i % 5 == 0 {
                    TraceEvent::write(i * 12 % 4096, 4)
                } else {
                    TraceEvent::read(i * 12 % 4096, 4)
                }
            })
            .collect()
    }

    #[test]
    fn slice_source_chunks_cover_the_slice_in_order() {
        let events = stride_events(1000);
        for capacity in [1usize, 7, 64, 1000, 5000] {
            let mut src = SliceSource::new(&events);
            let collected = collect_source(&mut src, capacity).unwrap();
            assert_eq!(collected, events, "capacity {capacity}");
        }
    }

    #[test]
    fn iter_source_matches_slice_source() {
        let events = stride_events(321);
        let mut it = IterSource::new(events.iter().copied());
        assert_eq!(collect_source(&mut it, 10).unwrap(), events);
    }

    #[test]
    fn exhausted_source_keeps_returning_zero() {
        let events = stride_events(3);
        let mut src = SliceSource::new(&events);
        let mut buf = Vec::new();
        assert_eq!(src.fill(&mut buf, 10).unwrap(), 3);
        assert_eq!(src.fill(&mut buf, 10).unwrap(), 0);
        assert_eq!(src.fill(&mut buf, 10).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn din_source_matches_materialized_parser() {
        let text = "0 40\n\n1 0x80\n2 100\n0 deadbeef\n";
        let mut src = DinSource::from_reader(text.as_bytes(), "<mem>");
        let streamed = collect_source(&mut src, 2).unwrap();
        let records = crate::din::parse_din(text.as_bytes()).unwrap();
        let materialized: Vec<TraceEvent> =
            records.iter().map(|r| din_event(r.label, r.addr)).collect();
        assert_eq!(streamed, materialized);
        assert_eq!(streamed[1], TraceEvent::write(0x80, 1));
        assert_eq!(streamed[2], TraceEvent::read(0x100, 1)); // ifetch → read
    }

    #[test]
    fn din_source_reports_typed_parse_errors_without_leaking_records() {
        let text = "0 40\n0 41\nbogus line here\n0 42\n";
        let mut src = DinSource::from_reader(text.as_bytes(), "<mem>");
        let mut buf = Vec::new();
        // Capacity larger than the prefix: the error arrives on the fill
        // that would have contained the bad line, with nothing delivered.
        let err = src.fill(&mut buf, 100).unwrap_err();
        match err {
            TraceSourceError::Parse { path, error } => {
                assert_eq!(path, "<mem>");
                assert_eq!(error, ParseDinError::MalformedLine { line: 3 });
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn din_source_error_line_numbers_survive_chunking() {
        let text = "0 40\n0 41\n7 42\n";
        for capacity in [1usize, 2, 3, 100] {
            let mut src = DinSource::from_reader(text.as_bytes(), "t.din");
            let err = collect_source(&mut src, capacity).unwrap_err();
            assert!(
                err.to_string().contains("line 3"),
                "capacity {capacity}: {err}"
            );
        }
    }

    #[test]
    fn open_missing_file_is_a_typed_io_error() {
        let err = DinSource::open("/nonexistent/trace.din").unwrap_err();
        assert!(matches!(err, TraceSourceError::Io { .. }), "{err}");
        assert!(err.to_string().contains("/nonexistent/trace.din"));
    }

    #[test]
    fn fingerprint_is_chunk_invariant_and_content_sensitive() {
        let events = stride_events(777);
        let digests: Vec<TraceFingerprint> = [1usize, 13, 256, 777, 4096]
            .iter()
            .map(|&c| {
                let mut src = SliceSource::new(&events);
                fingerprint_source(&mut src, c).unwrap()
            })
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(digests[0].events(), 777);
        // Any perturbation moves the digest.
        let mut flipped = events.clone();
        flipped[100].is_write = !flipped[100].is_write;
        let mut src = SliceSource::new(&flipped);
        assert_ne!(fingerprint_source(&mut src, 64).unwrap(), digests[0]);
    }

    #[test]
    fn feed_finish_is_bit_identical_to_run_slice() {
        let events = stride_events(2000);
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(128, 16, 2).unwrap(),
        ];
        let mut whole = ReplayBank::new(&configs);
        whole.run_slice(&events);
        let whole = whole.into_reports();
        for capacity in [1usize, 3, 100, 4096] {
            let mut bank = ReplayBank::new(&configs);
            let mut src = SliceSource::new(&events);
            let mut buf = Vec::with_capacity(capacity);
            while src.fill(&mut buf, capacity).unwrap() > 0 {
                bank.feed(&buf);
            }
            let chunked = bank.finish();
            for (a, b) in whole.iter().zip(&chunked) {
                assert_eq!(a.stats, b.stats, "capacity {capacity}");
                assert_eq!(a.cpu_bus, b.cpu_bus, "capacity {capacity}");
                assert_eq!(a.mem_bus, b.mem_bus, "capacity {capacity}");
            }
        }
    }
}
