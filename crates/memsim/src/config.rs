//! Cache configuration and validation.

use std::error::Error;
use std::fmt;

/// Replacement policy for set-associative caches.
///
/// Direct-mapped caches have a single candidate way, so the policy is
/// irrelevant there. The paper's model assumes LRU (the default).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Replacement {
    /// Least-recently-used (exact).
    #[default]
    Lru,
    /// First-in-first-out (fill order).
    Fifo,
    /// Tree-based pseudo-LRU, as in most real embedded caches.
    Plru,
    /// Uniform random victim with a deterministic seed.
    Random {
        /// Seed for the per-cache PRNG, so runs are reproducible.
        seed: u64,
    },
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replacement::Lru => write!(f, "LRU"),
            Replacement::Fifo => write!(f, "FIFO"),
            Replacement::Plru => write!(f, "PLRU"),
            Replacement::Random { seed } => write!(f, "random(seed={seed})"),
        }
    }
}

/// Write-handling policy.
///
/// The paper considers read energy only, but the simulator substrate stays
/// general.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate (default; matches embedded D-caches).
    #[default]
    WriteBackAllocate,
    /// Write-through with no-write-allocate.
    WriteThroughNoAllocate,
}

/// Errors returned by [`CacheConfig::new`] and friends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Size, line size, or associativity was zero or not a power of two.
    NotPowerOfTwo {
        /// The offending field name.
        field: &'static str,
        /// The offending value.
        value: usize,
    },
    /// Line size exceeds total size.
    LineLargerThanCache {
        /// Line size in bytes.
        line: usize,
        /// Total size in bytes.
        size: usize,
    },
    /// More ways requested than there are lines.
    TooManyWays {
        /// Requested associativity.
        assoc: usize,
        /// Number of lines (`size / line`).
        lines: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a non-zero power of two, got {value}")
            }
            ConfigError::LineLargerThanCache { line, size } => {
                write!(f, "line size {line} exceeds cache size {size}")
            }
            ConfigError::TooManyWays { assoc, lines } => {
                write!(f, "associativity {assoc} exceeds line count {lines}")
            }
        }
    }
}

impl Error for ConfigError {}

/// A validated cache geometry plus policies.
///
/// Invariants (enforced at construction): `size`, `line`, and `assoc` are
/// powers of two, `line <= size`, and `assoc <= size / line`. A fully
/// associative cache is expressed as `assoc == size / line`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    size: usize,
    line: usize,
    assoc: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Validates and builds a configuration with LRU replacement and
    /// write-back/write-allocate.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any invariant listed on the type fails.
    pub fn new(size: usize, line: usize, assoc: usize) -> Result<Self, ConfigError> {
        for (field, value) in [
            ("cache size", size),
            ("line size", line),
            ("associativity", assoc),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, value });
            }
        }
        if line > size {
            return Err(ConfigError::LineLargerThanCache { line, size });
        }
        let lines = size / line;
        if assoc > lines {
            return Err(ConfigError::TooManyWays { assoc, lines });
        }
        Ok(CacheConfig {
            size,
            line,
            assoc,
            replacement: Replacement::default(),
            write_policy: WritePolicy::default(),
        })
    }

    /// A fully associative configuration of the same capacity.
    pub fn fully_associative(size: usize, line: usize) -> Result<Self, ConfigError> {
        let lines = size / line.max(1);
        Self::new(size, line, lines.max(1))
    }

    /// Replaces the replacement policy (builder-style).
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Replaces the write policy (builder-style).
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Line (block) size in bytes.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Degree of set associativity (ways).
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Number of cache lines (`size / line`).
    pub fn num_lines(&self) -> usize {
        self.size / self.line
    }

    /// Number of sets (`lines / assoc`).
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.assoc
    }

    /// Maps a byte address to `(set index, tag)`.
    pub fn locate(&self, addr: u64) -> (usize, u64) {
        // Geometry is validated power-of-two, so the divisions reduce to
        // shifts — this is the hottest address computation in a sweep.
        let line_shift = self.line.trailing_zeros();
        let sets_shift = self.size.trailing_zeros() - line_shift - self.assoc.trailing_zeros();
        let line_addr = addr >> line_shift;
        let set = (line_addr & ((1u64 << sets_shift) - 1)) as usize;
        let tag = line_addr >> sets_shift;
        (set, tag)
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.line as u64 - 1)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C{}L{}SA{} ({})",
            self.size, self.line, self.assoc, self.replacement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_derives_geometry() {
        let c = CacheConfig::new(64, 8, 2).unwrap();
        assert_eq!(c.num_lines(), 8);
        assert_eq!(c.num_sets(), 4);
    }

    #[test]
    fn locate_splits_set_and_tag() {
        let c = CacheConfig::new(64, 8, 1).unwrap(); // 8 sets
        assert_eq!(c.locate(0), (0, 0));
        assert_eq!(c.locate(8), (1, 0));
        assert_eq!(c.locate(64), (0, 1));
        assert_eq!(c.locate(71), (0, 1));
        assert_eq!(c.line_base(71), 64);
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            CacheConfig::new(48, 8, 1),
            Err(ConfigError::NotPowerOfTwo {
                field: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new(64, 6, 1),
            Err(ConfigError::NotPowerOfTwo {
                field: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new(64, 8, 3),
            Err(ConfigError::NotPowerOfTwo {
                field: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new(0, 8, 1),
            Err(ConfigError::NotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn oversized_line_rejected() {
        assert!(matches!(
            CacheConfig::new(8, 16, 1),
            Err(ConfigError::LineLargerThanCache { .. })
        ));
    }

    #[test]
    fn too_many_ways_rejected() {
        assert!(matches!(
            CacheConfig::new(64, 8, 16),
            Err(ConfigError::TooManyWays { .. })
        ));
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheConfig::fully_associative(64, 8).unwrap();
        assert_eq!(c.num_sets(), 1);
        assert_eq!(c.assoc(), 8);
    }

    #[test]
    fn display_is_compact() {
        let c = CacheConfig::new(64, 8, 2).unwrap();
        assert_eq!(format!("{c}"), "C64L8SA2 (LRU)");
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = CacheConfig::new(48, 8, 1).unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("48"));
        assert!(msg.starts_with("cache size"));
    }
}
