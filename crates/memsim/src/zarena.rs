//! Delta-compressed trace storage for replay.
//!
//! A materialized [`TraceEvent`](crate::TraceEvent) costs 16 bytes; the
//! traces a sweep replays are loop-nest walks. Their address deltas are
//! not merely small — they are nearly **periodic**: a loop body touching
//! several arrays in turn (`A[i][k]`, `B[k][j]`, `C[i][j]`, …) emits the
//! same short cycle of inter-array jumps every iteration, each jump
//! drifting by a constant as row offsets advance. Each block therefore
//! picks a period `K` (1–8, by census) and predicts every delta by
//! linear extrapolation within its phase — `2·d[i−K] − d[i−2K]`, exact
//! for both constant and linearly drifting periodic deltas; only the
//! prediction **residual** is stored — a head byte carrying the store/width-repeat flags plus the
//! low bits of the zigzag residual, with LEB128 continuation bytes for
//! the rare misprediction (and a width varint only when the width
//! changes). Steady-state loop traffic lands at **one byte per event**
//! even when the raw deltas span kilobytes, a 10–16× smaller resident
//! footprint for the sweep's dominant allocations, and the
//! residual-is-zero fast path keeps the decode cost inside the replay
//! loop near the memory-bandwidth floor.
//!
//! The stream is cut into independent blocks of [`BLOCK_EVENTS`] events
//! (the delta predictor resets at each block boundary), so replay decodes
//! one block at a time into a small reusable scratch buffer and feeds it
//! to a [`ReplayBank`](crate::ReplayBank). Bank state persists across
//! `feed` calls, so block-by-block replay is bit-identical to scanning
//! the raw slice (see the bank's chunk-invariance contract).
//!
//! # Example
//!
//! ```
//! use memsim::{CompressedTrace, TraceEvent};
//!
//! let raw: Vec<TraceEvent> = (0..10_000).map(|i| TraceEvent::read(i * 4, 4)).collect();
//! let z = CompressedTrace::encode(&raw);
//! assert_eq!(z.len(), raw.len());
//! assert!(z.compressed_bytes() * 4 < z.raw_bytes());
//! assert_eq!(z.decode(), raw);
//! ```

use crate::sim::TraceEvent;

/// Events per independently decodable block. Sized so the decode scratch
/// (`BLOCK_EVENTS × 16 B = 128 KiB`) stays cache-resident while a bank
/// consumes it, while amortizing each lane's per-block probe-state
/// rebuild over as many events as possible.
pub const BLOCK_EVENTS: usize = 8192;

/// A delta/varint-encoded immutable trace, decodable block by block.
#[derive(Clone, Debug)]
pub struct CompressedTrace {
    /// The encoded byte stream, blocks back to back.
    bytes: Vec<u8>,
    /// Byte offset of each block in [`bytes`](Self::bytes).
    block_starts: Vec<usize>,
    /// Total event count (the last block may be short).
    len: usize,
}

/// `(delta << 1) ^ (delta >> 63)` — small magnitudes of either sign
/// become small unsigned varints.
#[inline]
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

#[inline]
fn unzigzag(coded: u64) -> i64 {
    ((coded >> 1) as i64) ^ -((coded & 1) as i64)
}

#[inline]
fn push_varint(bytes: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        bytes.push((v as u8) | 0x80);
        v >>= 7;
    }
    bytes.push(v as u8);
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Head-byte layout: bit 0 = store, bit 1 = width repeats the previous
/// event's width (no width varint follows), bits 2–6 = low five bits of
/// the zigzag delta residual, bit 7 = residual continuation (LEB128
/// bytes follow with the remaining bits, 7 per byte).
const CTRL_WRITE: u8 = 1;
const CTRL_SAME_SIZE: u8 = 2;
const CTRL_DELTA_SHIFT: u32 = 2;
const CTRL_DELTA_MASK: u64 = 0x1f;
const CTRL_MORE: u8 = 0x80;

/// Largest delta-predictor period a block header may select. Sized to
/// cover not just one loop body's array cycle but a whole inner tile row
/// (tile width × arrays touched per iteration), whose delta sequence
/// repeats verbatim across tile rows.
const MAX_PERIOD: usize = 48;

/// Picks the predictor period for one block: the `K` (1..=[`MAX_PERIOD`])
/// under which linear extrapolation within each phase
/// (`2·d[i−K] − d[i−2K]`) predicts the most deltas exactly. Returns 0 —
/// predict nothing, store raw deltas — when even the best period explains
/// under half the block, so an aperiodic block can never encode worse
/// than plain delta coding.
fn census_period(deltas: &[i64]) -> usize {
    let mut best = (0usize, 0usize);
    for k in 1..=MAX_PERIOD.min(deltas.len() / 2) {
        let matches = (2 * k..deltas.len())
            .filter(|&i| {
                deltas[i]
                    == deltas[i - k]
                        .wrapping_mul(2)
                        .wrapping_sub(deltas[i - 2 * k])
            })
            .count();
        if matches > best.1 {
            best = (k, matches);
        }
    }
    if best.1 * 2 >= deltas.len() {
        best.0
    } else {
        0
    }
}

/// Per-phase linear-extrapolation predictor state: the last two deltas of
/// each of the `K` phases, updated in lockstep by encoder and decoder.
#[derive(Clone, Copy)]
struct Predictor {
    last: [i64; MAX_PERIOD],
    prior: [i64; MAX_PERIOD],
    slot: usize,
    period: usize,
}

impl Predictor {
    #[inline]
    fn new(period: usize) -> Self {
        Predictor {
            last: [0; MAX_PERIOD],
            prior: [0; MAX_PERIOD],
            slot: 0,
            period,
        }
    }

    /// This phase's extrapolated next delta.
    #[inline]
    fn predict(&self) -> i64 {
        self.last[self.slot]
            .wrapping_mul(2)
            .wrapping_sub(self.prior[self.slot])
    }

    /// Records the delta that actually occurred and advances the phase.
    #[inline]
    fn commit(&mut self, delta: i64) {
        self.prior[self.slot] = self.last[self.slot];
        self.last[self.slot] = delta;
        self.slot += 1;
        if self.slot == self.period {
            self.slot = 0;
        }
    }
}

impl CompressedTrace {
    /// Encodes a raw slice. The input is not retained.
    pub fn encode(events: &[TraceEvent]) -> Self {
        let mut bytes = Vec::with_capacity(events.len() * 2);
        let mut block_starts = Vec::with_capacity(events.len() / BLOCK_EVENTS + 1);
        let mut deltas: Vec<i64> = Vec::with_capacity(BLOCK_EVENTS.min(events.len()));
        for block in events.chunks(BLOCK_EVENTS) {
            block_starts.push(bytes.len());
            // The predictor resets per block so blocks decode independently;
            // size 0 is invalid in a TraceEvent, forcing the first event of
            // every block to carry its width explicitly.
            deltas.clear();
            let mut prev_addr = 0u64;
            for e in block {
                deltas.push(e.addr.wrapping_sub(prev_addr) as i64);
                prev_addr = e.addr;
            }
            let period = census_period(&deltas);
            bytes.push(period as u8);
            let mut predictor = Predictor::new(period);
            let mut prev_size = 0u32;
            for (e, &delta) in block.iter().zip(&deltas) {
                let residual = if period == 0 {
                    delta
                } else {
                    let r = delta.wrapping_sub(predictor.predict());
                    predictor.commit(delta);
                    r
                };
                let same_size = e.size == prev_size;
                let z = zigzag(residual);
                let mut head = (u8::from(e.is_write) * CTRL_WRITE)
                    | (u8::from(same_size) * CTRL_SAME_SIZE)
                    | (((z & CTRL_DELTA_MASK) as u8) << CTRL_DELTA_SHIFT);
                let rest = z >> 5;
                if rest != 0 {
                    head |= CTRL_MORE;
                }
                bytes.push(head);
                if rest != 0 {
                    push_varint(&mut bytes, rest);
                }
                if !same_size {
                    push_varint(&mut bytes, u64::from(e.size));
                }
                prev_size = e.size;
            }
        }
        bytes.shrink_to_fit();
        CompressedTrace {
            bytes,
            block_starts,
            len: events.len(),
        }
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resident size of the encoded form in bytes (stream + block table).
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len() + self.block_starts.len() * std::mem::size_of::<usize>()
    }

    /// Size the raw `Vec<TraceEvent>` form would occupy.
    pub fn raw_bytes(&self) -> usize {
        self.len * std::mem::size_of::<TraceEvent>()
    }

    /// Streams the trace through `consume`, one decoded block at a time
    /// (at most [`BLOCK_EVENTS`] events per call), reusing one scratch
    /// buffer for every block.
    pub fn replay(&self, mut consume: impl FnMut(&[TraceEvent])) {
        let mut scratch: Vec<TraceEvent> = Vec::with_capacity(BLOCK_EVENTS.min(self.len));
        let mut remaining = self.len;
        for (b, &start) in self.block_starts.iter().enumerate() {
            let count = remaining.min(BLOCK_EVENTS);
            let end = self
                .block_starts
                .get(b + 1)
                .copied()
                .unwrap_or(self.bytes.len());
            scratch.clear();
            let bytes = &self.bytes[start..end];
            let period = bytes[0] as usize;
            let mut pos = 1usize;
            let mut predictor = Predictor::new(period);
            let mut prev_addr = 0u64;
            let mut prev_size = 0u32;
            for _ in 0..count {
                let head = bytes[pos];
                pos += 1;
                // Fast path: store/width flags and the whole residual live
                // in the head byte — one load, no varint loop — and on
                // steady-state loop traffic the residual is zero.
                let mut z = (u64::from(head) >> CTRL_DELTA_SHIFT) & CTRL_DELTA_MASK;
                if head & CTRL_MORE != 0 {
                    z |= read_varint(bytes, &mut pos) << 5;
                }
                let delta = if period == 0 {
                    unzigzag(z)
                } else {
                    let d = predictor.predict().wrapping_add(unzigzag(z));
                    predictor.commit(d);
                    d
                };
                let addr = prev_addr.wrapping_add(delta as u64);
                let size = if head & CTRL_SAME_SIZE != 0 {
                    prev_size
                } else {
                    read_varint(bytes, &mut pos) as u32
                };
                scratch.push(TraceEvent {
                    addr,
                    size,
                    is_write: head & CTRL_WRITE != 0,
                });
                prev_addr = addr;
                prev_size = size;
            }
            debug_assert_eq!(pos, end - start, "block decoded to its recorded end");
            remaining -= count;
            consume(&scratch);
        }
        debug_assert_eq!(remaining, 0);
    }

    /// Decodes the whole trace into one vector (tests and small traces;
    /// replay paths should stream with [`replay`](Self::replay)).
    pub fn decode(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        self.replay(|block| out.extend_from_slice(block));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_trace(n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                let addr = (i * 12) % 4096 + (i % 7) * 1000;
                if i % 5 == 0 {
                    TraceEvent::write(addr, if i % 3 == 0 { 8 } else { 4 })
                } else {
                    TraceEvent::read(addr, 4)
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_exact() {
        for n in [0u64, 1, 2, 4095, 4096, 4097, 10_000] {
            let raw = mixed_trace(n);
            let z = CompressedTrace::encode(&raw);
            assert_eq!(z.len(), raw.len());
            assert_eq!(z.decode(), raw, "n = {n}");
        }
    }

    #[test]
    fn replay_blocks_cover_the_stream_in_order() {
        let raw = mixed_trace(9000);
        let z = CompressedTrace::encode(&raw);
        let mut seen = Vec::new();
        let mut calls = 0;
        z.replay(|block| {
            assert!(block.len() <= BLOCK_EVENTS);
            seen.extend_from_slice(block);
            calls += 1;
        });
        assert_eq!(seen, raw);
        assert_eq!(calls, raw.len().div_ceil(BLOCK_EVENTS));
    }

    #[test]
    fn strided_reads_compress_well() {
        let raw: Vec<TraceEvent> = (0..100_000u64)
            .map(|i| TraceEvent::read(i * 4, 4))
            .collect();
        let z = CompressedTrace::encode(&raw);
        // Constant stride + constant width: control byte + 1-byte delta.
        assert!(
            z.compressed_bytes() * 4 < z.raw_bytes(),
            "{} vs {}",
            z.compressed_bytes(),
            z.raw_bytes()
        );
    }

    #[test]
    fn large_deltas_and_widths_survive() {
        let raw = vec![
            TraceEvent::read(u64::MAX - 3, 4),
            TraceEvent::read(0, 1),
            TraceEvent::write(1 << 40, 1024),
            TraceEvent::read(3, 4),
        ];
        let z = CompressedTrace::encode(&raw);
        assert_eq!(z.decode(), raw);
    }

    #[test]
    fn empty_trace_is_empty() {
        let z = CompressedTrace::encode(&[]);
        assert!(z.is_empty());
        assert_eq!(z.decode(), Vec::new());
        let mut called = false;
        z.replay(|_| called = true);
        assert!(!called);
    }
}
