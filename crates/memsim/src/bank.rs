//! Fused one-pass replay: a bank of per-design cache states advanced in
//! lockstep over a single scan of a shared trace.
//!
//! Design-space sweeps evaluate many cache configurations against the same
//! immutable event stream (see [`TraceArena`](crate::TraceArena)). Replaying
//! the stream once per configuration makes trace *consumption*
//! O(designs × trace length) even after trace *generation* has been
//! deduplicated. A [`ReplayBank`] instead owns N independent lanes — one
//! [`Cache`] plus its [`CacheStats`] and memory-side bus per design — and
//! steps all of them per event, so the trace is streamed exactly once per
//! bank no matter how many designs consume it.
//!
//! Two pieces of per-event work depend only on the trace and the line size,
//! not on the cache behind it, and are therefore shared across every lane
//! with the same line size (a [`LineClass`]):
//!
//! * the split of a multi-byte access into line-level sub-accesses, and
//! * the processor↔cache address bus, whose switching sequence is a pure
//!   function of the (encoded) sub-access address stream.
//!
//! Lanes with equal line sizes receive bit-identical CPU-bus statistics —
//! exactly what N independent [`Simulator`](crate::Simulator) runs would
//! have produced, since each run would observe the same address sequence
//! from the same idle-bus initial state. Everything else (hit/miss state,
//! replacement metadata, fills, writebacks, the memory-side bus, the
//! optional classifier and line buffer) is private lane state and evolves
//! exactly as in a lone simulator. The single-design [`Simulator`]
//! (crate::Simulator) is itself a bank of one, so there is exactly one
//! stepping code path to test and to trust.
//!
//! # Example
//!
//! ```
//! use memsim::{CacheConfig, ReplayBank, Simulator, TraceEvent};
//!
//! let configs = [CacheConfig::new(64, 8, 1)?, CacheConfig::new(128, 16, 2)?];
//! let trace: Vec<TraceEvent> = (0..64).map(|i| TraceEvent::read(i * 4, 4)).collect();
//!
//! let mut bank = ReplayBank::new(&configs);
//! bank.run_slice(&trace);
//! let fused = bank.into_reports();
//!
//! // Bit-identical to N independent simulations of the same slice.
//! for (config, report) in configs.iter().zip(&fused) {
//!     let lone = Simulator::simulate_slice(*config, &trace);
//!     assert_eq!(lone.stats, report.stats);
//!     assert_eq!(lone.cpu_bus, report.cpu_bus);
//!     assert_eq!(lone.mem_bus, report.mem_bus);
//! }
//! # Ok::<(), memsim::ConfigError>(())
//! ```

use crate::bus::{BusEncoding, BusMonitor, BusStats};
use crate::cache::Cache;
use crate::classify::Classifier;
use crate::config::CacheConfig;
use crate::sim::{SimReport, TraceEvent};
use crate::stats::CacheStats;

/// Per-line-size state shared by every lane with that line size: the
/// current event's line-level sub-accesses and the processor-side address
/// bus (a pure function of the sub-access stream).
#[derive(Clone, Debug)]
struct LineClass {
    /// `line.trailing_zeros()` — the line size is a validated power of two.
    shift: u32,
    cpu_bus: BusMonitor,
    /// Sub-access byte addresses of the event currently being stepped
    /// (scratch, rewritten per event).
    sub_addrs: Vec<u64>,
    /// Indices of the lanes in this class, in lane order.
    members: Vec<usize>,
}

impl LineClass {
    /// Splits `event` into one access per line touched (the Dinero-style
    /// `-atype` splitting) and drives each address onto the shared CPU bus.
    fn split(&mut self, event: TraceEvent) {
        self.sub_addrs.clear();
        let size = u64::from(event.size.max(1));
        let first_line = event.addr >> self.shift;
        let last_line = (event.addr + size - 1) >> self.shift;
        if first_line == last_line {
            self.cpu_bus.observe_cpu(event.addr);
            self.sub_addrs.push(event.addr);
            return;
        }
        for l in first_line..=last_line {
            let addr = if l == first_line {
                event.addr
            } else {
                l << self.shift
            };
            self.cpu_bus.observe_cpu(addr);
            self.sub_addrs.push(addr);
        }
    }
}

/// One design's private replay state.
#[derive(Clone, Debug)]
struct Lane {
    cache: Cache,
    stats: CacheStats,
    /// Cache↔memory address bus (fills + writebacks); the CPU side lives
    /// in the lane's [`LineClass`].
    mem_bus: BusMonitor,
    classifier: Option<Classifier>,
    /// Line-aligned address held by the single-entry line buffer, if one
    /// is configured (Su–Despain block buffering).
    line_buffer: Option<Option<u64>>,
    /// Index of this lane's [`LineClass`].
    class: usize,
}

impl Lane {
    /// The per-event core: processes one line-level sub-access by byte
    /// address. This and [`access_line`](Self::access_line) are the only
    /// places in the crate where an event reaches a cache — the
    /// single-design [`Simulator`](crate::Simulator) goes through them too.
    fn access_one(&mut self, addr: u64, is_write: bool) {
        self.access_line(addr >> self.cache.line_shift(), is_write);
    }

    /// The same core by line number (`addr >> line_shift`). Every consumer
    /// downstream of the sub-access split is line-granular — the cache,
    /// the line buffer, the memory-side bus (fills and writebacks are
    /// line-aligned), and the classifier (its shadow cache and first-touch
    /// set key on the line) — so the byte offset can be dropped at the
    /// split and the shift shared across the line class.
    fn access_line(&mut self, line_addr: u64, is_write: bool) {
        let line_base = line_addr << self.cache.line_shift();
        if let Some(buffered) = &mut self.line_buffer {
            if !is_write && *buffered == Some(line_base) {
                // Served entirely by the buffer; the arrays stay quiet and
                // replacement state is untouched (the buffered line was the
                // MRU line already).
                self.stats.reads += 1;
                self.stats.read_hits += 1;
                self.stats.buffer_hits += 1;
                if let Some(c) = &mut self.classifier {
                    c.observe(line_base, true);
                }
                return;
            }
        }
        let out = self.cache.access_line(line_addr, is_write);
        if let Some(buffered) = &mut self.line_buffer {
            // The buffer tracks the most recently accessed line once it is
            // resident (hit or freshly filled); write-through no-allocate
            // misses leave it unchanged.
            if out.hit || out.fill.is_some() {
                *buffered = Some(line_base);
            }
        }
        let w = u64::from(is_write);
        let h = u64::from(out.hit);
        self.stats.writes += w;
        self.stats.write_hits += w & h;
        self.stats.reads += 1 - w;
        self.stats.read_hits += (1 - w) & h;
        if let Some(fill) = out.fill {
            self.stats.fills += 1;
            self.mem_bus.observe_mem(fill);
        }
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.writebacks += 1;
            self.mem_bus.observe_mem(wb);
        }
        if let Some(c) = &mut self.classifier {
            c.observe(line_base, out.hit);
        }
    }

    /// [`run_slice`](ReplayBank::run_slice) fast path for lanes without a
    /// line buffer: identical to [`access_line`](Self::access_line) except
    /// that the read/write *totals* are skipped — they are a property of
    /// the stream, not the lane, so the caller bulk-adds them once per
    /// lane after the replay loop.
    #[inline]
    fn access_line_bulk(&mut self, line_addr: u64, is_write: bool) {
        let out = self.cache.access_line(line_addr, is_write);
        let w = u64::from(is_write);
        let h = u64::from(out.hit);
        self.stats.write_hits += w & h;
        self.stats.read_hits += (1 - w) & h;
        if let Some(fill) = out.fill {
            self.stats.fills += 1;
            self.mem_bus.observe_mem(fill);
        }
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.writebacks += 1;
            self.mem_bus.observe_mem(wb);
        }
        if let Some(c) = &mut self.classifier {
            c.observe(line_addr << self.cache.line_shift(), out.hit);
        }
    }
}

/// A bank of independent cache states that replays a trace in one scan.
///
/// Lane order follows the configuration order given at construction;
/// [`into_reports`](Self::into_reports) returns one [`SimReport`] per lane
/// in that order.
///
/// # Panic safety
///
/// Sweep supervisors run bank scans under `catch_unwind` and fall back to
/// per-design simulation when a scan panics, which makes the bank's
/// unwind behaviour part of its contract:
///
/// * A bank is **plain owned data** — `Vec`s of counters, cache arrays,
///   and bus monitors; no interior mutability, locks, raw pointers, or
///   `unsafe`. It is therefore `UnwindSafe`/`RefUnwindSafe` by
///   construction (asserted by a compile-time test below), and a panic
///   mid-step cannot corrupt anything outside the bank itself.
/// * A caught panic **poisons the bank's value, not its invariants**: a
///   lane may have stepped more events than its neighbour. Callers must
///   discard the bank after a caught panic and re-simulate — exactly what
///   the supervisor's fallback path does — rather than resume stepping
///   it.
#[derive(Clone, Debug)]
pub struct ReplayBank {
    lanes: Vec<Lane>,
    classes: Vec<LineClass>,
}

impl ReplayBank {
    /// A bank with Gray-coded buses and no miss classification.
    pub fn new(configs: &[CacheConfig]) -> Self {
        Self::with_options(configs, BusEncoding::Gray, false)
    }

    /// Full control over bus encoding and classification (applied to every
    /// lane, as [`Simulator::with_options`](crate::Simulator::with_options)
    /// does for its single lane).
    pub fn with_options(configs: &[CacheConfig], encoding: BusEncoding, classify: bool) -> Self {
        let mut classes: Vec<LineClass> = Vec::new();
        let mut lanes = Vec::with_capacity(configs.len());
        for (i, &config) in configs.iter().enumerate() {
            let shift = config.line().trailing_zeros();
            let class = match classes.iter().position(|c| c.shift == shift) {
                Some(c) => c,
                None => {
                    classes.push(LineClass {
                        shift,
                        cpu_bus: BusMonitor::new(encoding),
                        sub_addrs: Vec::new(),
                        members: Vec::new(),
                    });
                    classes.len() - 1
                }
            };
            classes[class].members.push(i);
            lanes.push(Lane {
                cache: Cache::new(config),
                stats: CacheStats::new(),
                mem_bus: BusMonitor::new(encoding),
                classifier: classify
                    .then(|| Classifier::new(&config).expect("valid config implies valid shadow")),
                line_buffer: None,
                class,
            });
        }
        ReplayBank { lanes, classes }
    }

    /// Adds a single-entry line buffer in front of every lane
    /// (builder-style). See
    /// [`Simulator::with_line_buffer`](crate::Simulator::with_line_buffer).
    pub fn with_line_buffers(mut self) -> Self {
        for lane in &mut self.lanes {
            lane.line_buffer = Some(None);
        }
        self
    }

    /// Number of lanes (designs) in the bank.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of distinct line sizes — the split/CPU-bus work per event.
    pub fn line_classes(&self) -> usize {
        self.classes.len()
    }

    /// Advances every lane by one event: each line-size class splits the
    /// event and drives the shared CPU bus once, then its lanes process
    /// the resulting sub-accesses.
    pub fn step(&mut self, event: TraceEvent) {
        let classes = &mut self.classes;
        let lanes = &mut self.lanes;
        for class in classes.iter_mut() {
            class.split(event);
        }
        for class in classes.iter() {
            for &i in &class.members {
                let lane = &mut lanes[i];
                for &addr in &class.sub_addrs {
                    lane.access_one(addr, event.is_write);
                }
            }
        }
    }

    /// Runs every event of an iterator through the whole bank.
    pub fn run<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        for e in events {
            self.step(e);
        }
    }

    /// Replays a materialized trace slice (e.g. from a
    /// [`TraceArena`](crate::TraceArena)) in one scan.
    ///
    /// Class-major fast path: the slice is split once per line-size class
    /// into a flat stream of line numbers (driving the shared CPU bus as
    /// it is built), then the stream is replayed through each member lane
    /// in a tight loop. Lanes never interact, so lane-major order yields
    /// the same counters as the event-major [`step`](Self::step) loop
    /// while paying the split, the bus observation, and the byte-to-line
    /// shift once per class instead of once per lane per event.
    pub fn run_slice(&mut self, events: &[TraceEvent]) {
        let ReplayBank { lanes, classes } = self;
        let mut stream: Vec<(u64, bool)> = Vec::new();
        for class in classes.iter_mut() {
            stream.clear();
            stream.reserve(events.len());
            let shift = class.shift;
            let mut writes = 0u64;
            for e in events {
                let size = u64::from(e.size.max(1));
                let first_line = e.addr >> shift;
                let last_line = (e.addr + size - 1) >> shift;
                class.cpu_bus.observe_cpu(e.addr);
                stream.push((first_line, e.is_write));
                writes += u64::from(e.is_write);
                for l in (first_line + 1)..=last_line {
                    class.cpu_bus.observe_cpu(l << shift);
                    stream.push((l, e.is_write));
                    writes += u64::from(e.is_write);
                }
            }
            let reads = stream.len() as u64 - writes;
            for &i in &class.members {
                let lane = &mut lanes[i];
                if lane.line_buffer.is_none() {
                    for &(line_addr, is_write) in &stream {
                        lane.access_line_bulk(line_addr, is_write);
                    }
                    lane.stats.reads += reads;
                    lane.stats.writes += writes;
                } else {
                    // The buffer's read-hit shortcut changes per-access
                    // accounting, so buffered lanes take the full path.
                    for &(line_addr, is_write) in &stream {
                        lane.access_line(line_addr, is_write);
                    }
                }
            }
        }
    }

    /// Feeds one chunk of a streamed trace — the incremental stepper
    /// form of [`run_slice`](Self::run_slice). Lane state and the shared
    /// CPU buses persist across calls, so feeding a trace chunk by chunk
    /// (any chunking) then calling [`finish`](Self::finish) yields
    /// reports bit-identical to one whole-slice scan.
    pub fn feed(&mut self, chunk: &[TraceEvent]) {
        self.run_slice(chunk);
    }

    /// Ends a [`feed`](Self::feed) run: one report per lane, in lane
    /// order (alias of [`into_reports`](Self::into_reports), named for
    /// the streaming protocol).
    pub fn finish(self) -> Vec<SimReport> {
        self.into_reports()
    }

    /// [`run_slice`](Self::run_slice) with a progress hook: the slice is
    /// replayed in chunks of `every` events and `tick(n)` reports each
    /// chunk's size as it completes. Lane state and the shared CPU buses
    /// persist across `run_slice` calls, so chunked replay produces
    /// counters bit-identical to one whole-slice scan — the hook costs one
    /// extra split per chunk boundary and nothing per event.
    pub fn run_slice_ticked(
        &mut self,
        events: &[TraceEvent],
        every: usize,
        tick: &(dyn Fn(u64) + Sync),
    ) {
        for chunk in events.chunks(every.max(1)) {
            self.run_slice(chunk);
            tick(chunk.len() as u64);
        }
    }

    /// Lane `i`'s current counters (the run can continue afterwards).
    pub fn stats(&self, i: usize) -> &CacheStats {
        &self.lanes[i].stats
    }

    /// Read access to lane `i`'s cache.
    pub fn cache(&self, i: usize) -> &Cache {
        &self.lanes[i].cache
    }

    /// Lane `i`'s processor-side bus statistics (shared with every lane of
    /// equal line size).
    pub fn cpu_bus(&self, i: usize) -> BusStats {
        self.classes[self.lanes[i].class].cpu_bus.cpu()
    }

    /// Finishes the run and returns one report per lane, in lane order.
    pub fn into_reports(self) -> Vec<SimReport> {
        let classes = self.classes;
        self.lanes
            .into_iter()
            .map(|lane| SimReport {
                config: *lane.cache.config(),
                stats: lane.stats,
                cpu_bus: classes[lane.class].cpu_bus.cpu(),
                mem_bus: lane.mem_bus.mem(),
                miss_classes: lane.classifier.map(|c| c.counts()),
            })
            .collect()
    }

    /// Convenience: replay a slice through a fresh bank in one call.
    pub fn simulate_slice(configs: &[CacheConfig], events: &[TraceEvent]) -> Vec<SimReport> {
        let mut bank = ReplayBank::new(configs);
        bank.run_slice(events);
        bank.into_reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn stride_trace(n: u64, stride: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::read((i * stride) % 512, 4))
            .collect()
    }

    #[test]
    fn bank_matches_independent_simulators() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 2).unwrap(),
            CacheConfig::new(128, 16, 4).unwrap(),
            CacheConfig::new(256, 8, 1).unwrap(),
        ];
        let trace = stride_trace(500, 12);
        let fused = ReplayBank::simulate_slice(&configs, &trace);
        for (config, report) in configs.iter().zip(&fused) {
            let lone = Simulator::simulate_slice(*config, &trace);
            assert_eq!(lone.stats, report.stats, "{config}");
            assert_eq!(lone.cpu_bus, report.cpu_bus, "{config}");
            assert_eq!(lone.mem_bus, report.mem_bus, "{config}");
        }
    }

    #[test]
    fn equal_line_sizes_share_one_class() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(128, 8, 2).unwrap(),
            CacheConfig::new(64, 16, 1).unwrap(),
        ];
        let bank = ReplayBank::new(&configs);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.line_classes(), 2);
    }

    #[test]
    fn shared_cpu_bus_is_identical_across_a_class() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(512, 8, 4).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.run_slice(&stride_trace(200, 28));
        assert_eq!(bank.cpu_bus(0), bank.cpu_bus(1));
        let reports = bank.into_reports();
        assert_eq!(reports[0].cpu_bus, reports[1].cpu_bus);
        // Different cache sizes still miss differently.
        assert_ne!(
            reports[0].stats.read_misses(),
            reports[1].stats.read_misses()
        );
    }

    #[test]
    fn spanning_accesses_split_per_line_size() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(64, 16, 1).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.step(TraceEvent::read(6, 4)); // spans 8 B lines, not 16 B ones
        assert_eq!(bank.stats(0).reads, 2);
        assert_eq!(bank.stats(1).reads, 1);
    }

    #[test]
    fn empty_bank_steps_harmlessly() {
        let mut bank = ReplayBank::new(&[]);
        bank.run_slice(&stride_trace(10, 4));
        assert!(bank.is_empty());
        assert_eq!(bank.line_classes(), 0);
        assert!(bank.into_reports().is_empty());
    }

    #[test]
    fn empty_trace_yields_zeroed_reports() {
        let configs = [CacheConfig::new(64, 8, 1).unwrap()];
        let reports = ReplayBank::simulate_slice(&configs, &[]);
        assert_eq!(reports[0].stats, CacheStats::new());
        assert_eq!(reports[0].cpu_bus.transfers, 0);
    }

    #[test]
    fn classified_bank_matches_classified_simulator() {
        let configs = [
            CacheConfig::new(32, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 2).unwrap(),
        ];
        let trace = stride_trace(300, 8);
        let mut bank = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::with_options(*config, BusEncoding::Gray, true);
            sim.run_slice(&trace);
            assert_eq!(sim.into_report().miss_classes, report.miss_classes);
        }
    }

    #[test]
    fn line_buffered_bank_matches_buffered_simulator() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(128, 16, 2).unwrap(),
        ];
        let trace = stride_trace(300, 4);
        let mut bank = ReplayBank::new(&configs).with_line_buffers();
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::new(*config).with_line_buffer();
            sim.run_slice(&trace);
            let lone = sim.into_report();
            assert_eq!(lone.stats, report.stats, "{config}");
            assert!(report.stats.buffer_hits > 0, "{config}");
        }
    }

    #[test]
    fn bank_is_unwind_safe_and_send() {
        // The supervisor relies on these bounds to wrap bank scans in
        // `catch_unwind` and to run banks on stealing workers; adding
        // interior mutability or raw pointers to a lane would break this
        // at compile time, here.
        fn assert_bounds<T: std::panic::UnwindSafe + std::panic::RefUnwindSafe + Send>() {}
        assert_bounds::<ReplayBank>();
    }

    #[test]
    fn writes_and_writebacks_stay_per_lane() {
        let configs = [
            CacheConfig::new(16, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 1).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.run([TraceEvent::write(0, 4), TraceEvent::read(16, 4)]);
        let reports = bank.into_reports();
        // The 16 B cache evicts the dirty line; the 64 B one keeps it.
        assert_eq!(reports[0].stats.writebacks, 1);
        assert_eq!(reports[1].stats.writebacks, 0);
        assert_eq!(reports[0].mem_bus.transfers, 3);
        assert_eq!(reports[1].mem_bus.transfers, 2);
    }
}
