//! Fused one-pass replay: a bank of per-design cache states advanced in
//! lockstep over a single scan of a shared trace.
//!
//! Design-space sweeps evaluate many cache configurations against the same
//! immutable event stream (see [`TraceArena`](crate::TraceArena)). Replaying
//! the stream once per configuration makes trace *consumption*
//! O(designs × trace length) even after trace *generation* has been
//! deduplicated. A [`ReplayBank`] instead owns N independent lanes — one
//! [`Cache`] plus its [`CacheStats`] and memory-side bus per design — and
//! steps all of them per event, so the trace is streamed exactly once per
//! bank no matter how many designs consume it.
//!
//! Two pieces of per-event work depend only on the trace and the line size,
//! not on the cache behind it, and are therefore shared across every lane
//! with the same line size (a [`LineClass`]):
//!
//! * the split of a multi-byte access into line-level sub-accesses, and
//! * the processor↔cache address bus, whose switching sequence is a pure
//!   function of the (encoded) sub-access address stream.
//!
//! Lanes with equal line sizes receive bit-identical CPU-bus statistics —
//! exactly what N independent [`Simulator`](crate::Simulator) runs would
//! have produced, since each run would observe the same address sequence
//! from the same idle-bus initial state. Everything else (hit/miss state,
//! replacement metadata, fills, writebacks, the memory-side bus, the
//! optional classifier and line buffer) is private lane state and evolves
//! exactly as in a lone simulator. The single-design [`Simulator`]
//! (crate::Simulator) is itself a bank of one, so there is exactly one
//! stepping code path to test and to trust.
//!
//! # Example
//!
//! ```
//! use memsim::{CacheConfig, ReplayBank, Simulator, TraceEvent};
//!
//! let configs = [CacheConfig::new(64, 8, 1)?, CacheConfig::new(128, 16, 2)?];
//! let trace: Vec<TraceEvent> = (0..64).map(|i| TraceEvent::read(i * 4, 4)).collect();
//!
//! let mut bank = ReplayBank::new(&configs);
//! bank.run_slice(&trace);
//! let fused = bank.into_reports();
//!
//! // Bit-identical to N independent simulations of the same slice.
//! for (config, report) in configs.iter().zip(&fused) {
//!     let lone = Simulator::simulate_slice(*config, &trace);
//!     assert_eq!(lone.stats, report.stats);
//!     assert_eq!(lone.cpu_bus, report.cpu_bus);
//!     assert_eq!(lone.mem_bus, report.mem_bus);
//! }
//! # Ok::<(), memsim::ConfigError>(())
//! ```

use crate::bus::{BusEncoding, BusMonitor, BusStats};
use crate::cache::Cache;
use crate::classify::Classifier;
use crate::config::CacheConfig;
use crate::sim::{SimReport, TraceEvent};
use crate::stats::CacheStats;

/// Per-line-size state shared by every lane with that line size: the
/// current event's line-level sub-accesses and the processor-side address
/// bus (a pure function of the sub-access stream).
#[derive(Clone, Debug)]
struct LineClass {
    /// `line.trailing_zeros()` — the line size is a validated power of two.
    shift: u32,
    cpu_bus: BusMonitor,
    /// Sub-access byte addresses of the event currently being stepped
    /// (scratch, rewritten per event).
    sub_addrs: Vec<u64>,
    /// Indices of the lanes in this class, in lane order.
    members: Vec<usize>,
}

impl LineClass {
    /// Splits `event` into one access per line touched (the Dinero-style
    /// `-atype` splitting) and drives each address onto the shared CPU bus.
    fn split(&mut self, event: TraceEvent) {
        self.sub_addrs.clear();
        let size = u64::from(event.size.max(1));
        let first_line = event.addr >> self.shift;
        let last_line = (event.addr + size - 1) >> self.shift;
        if first_line == last_line {
            self.cpu_bus.observe_cpu(event.addr);
            self.sub_addrs.push(event.addr);
            return;
        }
        for l in first_line..=last_line {
            let addr = if l == first_line {
                event.addr
            } else {
                l << self.shift
            };
            self.cpu_bus.observe_cpu(addr);
            self.sub_addrs.push(addr);
        }
    }
}

/// One design's private replay state.
#[derive(Clone, Debug)]
struct Lane {
    cache: Cache,
    stats: CacheStats,
    /// Cache↔memory address bus (fills + writebacks); the CPU side lives
    /// in the lane's [`LineClass`].
    mem_bus: BusMonitor,
    classifier: Option<Classifier>,
    /// Line-aligned address held by the single-entry line buffer, if one
    /// is configured (Su–Despain block buffering).
    line_buffer: Option<Option<u64>>,
    /// Index of this lane's [`LineClass`].
    class: usize,
}

impl Lane {
    /// The per-event core: processes one line-level sub-access by byte
    /// address. This and [`access_line`](Self::access_line) are the only
    /// places in the crate where an event reaches a cache — the
    /// single-design [`Simulator`](crate::Simulator) goes through them too.
    fn access_one(&mut self, addr: u64, is_write: bool) {
        self.access_line(addr >> self.cache.line_shift(), is_write);
    }

    /// The same core by line number (`addr >> line_shift`). Every consumer
    /// downstream of the sub-access split is line-granular — the cache,
    /// the line buffer, the memory-side bus (fills and writebacks are
    /// line-aligned), and the classifier (its shadow cache and first-touch
    /// set key on the line) — so the byte offset can be dropped at the
    /// split and the shift shared across the line class.
    fn access_line(&mut self, line_addr: u64, is_write: bool) {
        let line_base = line_addr << self.cache.line_shift();
        if let Some(buffered) = &mut self.line_buffer {
            if !is_write && *buffered == Some(line_base) {
                // Served entirely by the buffer; the arrays stay quiet and
                // replacement state is untouched (the buffered line was the
                // MRU line already).
                self.stats.reads += 1;
                self.stats.read_hits += 1;
                self.stats.buffer_hits += 1;
                if let Some(c) = &mut self.classifier {
                    c.observe(line_base, true);
                }
                return;
            }
        }
        let out = self.cache.access_line(line_addr, is_write);
        if let Some(buffered) = &mut self.line_buffer {
            // The buffer tracks the most recently accessed line once it is
            // resident (hit or freshly filled); write-through no-allocate
            // misses leave it unchanged.
            if out.hit || out.fill.is_some() {
                *buffered = Some(line_base);
            }
        }
        let w = u64::from(is_write);
        let h = u64::from(out.hit);
        self.stats.writes += w;
        self.stats.write_hits += w & h;
        self.stats.reads += 1 - w;
        self.stats.read_hits += (1 - w) & h;
        if let Some(fill) = out.fill {
            self.stats.fills += 1;
            self.mem_bus.observe_mem(fill);
        }
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.writebacks += 1;
            self.mem_bus.observe_mem(wb);
        }
        if let Some(c) = &mut self.classifier {
            c.observe(line_base, out.hit);
        }
    }

    /// [`run_slice`](ReplayBank::run_slice) fast path for lanes without a
    /// line buffer: identical to [`access_line`](Self::access_line) except
    /// that the read/write *totals* are skipped — they are a property of
    /// the stream, not the lane, so the caller bulk-adds them once per
    /// lane after the replay loop.
    #[inline]
    fn access_line_bulk(&mut self, line_addr: u64, is_write: bool) {
        let out = self.cache.access_line(line_addr, is_write);
        let w = u64::from(is_write);
        let h = u64::from(out.hit);
        self.stats.write_hits += w & h;
        self.stats.read_hits += (1 - w) & h;
        if let Some(fill) = out.fill {
            self.stats.fills += 1;
            self.mem_bus.observe_mem(fill);
        }
        if out.evicted.is_some() {
            self.stats.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.writebacks += 1;
            self.mem_bus.observe_mem(wb);
        }
        if let Some(c) = &mut self.classifier {
            c.observe(line_addr << self.cache.line_shift(), out.hit);
        }
    }
}

/// A bank of independent cache states that replays a trace in one scan.
///
/// Lane order follows the configuration order given at construction;
/// [`into_reports`](Self::into_reports) returns one [`SimReport`] per lane
/// in that order.
///
/// # Panic safety
///
/// Sweep supervisors run bank scans under `catch_unwind` and fall back to
/// per-design simulation when a scan panics, which makes the bank's
/// unwind behaviour part of its contract:
///
/// * A bank is **plain owned data** — `Vec`s of counters, cache arrays,
///   and bus monitors; no interior mutability, locks, raw pointers, or
///   `unsafe`. It is therefore `UnwindSafe`/`RefUnwindSafe` by
///   construction (asserted by a compile-time test below), and a panic
///   mid-step cannot corrupt anything outside the bank itself.
/// * A caught panic **poisons the bank's value, not its invariants**: a
///   lane may have stepped more events than its neighbour. Callers must
///   discard the bank after a caught panic and re-simulate — exactly what
///   the supervisor's fallback path does — rather than resume stepping
///   it.
#[derive(Clone, Debug)]
pub struct ReplayBank {
    lanes: Vec<Lane>,
    classes: Vec<LineClass>,
    /// Set once the bank has replayed any write. Writes can leave dirty
    /// lines behind, and a later read miss evicting a dirty line must
    /// produce a writeback — so the read-only bulk path is only sound
    /// while the whole replay history is write-free.
    saw_write: bool,
    /// Forces the scalar per-access lane loop even where the bulk path
    /// applies — the pre-bulk engine, kept for honest baseline
    /// benchmarking and differential tests.
    scalar_replay: bool,
    /// Per-chunk line-number stream, reused across chunks and feeds.
    line_scratch: Vec<u64>,
    /// Per-set SWAR digest words for [`Cache::run_read_lines`], reused.
    digest_scratch: Vec<u64>,
    /// Per-set exact packed-recency words for narrow-tag scans, reused.
    word_scratch: Vec<u64>,
    /// Fill addresses of one bulk lane scan, in access order, reused.
    fill_scratch: Vec<u64>,
    /// Index of the class with the smallest line size — the one whose CPU
    /// bus stays live while per-class accounting is deferred (see
    /// [`cpu_stale`](Self::cpu_stale)).
    cpu_live_class: usize,
    /// While every event replayed so far fits inside one line of *every*
    /// class, all classes observe the identical byte-address sequence and
    /// their CPU buses are bit-equal. The read-only scan then skips the
    /// encode/popcount accounting for every class but
    /// [`cpu_live_class`](Self::cpu_live_class); this flag records that
    /// the other classes' monitors lag and must be re-synced (copied from
    /// the live class) before they are read or driven again.
    cpu_stale: bool,
    /// Set once an event has straddled a line of the smallest class: the
    /// per-class sub-access sequences (and hence buses) genuinely differ
    /// from then on, so deferred accounting is disabled for good.
    cpu_diverged: bool,
}

/// Internal replay chunk: bounds the per-class stream buffer so it stays
/// cache-resident while every member lane scans it, instead of streaming
/// a whole multi-megabyte slice through each lane in turn.
const REPLAY_CHUNK: usize = 1 << 15;

impl ReplayBank {
    /// A bank with Gray-coded buses and no miss classification.
    pub fn new(configs: &[CacheConfig]) -> Self {
        Self::with_options(configs, BusEncoding::Gray, false)
    }

    /// Full control over bus encoding and classification (applied to every
    /// lane, as [`Simulator::with_options`](crate::Simulator::with_options)
    /// does for its single lane).
    pub fn with_options(configs: &[CacheConfig], encoding: BusEncoding, classify: bool) -> Self {
        let mut classes: Vec<LineClass> = Vec::new();
        let mut lanes = Vec::with_capacity(configs.len());
        for (i, &config) in configs.iter().enumerate() {
            let shift = config.line().trailing_zeros();
            let class = match classes.iter().position(|c| c.shift == shift) {
                Some(c) => c,
                None => {
                    classes.push(LineClass {
                        shift,
                        cpu_bus: BusMonitor::new(encoding),
                        sub_addrs: Vec::new(),
                        members: Vec::new(),
                    });
                    classes.len() - 1
                }
            };
            classes[class].members.push(i);
            lanes.push(Lane {
                cache: Cache::new(config),
                stats: CacheStats::new(),
                mem_bus: BusMonitor::new(encoding),
                classifier: classify
                    .then(|| Classifier::new(&config).expect("valid config implies valid shadow")),
                line_buffer: None,
                class,
            });
        }
        let cpu_live_class = classes
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.shift)
            .map_or(0, |(i, _)| i);
        ReplayBank {
            lanes,
            classes,
            saw_write: false,
            scalar_replay: false,
            line_scratch: Vec::new(),
            digest_scratch: Vec::new(),
            word_scratch: Vec::new(),
            fill_scratch: Vec::new(),
            cpu_live_class,
            cpu_stale: false,
            cpu_diverged: false,
        }
    }

    /// Disables the bulk read-only lane loop (builder-style): every lane
    /// takes the scalar per-access path regardless of eligibility. This is
    /// the engine exactly as it was before bulk replay landed — benchmarks
    /// time it as the baseline, and the differential tests pit it against
    /// the bulk path event for event.
    pub fn with_scalar_replay(mut self) -> Self {
        self.scalar_replay = true;
        self
    }

    /// Adds a single-entry line buffer in front of every lane
    /// (builder-style). See
    /// [`Simulator::with_line_buffer`](crate::Simulator::with_line_buffer).
    pub fn with_line_buffers(mut self) -> Self {
        for lane in &mut self.lanes {
            lane.line_buffer = Some(None);
        }
        self
    }

    /// Number of lanes (designs) in the bank.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of distinct line sizes — the split/CPU-bus work per event.
    pub fn line_classes(&self) -> usize {
        self.classes.len()
    }

    /// Advances every lane by one event: each line-size class splits the
    /// event and drives the shared CPU bus once, then its lanes process
    /// the resulting sub-accesses.
    pub fn step(&mut self, event: TraceEvent) {
        self.sync_cpu_buses();
        if let Some(live) = self.classes.get(self.cpu_live_class) {
            let size = u64::from(event.size.max(1));
            if (event.addr >> live.shift) != ((event.addr + size - 1) >> live.shift) {
                self.cpu_diverged = true;
            }
        }
        let classes = &mut self.classes;
        let lanes = &mut self.lanes;
        for class in classes.iter_mut() {
            class.split(event);
        }
        for class in classes.iter() {
            for &i in &class.members {
                let lane = &mut lanes[i];
                for &addr in &class.sub_addrs {
                    lane.access_one(addr, event.is_write);
                }
            }
        }
    }

    /// Runs every event of an iterator through the whole bank.
    pub fn run<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        for e in events {
            self.step(e);
        }
    }

    /// Replays a materialized trace slice (e.g. from a
    /// [`TraceArena`](crate::TraceArena)) in one scan.
    ///
    /// Class-major fast path: the slice is split once per line-size class
    /// into a flat stream of line numbers (driving the shared CPU bus as
    /// it is built), then the stream is replayed through each member lane
    /// in a tight loop. Lanes never interact, so lane-major order yields
    /// the same counters as the event-major [`step`](Self::step) loop
    /// while paying the split, the bus observation, and the byte-to-line
    /// shift once per class instead of once per lane per event.
    pub fn run_slice(&mut self, events: &[TraceEvent]) {
        for chunk in events.chunks(REPLAY_CHUNK) {
            self.run_chunk(chunk);
        }
    }

    /// One internal chunk: routes to the read-only bulk scan when the
    /// whole replay history (not just this chunk) is write-free, else to
    /// the general mixed scan. Both produce identical reports; the bulk
    /// scan is just faster.
    fn run_chunk(&mut self, events: &[TraceEvent]) {
        if !self.saw_write && events.iter().any(|e| e.is_write) {
            self.saw_write = true;
        }
        if self.saw_write || self.scalar_replay {
            self.run_chunk_mixed(events);
        } else {
            self.run_chunk_reads(events);
        }
    }

    /// Catches every deferred CPU-bus monitor up to the live class. While
    /// [`cpu_stale`](Self::cpu_stale) is set the monitors are bit-equal by
    /// construction, so a plain copy of the live state *is* the sequence
    /// the lagging class would have observed.
    fn sync_cpu_buses(&mut self) {
        if self.cpu_stale {
            let live = self.classes[self.cpu_live_class].cpu_bus;
            for (i, class) in self.classes.iter_mut().enumerate() {
                if i != self.cpu_live_class {
                    class.cpu_bus = live;
                }
            }
            self.cpu_stale = false;
        }
    }

    /// The general chunk scan: per-class `(line, is_write)` stream, scalar
    /// lane loops.
    fn run_chunk_mixed(&mut self, events: &[TraceEvent]) {
        self.sync_cpu_buses();
        let ReplayBank { lanes, classes, .. } = self;
        let mut stream: Vec<(u64, bool)> = Vec::with_capacity(events.len());
        for class in classes.iter_mut() {
            stream.clear();
            let shift = class.shift;
            let mut writes = 0u64;
            for e in events {
                let size = u64::from(e.size.max(1));
                let first_line = e.addr >> shift;
                let last_line = (e.addr + size - 1) >> shift;
                class.cpu_bus.observe_cpu(e.addr);
                stream.push((first_line, e.is_write));
                writes += u64::from(e.is_write);
                for l in (first_line + 1)..=last_line {
                    class.cpu_bus.observe_cpu(l << shift);
                    stream.push((l, e.is_write));
                    writes += u64::from(e.is_write);
                }
            }
            let reads = stream.len() as u64 - writes;
            for &i in &class.members {
                let lane = &mut lanes[i];
                if lane.line_buffer.is_none() {
                    for &(line_addr, is_write) in &stream {
                        lane.access_line_bulk(line_addr, is_write);
                    }
                    lane.stats.reads += reads;
                    lane.stats.writes += writes;
                } else {
                    // The buffer's read-hit shortcut changes per-access
                    // accounting, so buffered lanes take the full path.
                    for &(line_addr, is_write) in &stream {
                        lane.access_line(line_addr, is_write);
                    }
                }
            }
        }
    }

    /// The read-only chunk scan: the per-class stream drops the write
    /// flag and packs into a flat `u64` buffer, and eligible lanes (no
    /// line buffer, no classifier, LRU/FIFO up to 8 ways) resolve it with
    /// [`Cache::run_read_lines`] — bitwise digest compares instead of a
    /// per-way probe per event. Ineligible lanes keep the scalar loop
    /// with `is_write == false`.
    ///
    /// CPU-bus accounting is deferred where it provably repeats: an event
    /// that stays inside one line of the *smallest* line size stays inside
    /// one line of every larger size (any `2^{k+1}` boundary is also a
    /// `2^k` boundary), so a chunk with no such straddler drives the
    /// identical byte-address sequence onto every class's bus. The live
    /// (smallest-line) class is scanned first and keeps real accounting;
    /// if it saw no straddler the other classes skip the encode/popcount
    /// work entirely and are marked stale (see
    /// [`sync_cpu_buses`](Self::sync_cpu_buses)). The first straddler
    /// re-syncs from the live class's pre-chunk state and disables the
    /// optimisation for the rest of the run.
    fn run_chunk_reads(&mut self, events: &[TraceEvent]) {
        if self.classes.is_empty() {
            return;
        }
        let live = self.cpu_live_class;
        let deferrable = !self.cpu_diverged && self.classes.len() > 1;
        let saved = deferrable.then(|| self.classes[live].cpu_bus);

        let spanned = Self::read_class(
            &mut self.classes[live],
            &mut self.lanes,
            events,
            true,
            &mut self.line_scratch,
            &mut self.digest_scratch,
            &mut self.word_scratch,
            &mut self.fill_scratch,
        );
        if spanned {
            if let Some(saved) = saved {
                if self.cpu_stale {
                    for (i, class) in self.classes.iter_mut().enumerate() {
                        if i != live {
                            class.cpu_bus = saved;
                        }
                    }
                    self.cpu_stale = false;
                }
                self.cpu_diverged = true;
            }
        }
        let observe_others = self.cpu_diverged || !deferrable;
        for c in 0..self.classes.len() {
            if c == live {
                continue;
            }
            Self::read_class(
                &mut self.classes[c],
                &mut self.lanes,
                events,
                observe_others,
                &mut self.line_scratch,
                &mut self.digest_scratch,
                &mut self.word_scratch,
                &mut self.fill_scratch,
            );
        }
        if !observe_others {
            self.cpu_stale = true;
        }
    }

    /// One class's share of a read-only chunk: builds the flat line-number
    /// stream (observing the CPU bus unless the caller has proven this
    /// class's sequence identical to the live class's) and replays it
    /// through the class's member lanes. Returns whether any event
    /// straddled a line boundary of this class.
    #[allow(clippy::too_many_arguments)]
    fn read_class(
        class: &mut LineClass,
        lanes: &mut [Lane],
        events: &[TraceEvent],
        observe: bool,
        line_scratch: &mut Vec<u64>,
        digest_scratch: &mut Vec<u64>,
        word_scratch: &mut Vec<u64>,
        fill_scratch: &mut Vec<u64>,
    ) -> bool {
        line_scratch.clear();
        line_scratch.reserve(events.len());
        let shift = class.shift;
        let mut max_line = 0u64;
        if observe {
            for e in events {
                let size = u64::from(e.size.max(1));
                let first_line = e.addr >> shift;
                let last_line = (e.addr + size - 1) >> shift;
                class.cpu_bus.observe_cpu(e.addr);
                line_scratch.push(first_line);
                max_line = max_line.max(last_line);
                for l in (first_line + 1)..=last_line {
                    class.cpu_bus.observe_cpu(l << shift);
                    line_scratch.push(l);
                }
            }
        } else {
            for e in events {
                let size = u64::from(e.size.max(1));
                let first_line = e.addr >> shift;
                let last_line = (e.addr + size - 1) >> shift;
                line_scratch.push(first_line);
                max_line = max_line.max(last_line);
                for l in (first_line + 1)..=last_line {
                    line_scratch.push(l);
                }
            }
        }
        let spanned = line_scratch.len() != events.len();
        debug_assert!(
            observe || !spanned,
            "deferred bus accounting requires a straddle-free chunk"
        );
        let reads = line_scratch.len() as u64;
        for &i in &class.members {
            let lane = &mut lanes[i];
            if lane.line_buffer.is_none()
                && lane.classifier.is_none()
                && lane.cache.bulk_read_eligible()
            {
                let Lane {
                    cache,
                    stats,
                    mem_bus,
                    ..
                } = lane;
                let out = cache.run_read_lines(
                    line_scratch,
                    max_line,
                    digest_scratch,
                    word_scratch,
                    fill_scratch,
                );
                mem_bus.observe_mem_run(fill_scratch);
                stats.reads += reads;
                stats.read_hits += out.hits;
                stats.fills += out.fills;
                stats.evictions += out.evictions;
            } else if lane.line_buffer.is_none() {
                for &line_addr in line_scratch.iter() {
                    lane.access_line_bulk(line_addr, false);
                }
                lane.stats.reads += reads;
            } else {
                for &line_addr in line_scratch.iter() {
                    lane.access_line(line_addr, false);
                }
            }
        }
        spanned
    }

    /// Feeds one chunk of a streamed trace — the incremental stepper
    /// form of [`run_slice`](Self::run_slice). Lane state and the shared
    /// CPU buses persist across calls, so feeding a trace chunk by chunk
    /// (any chunking) then calling [`finish`](Self::finish) yields
    /// reports bit-identical to one whole-slice scan.
    pub fn feed(&mut self, chunk: &[TraceEvent]) {
        self.run_slice(chunk);
    }

    /// Ends a [`feed`](Self::feed) run: one report per lane, in lane
    /// order (alias of [`into_reports`](Self::into_reports), named for
    /// the streaming protocol).
    pub fn finish(self) -> Vec<SimReport> {
        self.into_reports()
    }

    /// [`run_slice`](Self::run_slice) with a progress hook: the slice is
    /// replayed in chunks of `every` events and `tick(n)` reports each
    /// chunk's size as it completes. Lane state and the shared CPU buses
    /// persist across `run_slice` calls, so chunked replay produces
    /// counters bit-identical to one whole-slice scan — the hook costs one
    /// extra split per chunk boundary and nothing per event.
    pub fn run_slice_ticked(
        &mut self,
        events: &[TraceEvent],
        every: usize,
        tick: &(dyn Fn(u64) + Sync),
    ) {
        for chunk in events.chunks(every.max(1)) {
            self.run_slice(chunk);
            tick(chunk.len() as u64);
        }
    }

    /// Lane `i`'s current counters (the run can continue afterwards).
    pub fn stats(&self, i: usize) -> &CacheStats {
        &self.lanes[i].stats
    }

    /// Read access to lane `i`'s cache.
    pub fn cache(&self, i: usize) -> &Cache {
        &self.lanes[i].cache
    }

    /// Lane `i`'s processor-side bus statistics (shared with every lane of
    /// equal line size).
    pub fn cpu_bus(&self, i: usize) -> BusStats {
        let class = if self.cpu_stale {
            self.cpu_live_class
        } else {
            self.lanes[i].class
        };
        self.classes[class].cpu_bus.cpu()
    }

    /// Finishes the run and returns one report per lane, in lane order.
    pub fn into_reports(self) -> Vec<SimReport> {
        let classes = self.classes;
        let live = self.cpu_live_class;
        let stale = self.cpu_stale;
        self.lanes
            .into_iter()
            .map(|lane| SimReport {
                config: *lane.cache.config(),
                stats: lane.stats,
                cpu_bus: classes[if stale { live } else { lane.class }].cpu_bus.cpu(),
                mem_bus: lane.mem_bus.mem(),
                miss_classes: lane.classifier.map(|c| c.counts()),
            })
            .collect()
    }

    /// Convenience: replay a slice through a fresh bank in one call.
    pub fn simulate_slice(configs: &[CacheConfig], events: &[TraceEvent]) -> Vec<SimReport> {
        let mut bank = ReplayBank::new(configs);
        bank.run_slice(events);
        bank.into_reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::Replacement;

    fn stride_trace(n: u64, stride: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::read((i * stride) % 512, 4))
            .collect()
    }

    #[test]
    fn bank_matches_independent_simulators() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 2).unwrap(),
            CacheConfig::new(128, 16, 4).unwrap(),
            CacheConfig::new(256, 8, 1).unwrap(),
        ];
        let trace = stride_trace(500, 12);
        let fused = ReplayBank::simulate_slice(&configs, &trace);
        for (config, report) in configs.iter().zip(&fused) {
            let lone = Simulator::simulate_slice(*config, &trace);
            assert_eq!(lone.stats, report.stats, "{config}");
            assert_eq!(lone.cpu_bus, report.cpu_bus, "{config}");
            assert_eq!(lone.mem_bus, report.mem_bus, "{config}");
        }
    }

    #[test]
    fn equal_line_sizes_share_one_class() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(128, 8, 2).unwrap(),
            CacheConfig::new(64, 16, 1).unwrap(),
        ];
        let bank = ReplayBank::new(&configs);
        assert_eq!(bank.len(), 3);
        assert_eq!(bank.line_classes(), 2);
    }

    #[test]
    fn shared_cpu_bus_is_identical_across_a_class() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(512, 8, 4).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.run_slice(&stride_trace(200, 28));
        assert_eq!(bank.cpu_bus(0), bank.cpu_bus(1));
        let reports = bank.into_reports();
        assert_eq!(reports[0].cpu_bus, reports[1].cpu_bus);
        // Different cache sizes still miss differently.
        assert_ne!(
            reports[0].stats.read_misses(),
            reports[1].stats.read_misses()
        );
    }

    #[test]
    fn spanning_accesses_split_per_line_size() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(64, 16, 1).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.step(TraceEvent::read(6, 4)); // spans 8 B lines, not 16 B ones
        assert_eq!(bank.stats(0).reads, 2);
        assert_eq!(bank.stats(1).reads, 1);
    }

    #[test]
    fn empty_bank_steps_harmlessly() {
        let mut bank = ReplayBank::new(&[]);
        bank.run_slice(&stride_trace(10, 4));
        assert!(bank.is_empty());
        assert_eq!(bank.line_classes(), 0);
        assert!(bank.into_reports().is_empty());
    }

    #[test]
    fn empty_trace_yields_zeroed_reports() {
        let configs = [CacheConfig::new(64, 8, 1).unwrap()];
        let reports = ReplayBank::simulate_slice(&configs, &[]);
        assert_eq!(reports[0].stats, CacheStats::new());
        assert_eq!(reports[0].cpu_bus.transfers, 0);
    }

    #[test]
    fn classified_bank_matches_classified_simulator() {
        let configs = [
            CacheConfig::new(32, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 2).unwrap(),
        ];
        let trace = stride_trace(300, 8);
        let mut bank = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::with_options(*config, BusEncoding::Gray, true);
            sim.run_slice(&trace);
            assert_eq!(sim.into_report().miss_classes, report.miss_classes);
        }
    }

    #[test]
    fn line_buffered_bank_matches_buffered_simulator() {
        let configs = [
            CacheConfig::new(64, 8, 1).unwrap(),
            CacheConfig::new(128, 16, 2).unwrap(),
        ];
        let trace = stride_trace(300, 4);
        let mut bank = ReplayBank::new(&configs).with_line_buffers();
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::new(*config).with_line_buffer();
            sim.run_slice(&trace);
            let lone = sim.into_report();
            assert_eq!(lone.stats, report.stats, "{config}");
            assert!(report.stats.buffer_hits > 0, "{config}");
        }
    }

    /// A read-only trace that revisits lines at several strides, so every
    /// geometry sees a mix of hits, cold fills, and capacity evictions.
    fn revisit_trace(n: u64) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| {
                let addr = match i % 4 {
                    0 => (i * 12) % 2048,
                    1 => (i * 7) % 512,
                    2 => (i / 2 * 20) % 1024,
                    _ => (i * 36) % 4096 + 6, // spans small lines
                };
                TraceEvent::read(addr, 4)
            })
            .collect()
    }

    fn all_policy_configs() -> Vec<CacheConfig> {
        let mut configs = Vec::new();
        for &(size, line, assoc) in &[
            (64usize, 8usize, 1usize),
            (128, 8, 2),
            (256, 16, 4),
            (512, 8, 8),
            (1024, 16, 16),
            (256, 32, 2),
        ] {
            let base = CacheConfig::new(size, line, assoc).unwrap();
            configs.push(base.with_replacement(Replacement::Lru));
            configs.push(base.with_replacement(Replacement::Fifo));
            if assoc.is_power_of_two() && assoc > 1 {
                configs.push(base.with_replacement(Replacement::Plru));
            }
            configs.push(base.with_replacement(Replacement::Random { seed: 11 }));
        }
        configs
    }

    #[test]
    fn bulk_replay_matches_scalar_replay() {
        let configs = all_policy_configs();
        let trace = revisit_trace(6000);
        let mut bulk = ReplayBank::new(&configs);
        bulk.run_slice(&trace);
        let mut scalar = ReplayBank::new(&configs).with_scalar_replay();
        scalar.run_slice(&trace);
        for ((config, b), s) in configs
            .iter()
            .zip(bulk.into_reports())
            .zip(scalar.into_reports())
        {
            assert_eq!(b.stats, s.stats, "{config}");
            assert_eq!(b.cpu_bus, s.cpu_bus, "{config}");
            assert_eq!(b.mem_bus, s.mem_bus, "{config}");
        }
    }

    #[test]
    fn bulk_replay_is_chunk_invariant() {
        let configs = all_policy_configs();
        let trace = revisit_trace(5000);
        let mut whole = ReplayBank::new(&configs);
        whole.run_slice(&trace);
        let whole = whole.into_reports();
        for chunk_size in [1usize, 7, 333, 4096] {
            let mut fed = ReplayBank::new(&configs);
            for chunk in trace.chunks(chunk_size) {
                fed.feed(chunk);
            }
            for (config, (w, f)) in configs.iter().zip(whole.iter().zip(fed.finish())) {
                assert_eq!(w.stats, f.stats, "{config} @ chunk {chunk_size}");
                assert_eq!(w.cpu_bus, f.cpu_bus, "{config} @ chunk {chunk_size}");
                assert_eq!(w.mem_bus, f.mem_bus, "{config} @ chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn deferred_cpu_bus_accounting_survives_divergence() {
        // Aligned reads keep every class's CPU bus provably identical (the
        // deferred path), then a read straddling only the smallest line
        // forces the re-sync + divergence transition mid-run.
        let configs = [
            CacheConfig::new(64, 4, 1).unwrap(),
            CacheConfig::new(64, 16, 1).unwrap(),
        ];
        let mut trace: Vec<TraceEvent> = (0..100).map(|i| TraceEvent::read(i * 4, 4)).collect();
        trace.push(TraceEvent::read(2, 4)); // spans a 4 B line, not a 16 B one
        trace.extend((0..100).map(|i| TraceEvent::read(i * 8, 4)));
        let mut bank = ReplayBank::new(&configs);
        for chunk in trace.chunks(13) {
            bank.feed(chunk);
        }
        for (config, report) in configs.iter().zip(bank.finish()) {
            let lone = Simulator::simulate_slice(*config, &trace);
            assert_eq!(lone.stats, report.stats, "{config}");
            assert_eq!(lone.cpu_bus, report.cpu_bus, "{config}");
            assert_eq!(lone.mem_bus, report.mem_bus, "{config}");
        }
    }

    #[test]
    fn one_write_disables_bulk_for_the_rest_of_the_run() {
        // A dirty line left by an early write must still produce its
        // writeback when a much later read evicts it — the bank may never
        // return to the bulk path once it has seen a write.
        let configs = [CacheConfig::new(16, 8, 1).unwrap()];
        let mut bank = ReplayBank::new(&configs);
        bank.feed(&[TraceEvent::write(0, 4)]);
        let quiet: Vec<TraceEvent> = (0..100).map(|_| TraceEvent::read(8, 4)).collect();
        bank.feed(&quiet); // reads that never touch set 0
        bank.feed(&[TraceEvent::read(16, 4)]); // evicts the dirty line
        let report = &bank.finish()[0];
        assert_eq!(report.stats.writebacks, 1);
    }

    #[test]
    fn bank_is_unwind_safe_and_send() {
        // The supervisor relies on these bounds to wrap bank scans in
        // `catch_unwind` and to run banks on stealing workers; adding
        // interior mutability or raw pointers to a lane would break this
        // at compile time, here.
        fn assert_bounds<T: std::panic::UnwindSafe + std::panic::RefUnwindSafe + Send>() {}
        assert_bounds::<ReplayBank>();
    }

    #[test]
    fn writes_and_writebacks_stay_per_lane() {
        let configs = [
            CacheConfig::new(16, 8, 1).unwrap(),
            CacheConfig::new(64, 8, 1).unwrap(),
        ];
        let mut bank = ReplayBank::new(&configs);
        bank.run([TraceEvent::write(0, 4), TraceEvent::read(16, 4)]);
        let reports = bank.into_reports();
        // The 16 B cache evicts the dirty line; the 64 B one keeps it.
        assert_eq!(reports[0].stats.writebacks, 1);
        assert_eq!(reports[1].stats.writebacks, 0);
        assert_eq!(reports[0].mem_bus.transfers, 3);
        assert_eq!(reports[1].mem_bus.transfers, 2);
    }
}
