//! Dinero `.din` trace-format interop.
//!
//! The classic Dinero (III/IV) "din" input format is one access per line:
//!
//! ```text
//! <label> <hex address>
//! ```
//!
//! where label `0` is a data read, `1` a data write, and `2` an instruction
//! fetch. The paper cites Dinero IV as the off-the-shelf simulator it chose
//! *not* to port to (\[11\]); we support the format so traces can be exchanged
//! with it for validation.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// One record of a `.din` trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DinRecord {
    /// Access type.
    pub label: DinLabel,
    /// Byte address.
    pub addr: u64,
}

/// Dinero access labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DinLabel {
    /// Data read (label 0).
    Read,
    /// Data write (label 1).
    Write,
    /// Instruction fetch (label 2).
    Ifetch,
}

impl DinLabel {
    fn code(self) -> u8 {
        match self {
            DinLabel::Read => 0,
            DinLabel::Write => 1,
            DinLabel::Ifetch => 2,
        }
    }
}

/// Errors from [`parse_din`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseDinError {
    /// A line did not have exactly two whitespace-separated fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// The label field was not 0, 1, or 2.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The address field was not valid hexadecimal.
    BadAddress {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for ParseDinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDinError::MalformedLine { line } => {
                write!(f, "line {line}: expected `<label> <hex addr>`")
            }
            ParseDinError::BadLabel { line, token } => {
                write!(f, "line {line}: bad label `{token}` (expected 0, 1, or 2)")
            }
            ParseDinError::BadAddress { line, token } => {
                write!(f, "line {line}: bad hex address `{token}`")
            }
        }
    }
}

impl Error for ParseDinError {}

/// Parses a `.din` trace from a reader. Blank lines are skipped.
///
/// # Errors
///
/// Returns a [`ParseDinError`] describing the first malformed line; I/O
/// errors are surfaced as [`ParseDinError::MalformedLine`] is *not* used for
/// them — they panic only in [`BufRead`] misuse and otherwise bubble up via
/// the inner `Result`.
pub fn parse_din<R: BufRead>(reader: R) -> Result<Vec<DinRecord>, Box<dyn Error + Send + Sync>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        out.push(parse_din_line(trimmed, idx + 1)?);
    }
    Ok(out)
}

/// Parses one non-blank, pre-trimmed `.din` line (`line_no` is 1-based
/// and only used in errors). This is the single grammar shared by the
/// materializing [`parse_din`] and the chunked streaming reader
/// ([`DinSource`](crate::source::DinSource)), so the two can never drift.
///
/// # Errors
///
/// A [`ParseDinError`] describing the malformed field.
pub fn parse_din_line(trimmed: &str, line_no: usize) -> Result<DinRecord, ParseDinError> {
    let mut fields = trimmed.split_whitespace();
    let (label_tok, addr_tok) = match (fields.next(), fields.next(), fields.next()) {
        (Some(l), Some(a), None) => (l, a),
        _ => return Err(ParseDinError::MalformedLine { line: line_no }),
    };
    let label = match label_tok {
        "0" => DinLabel::Read,
        "1" => DinLabel::Write,
        "2" => DinLabel::Ifetch,
        _ => {
            return Err(ParseDinError::BadLabel {
                line: line_no,
                token: label_tok.to_string(),
            })
        }
    };
    let addr_tok_clean = addr_tok.trim_start_matches("0x").trim_start_matches("0X");
    let addr = u64::from_str_radix(addr_tok_clean, 16).map_err(|_| ParseDinError::BadAddress {
        line: line_no,
        token: addr_tok.to_string(),
    })?;
    Ok(DinRecord { label, addr })
}

/// Writes records in `.din` format. A mut reference may be passed as the
/// writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_din<W: Write>(mut writer: W, records: &[DinRecord]) -> std::io::Result<()> {
    for r in records {
        writeln!(writer, "{} {:x}", r.label.code(), r.addr)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let records = vec![
            DinRecord {
                label: DinLabel::Read,
                addr: 0x1000,
            },
            DinRecord {
                label: DinLabel::Write,
                addr: 0xdeadbeef,
            },
            DinRecord {
                label: DinLabel::Ifetch,
                addr: 0,
            },
        ];
        let mut buf = Vec::new();
        write_din(&mut buf, &records).unwrap();
        let parsed = parse_din(buf.as_slice()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parses_0x_prefix_and_blank_lines() {
        let text = "0 0x40\n\n1 80\n";
        let parsed = parse_din(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].addr, 0x40);
        assert_eq!(parsed[1].addr, 0x80);
    }

    #[test]
    fn rejects_bad_label() {
        let err = parse_din("7 40\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad label"));
    }

    #[test]
    fn rejects_bad_address() {
        let err = parse_din("0 zz\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad hex address"));
    }

    #[test]
    fn rejects_extra_fields() {
        let err = parse_din("0 40 extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
