//! Two-level cache hierarchies.
//!
//! The paper explores a single on-chip data cache, but "memory hierarchy"
//! is one of its keywords and any production memory-exploration library
//! needs the substrate: a [`Hierarchy`] chains an L1 in front of an L2 —
//! L1 misses probe the L2, L1 write-backs are absorbed by the L2, and only
//! L2 misses reach main memory. Statistics are kept per level so energy
//! models can charge each structure separately.
//!
//! The L2 is inclusive by construction of the access stream (every line the
//! L1 holds was fetched through the L2), though no back-invalidation is
//! modelled — adequate for miss-rate/energy studies on single-core embedded
//! systems.
//!
//! # Example
//!
//! ```
//! use memsim::{CacheConfig, TraceEvent};
//! use memsim::hierarchy::Hierarchy;
//!
//! let l1 = CacheConfig::new(64, 8, 1)?;
//! let l2 = CacheConfig::new(1024, 32, 4)?;
//! let mut h = Hierarchy::new(l1, l2);
//! h.run((0..500).map(|i| TraceEvent::read((i * 8) % 2048, 4)));
//! let report = h.report();
//! // The L2 absorbs most of the L1's misses on this small footprint.
//! assert!(report.l2.read_miss_rate() < report.l1.read_miss_rate());
//! # Ok::<(), memsim::ConfigError>(())
//! ```

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// Per-level statistics of a two-level run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HierarchyReport {
    /// L1 counters (relative to processor accesses).
    pub l1: CacheStats,
    /// L2 counters (relative to L1 miss/writeback traffic).
    pub l2: CacheStats,
}

impl HierarchyReport {
    /// Global miss rate: the fraction of processor accesses served by main
    /// memory.
    pub fn global_miss_rate(&self) -> f64 {
        if self.l1.accesses() == 0 {
            0.0
        } else {
            self.l2.misses() as f64 / self.l1.accesses() as f64
        }
    }
}

/// An L1 cache backed by an L2 cache.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    stats: HierarchyReport,
}

impl Hierarchy {
    /// Builds an empty two-level hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the L2 line is smaller than the L1 line (refills could not
    /// be satisfied from a single L2 line).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert!(
            l2.line() >= l1.line(),
            "L2 line ({}) must be at least the L1 line ({})",
            l2.line(),
            l1.line()
        );
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            stats: HierarchyReport::default(),
        }
    }

    /// Processes one access (splitting line-spanning accesses at L1
    /// granularity like [`Simulator`](crate::Simulator)).
    pub fn step(&mut self, event: crate::TraceEvent) {
        let line = self.l1.config().line() as u64;
        let size = event.size.max(1) as u64;
        let first = event.addr / line;
        let last = (event.addr + size - 1) / line;
        for l in first..=last {
            let addr = if l == first { event.addr } else { l * line };
            self.access_one(addr, event.is_write);
        }
    }

    fn access_one(&mut self, addr: u64, is_write: bool) {
        let out = self.l1.access(addr, is_write);
        if is_write {
            self.stats.l1.writes += 1;
            if out.hit {
                self.stats.l1.write_hits += 1;
            }
        } else {
            self.stats.l1.reads += 1;
            if out.hit {
                self.stats.l1.read_hits += 1;
            }
        }
        if let Some(fill) = out.fill {
            self.stats.l1.fills += 1;
            // The refill probes the L2 as a read of the missing line.
            let l2out = self.l2.access(fill, false);
            self.stats.l2.reads += 1;
            if l2out.hit {
                self.stats.l2.read_hits += 1;
            }
            if l2out.fill.is_some() {
                self.stats.l2.fills += 1;
            }
            if l2out.evicted.is_some() {
                self.stats.l2.evictions += 1;
            }
            if l2out.writeback.is_some() {
                self.stats.l2.writebacks += 1;
            }
        }
        if out.evicted.is_some() {
            self.stats.l1.evictions += 1;
        }
        if let Some(wb) = out.writeback {
            self.stats.l1.writebacks += 1;
            // Dirty L1 victims are written into the L2.
            let l2out = self.l2.access(wb, true);
            self.stats.l2.writes += 1;
            if l2out.hit {
                self.stats.l2.write_hits += 1;
            }
            if l2out.fill.is_some() {
                self.stats.l2.fills += 1;
            }
            if l2out.evicted.is_some() {
                self.stats.l2.evictions += 1;
            }
            if l2out.writeback.is_some() {
                self.stats.l2.writebacks += 1;
            }
        }
    }

    /// Runs a whole trace.
    pub fn run<I: IntoIterator<Item = crate::TraceEvent>>(&mut self, events: I) {
        for e in events {
            self.step(e);
        }
    }

    /// The per-level statistics so far.
    pub fn report(&self) -> HierarchyReport {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, Pattern};
    use crate::{Simulator, TraceEvent};

    fn cfg(t: usize, l: usize, s: usize) -> CacheConfig {
        CacheConfig::new(t, l, s).expect("valid geometry")
    }

    #[test]
    fn l1_behaviour_matches_the_single_level_simulator() {
        // The L1 stream is independent of what backs it.
        let trace = generate(Pattern::Uniform, 4096, 4, 2000, 5);
        let mut h = Hierarchy::new(cfg(64, 8, 1), cfg(1024, 32, 4));
        h.run(trace.iter().copied());
        let single = Simulator::simulate(cfg(64, 8, 1), trace);
        let hr = h.report();
        assert_eq!(hr.l1.reads, single.stats.reads);
        assert_eq!(hr.l1.read_hits, single.stats.read_hits);
        assert_eq!(hr.l1.fills, single.stats.fills);
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let trace = generate(Pattern::Strided { stride: 4 }, 2048, 4, 4000, 0);
        let mut h = Hierarchy::new(cfg(64, 8, 1), cfg(4096, 32, 4));
        h.run(trace);
        let r = h.report();
        assert_eq!(r.l2.reads, r.l1.fills);
        assert!(r.l2.reads < r.l1.reads);
    }

    #[test]
    fn big_l2_absorbs_capacity_misses() {
        // 2 KB working set: thrashes a 64 B L1 but fits a 4 KB L2.
        let trace = generate(Pattern::Strided { stride: 8 }, 2048, 4, 10_000, 0);
        let mut h = Hierarchy::new(cfg(64, 8, 1), cfg(4096, 32, 4));
        h.run(trace);
        let r = h.report();
        assert!(r.l1.read_miss_rate() > 0.4);
        assert!(r.global_miss_rate() < 0.05, "{}", r.global_miss_rate());
    }

    #[test]
    fn dirty_victims_land_in_the_l2() {
        let mut h = Hierarchy::new(cfg(16, 8, 1), cfg(256, 8, 2));
        h.run([
            TraceEvent::write(0, 4),
            TraceEvent::read(16, 4), // evicts dirty line 0 into L2
            TraceEvent::read(0, 4),  // L1 miss, L2 HIT (absorbed writeback)
        ]);
        let r = h.report();
        assert_eq!(r.l1.writebacks, 1);
        assert_eq!(r.l2.writes, 1);
        assert!(r.l2.read_hits >= 1, "{:?}", r.l2);
    }

    #[test]
    #[should_panic(expected = "L2 line")]
    fn smaller_l2_line_panics() {
        let _ = Hierarchy::new(cfg(64, 32, 1), cfg(1024, 8, 1));
    }

    #[test]
    fn global_miss_rate_is_bounded_by_l1_miss_rate() {
        let trace = generate(
            Pattern::HotCold {
                hot_bytes: 256,
                hot_fraction: 0.8,
            },
            16384,
            4,
            5000,
            2,
        );
        let mut h = Hierarchy::new(cfg(128, 8, 2), cfg(2048, 32, 4));
        h.run(trace);
        let r = h.report();
        assert!(r.global_miss_rate() <= r.l1.miss_rate() + 1e-12);
    }
}
