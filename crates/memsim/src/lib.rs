//! Trace-driven set-associative cache simulator.
//!
//! This crate is the Dinero-IV-style substrate of the DAC'99 *Memory
//! Exploration for Low Power, Embedded Systems* reproduction. The paper
//! derived miss rates from closed-form expressions and notes (§4.1) that a
//! trace-driven simulator is the interchangeable alternative; we build the
//! simulator so every analytical claim can be cross-checked against exact
//! cache behaviour.
//!
//! Features:
//!
//! * set-associative caches with LRU / FIFO / tree-PLRU / random replacement
//!   ([`CacheConfig`], [`Cache`]),
//! * write-back + write-allocate and write-through + no-write-allocate
//!   policies,
//! * hit/miss statistics ([`CacheStats`]) and three-C miss classification
//!   (compulsory / capacity / conflict, [`classify::Classifier`]),
//! * address-bus activity tracking with Gray-coded or binary buses
//!   ([`bus::BusMonitor`]) — the `Add_bs` input of the paper's energy model,
//! * a [`sim::Simulator`] that drives a trace through all of the above,
//! * a [`bank::ReplayBank`] that steps many cache designs in lockstep over
//!   a single scan of a shared trace (the fused sweep engine's work unit;
//!   the `Simulator` is a bank of one),
//! * a deliberately naive [`reference::ReferenceCache`] sharing no code
//!   with the optimized path, for differential testing, and
//! * Dinero `.din` trace interop ([`din`]).
//!
//! # Example
//!
//! ```
//! use memsim::{Cache, CacheConfig};
//!
//! let config = CacheConfig::new(64, 8, 1)?; // 64 B direct-mapped, 8 B lines
//! let mut cache = Cache::new(config);
//! assert!(!cache.read(0x100).hit);  // cold miss
//! assert!(cache.read(0x104).hit);   // same 8 B line
//! # Ok::<(), memsim::ConfigError>(())
//! ```

pub mod arena;
pub mod bank;
pub mod bus;
pub mod cache;
pub mod classify;
pub mod config;
pub mod din;
pub mod hierarchy;
pub mod reference;
pub mod sim;
pub mod source;
pub mod stats;
pub mod synth;
pub mod zarena;

pub use arena::TraceArena;
pub use bank::ReplayBank;
pub use bus::{gray_encode, BusEncoding, BusMonitor, BusStats};
pub use cache::{AccessOutcome, Cache};
pub use classify::{Classifier, MissClass, MissClassCounts};
pub use config::{CacheConfig, ConfigError, Replacement, WritePolicy};
pub use hierarchy::{Hierarchy, HierarchyReport};
pub use sim::{SimReport, Simulator, TraceEvent};
pub use source::{
    collect_source, din_event, fingerprint_source, DinSource, IterSource, SliceSource,
    TraceFingerprint, TraceSource, TraceSourceError, DEFAULT_CHUNK_CAPACITY,
};
pub use stats::CacheStats;
pub use zarena::CompressedTrace;
