//! Hit/miss counters.

use std::fmt;

/// Aggregate access counters for one simulation run.
///
/// All counts are in *line accesses*: a multi-byte reference spanning a line
/// boundary counts once per line touched (see
/// [`Simulator`](crate::sim::Simulator)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Write accesses.
    pub writes: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Lines fetched from the next level.
    pub fills: u64,
    /// Valid lines evicted (clean or dirty).
    pub evictions: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Read hits served by the line buffer without touching the cell
    /// arrays (always `<= read_hits`; zero when no buffer is configured).
    pub buffer_hits: u64,
}

impl CacheStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read misses.
    pub fn read_misses(&self) -> u64 {
        self.reads - self.read_hits
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.writes - self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses() + self.write_misses()
    }

    /// Overall miss ratio in `[0, 1]`; 0 for an empty run.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses(), self.accesses())
    }

    /// Overall hit ratio in `[0, 1]`; 0 for an empty run.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.read_hits + self.write_hits, self.accesses())
    }

    /// Read miss ratio — the paper's *miss rate* (its models count reads
    /// only).
    pub fn read_miss_rate(&self) -> f64 {
        ratio(self.read_misses(), self.reads)
    }

    /// Read hit ratio.
    pub fn read_hit_rate(&self) -> f64 {
        ratio(self.read_hits, self.reads)
    }

    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        self.writes += other.writes;
        self.write_hits += other.write_hits;
        self.fills += other.fills;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.buffer_hits += other.buffer_hits;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} reads, {} writes), miss rate {:.4}, {} fills, {} writebacks",
            self.accesses(),
            self.reads,
            self.writes,
            self.miss_rate(),
            self.fills,
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheStats {
        CacheStats {
            reads: 100,
            read_hits: 90,
            writes: 50,
            write_hits: 40,
            fills: 20,
            evictions: 12,
            writebacks: 5,
            buffer_hits: 3,
        }
    }

    #[test]
    fn derived_ratios() {
        let s = sample();
        assert_eq!(s.accesses(), 150);
        assert_eq!(s.misses(), 20);
        assert!((s.miss_rate() - 20.0 / 150.0).abs() < 1e-12);
        assert!((s.read_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_rates() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.read_miss_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.reads, 200);
        assert_eq!(a.writebacks, 10);
        assert_eq!(a.buffer_hits, 6);
    }

    #[test]
    fn display_mentions_miss_rate() {
        assert!(format!("{}", sample()).contains("miss rate"));
    }
}
