//! Three-C miss classification: compulsory, capacity, conflict.
//!
//! The paper's off-chip assignment (§4.1) claims to eliminate *conflict*
//! misses entirely for compatible access patterns. To verify that claim we
//! classify every miss of the simulated cache by the standard three-C
//! taxonomy (Hill/Smith, as popularised by Hennessy & Patterson — the
//! paper's reference \[10\]):
//!
//! * **compulsory** — the line was never referenced before;
//! * **capacity** — a fully associative LRU cache of the same capacity and
//!   line size would also miss;
//! * **conflict** — the fully associative cache would have hit; the miss is
//!   an artifact of limited associativity / placement.

use crate::cache::Cache;
use crate::config::CacheConfig;
use std::collections::HashSet;

/// The class of one miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissClass {
    /// First-ever reference to the line.
    Compulsory,
    /// Would miss even with full associativity.
    Capacity,
    /// Misses only because of limited associativity.
    Conflict,
}

/// Per-class miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MissClassCounts {
    /// Compulsory (cold) misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl MissClassCounts {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// Classifies misses by running a fully associative LRU shadow cache in
/// lockstep with the real cache.
///
/// Feed it every access (`observe`), in the same order the real cache sees
/// them; for accesses that missed in the real cache it returns the class.
///
/// # Example
///
/// ```
/// use memsim::{Cache, CacheConfig, Classifier, MissClass};
///
/// let cfg = CacheConfig::new(64, 8, 1)?;
/// let mut cache = Cache::new(cfg);
/// let mut cls = Classifier::new(&cfg)?;
///
/// let addr = 0x40;
/// let hit = cache.read(addr).hit;
/// assert_eq!(cls.observe(addr, hit), Some(MissClass::Compulsory));
/// # Ok::<(), memsim::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Classifier {
    shadow: Cache,
    seen: HashSet<u64>,
    line: usize,
    counts: MissClassCounts,
}

impl Classifier {
    /// Builds a classifier for caches of `config`'s capacity and line size.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`](crate::ConfigError) from building the
    /// fully associative shadow configuration (cannot happen for a valid
    /// `config`).
    pub fn new(config: &CacheConfig) -> Result<Self, crate::ConfigError> {
        let shadow_cfg = CacheConfig::fully_associative(config.size(), config.line())?;
        Ok(Classifier {
            shadow: Cache::new(shadow_cfg),
            seen: HashSet::new(),
            line: config.line(),
            counts: MissClassCounts::default(),
        })
    }

    /// Observes one access. `real_hit` is the outcome in the real cache.
    /// Returns the miss class if the real cache missed, `None` on hits.
    pub fn observe(&mut self, addr: u64, real_hit: bool) -> Option<MissClass> {
        let line_addr = addr / self.line as u64;
        let first_touch = self.seen.insert(line_addr);
        let shadow_hit = self.shadow.read(addr).hit;
        if real_hit {
            return None;
        }
        let class = if first_touch {
            MissClass::Compulsory
        } else if !shadow_hit {
            MissClass::Capacity
        } else {
            MissClass::Conflict
        };
        match class {
            MissClass::Compulsory => self.counts.compulsory += 1,
            MissClass::Capacity => self.counts.capacity += 1,
            MissClass::Conflict => self.counts.conflict += 1,
        }
        Some(class)
    }

    /// Counters accumulated so far.
    pub fn counts(&self) -> MissClassCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: CacheConfig, trace: &[u64]) -> MissClassCounts {
        let mut cache = Cache::new(cfg);
        let mut cls = Classifier::new(&cfg).unwrap();
        for &a in trace {
            let hit = cache.read(a).hit;
            cls.observe(a, hit);
        }
        cls.counts()
    }

    #[test]
    fn first_touches_are_compulsory() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let c = run(cfg, &[0, 8, 16]);
        assert_eq!(c.compulsory, 3);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.capacity, 0);
    }

    #[test]
    fn direct_mapped_ping_pong_is_conflict() {
        // Two lines mapping to the same set of a direct-mapped cache,
        // alternating: all repeat misses are conflict (full assoc would hit).
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let trace: Vec<u64> = (0..10).map(|i| (i % 2) * 64).collect();
        let c = run(cfg, &trace);
        assert_eq!(c.compulsory, 2);
        assert_eq!(c.conflict, 8);
        assert_eq!(c.capacity, 0);
    }

    #[test]
    fn streaming_beyond_capacity_is_capacity() {
        // Sequentially stream 32 distinct lines through an 8-line cache,
        // twice: second pass misses are capacity.
        let cfg = CacheConfig::new(64, 8, 8).unwrap(); // fully assoc itself
        let pass: Vec<u64> = (0..32).map(|i| i * 8).collect();
        let trace: Vec<u64> = pass.iter().chain(pass.iter()).copied().collect();
        let c = run(cfg, &trace);
        assert_eq!(c.compulsory, 32);
        assert_eq!(c.capacity, 32);
        assert_eq!(c.conflict, 0);
    }

    #[test]
    fn hits_return_none_and_count_nothing() {
        let cfg = CacheConfig::new(64, 8, 1).unwrap();
        let mut cache = Cache::new(cfg);
        let mut cls = Classifier::new(&cfg).unwrap();
        cache.read(0);
        cls.observe(0, false);
        let hit = cache.read(0).hit;
        assert!(hit);
        assert_eq!(cls.observe(0, true), None);
        assert_eq!(cls.counts().total(), 1);
    }

    #[test]
    fn classes_partition_the_misses() {
        let cfg = CacheConfig::new(32, 4, 1).unwrap();
        let trace: Vec<u64> = (0..200).map(|i| (i * 13) % 256).collect();
        let mut cache = Cache::new(cfg);
        let mut cls = Classifier::new(&cfg).unwrap();
        let mut misses = 0;
        for &a in &trace {
            let hit = cache.read(a).hit;
            if !hit {
                misses += 1;
            }
            cls.observe(a, hit);
        }
        assert_eq!(cls.counts().total(), misses);
    }
}
