//! Differential tests: a fused [`ReplayBank`] against N independent
//! [`Simulator`] runs of the same trace.
//!
//! The bank is the work unit of the fused sweep engine — one scan of the
//! trace steps every lane — so these properties are the losslessness
//! argument in executable form: for random traces (unaligned, spanning,
//! zero-size, empty), random geometry mixes (shared and distinct line
//! sizes), LRU/FIFO replacement, and both write policies, every counter
//! of every lane must be bit-identical to a lone simulator fed the same
//! events, including the degenerate bank-of-one and empty-trace cases.

use memsim::{
    BusEncoding, CacheConfig, Replacement, ReplayBank, Simulator, TraceEvent, WritePolicy,
};
use proptest::prelude::*;

/// Random traces with unaligned, line-spanning, and zero-size accesses;
/// may be empty.
fn arb_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (
            0u64..2048,
            prop_oneof![Just(0u32), Just(1), Just(4), Just(8), Just(13), Just(32)],
            proptest::bool::ANY,
        ),
        0..300,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(addr, size, w)| TraceEvent {
                addr,
                size,
                is_write: w,
            })
            .collect()
    })
}

/// One random valid configuration: power-of-two geometry, LRU or FIFO,
/// either write policy.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        2u32..7,
        2u32..5,
        0u32..4,
        prop_oneof![Just(Replacement::Lru), Just(Replacement::Fifo)],
        prop_oneof![
            Just(WritePolicy::WriteBackAllocate),
            Just(WritePolicy::WriteThroughNoAllocate),
        ],
    )
        .prop_filter_map("valid geometry", |(ts, ls, ss, repl, wp)| {
            let t = 1usize << (ts + 3); // 32..1024
            let l = 1usize << ls; // 4..16
            let s = 1usize << ss; // 1..8
            (l <= t && s <= t / l).then(|| {
                CacheConfig::new(t, l, s)
                    .expect("filtered to valid")
                    .with_replacement(repl)
                    .with_write_policy(wp)
            })
        })
}

/// Banks of 1..=6 lanes — duplicates allowed, so equal line sizes (and
/// even fully identical lanes) share a line class.
fn arb_bank() -> impl Strategy<Value = Vec<CacheConfig>> {
    proptest::collection::vec(arb_config(), 1..=6)
}

fn arb_encoding() -> impl Strategy<Value = BusEncoding> {
    prop_oneof![Just(BusEncoding::Gray), Just(BusEncoding::Binary)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bank_is_bit_identical_to_independent_simulators(
        trace in arb_trace(),
        configs in arb_bank(),
        encoding in arb_encoding(),
    ) {
        let mut bank = ReplayBank::with_options(&configs, encoding, false);
        bank.run_slice(&trace);
        let fused = bank.into_reports();
        prop_assert_eq!(fused.len(), configs.len());
        for (config, report) in configs.iter().zip(&fused) {
            let mut sim = Simulator::with_options(*config, encoding, false);
            sim.run_slice(&trace);
            let lone = sim.into_report();
            prop_assert_eq!(lone.stats, report.stats, "stats for {}", config);
            prop_assert_eq!(lone.cpu_bus, report.cpu_bus, "cpu bus for {}", config);
            prop_assert_eq!(lone.mem_bus, report.mem_bus, "mem bus for {}", config);
        }
    }

    #[test]
    fn classified_bank_matches_classified_simulators(
        trace in arb_trace(),
        configs in arb_bank(),
    ) {
        let mut bank = ReplayBank::with_options(&configs, BusEncoding::Gray, true);
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::with_options(*config, BusEncoding::Gray, true);
            sim.run_slice(&trace);
            let lone = sim.into_report();
            prop_assert_eq!(lone.stats, report.stats, "stats for {}", config);
            prop_assert_eq!(
                lone.miss_classes, report.miss_classes, "classes for {}", config
            );
        }
    }

    #[test]
    fn line_buffered_bank_matches_buffered_simulators(
        trace in arb_trace(),
        configs in arb_bank(),
    ) {
        let mut bank = ReplayBank::new(&configs).with_line_buffers();
        bank.run_slice(&trace);
        for (config, report) in configs.iter().zip(bank.into_reports()) {
            let mut sim = Simulator::new(*config).with_line_buffer();
            sim.run_slice(&trace);
            let lone = sim.into_report();
            prop_assert_eq!(lone.stats, report.stats, "stats for {}", config);
            prop_assert_eq!(lone.mem_bus, report.mem_bus, "mem bus for {}", config);
        }
    }

    #[test]
    fn bank_of_one_is_exactly_a_simulator(
        trace in arb_trace(),
        config in arb_config(),
    ) {
        let fused = ReplayBank::simulate_slice(&[config], &trace)
            .pop()
            .expect("one lane in, one report out");
        let lone = Simulator::simulate_slice(config, &trace);
        prop_assert_eq!(lone.stats, fused.stats);
        prop_assert_eq!(lone.cpu_bus, fused.cpu_bus);
        prop_assert_eq!(lone.mem_bus, fused.mem_bus);
    }
}

/// Deterministic corners kept out of the property loop so failures name
/// themselves.
#[test]
fn empty_trace_through_a_wide_bank_is_all_zero() {
    let configs = [
        CacheConfig::new(64, 8, 1).expect("valid"),
        CacheConfig::new(128, 16, 2).expect("valid"),
        CacheConfig::new(256, 8, 4).expect("valid"),
    ];
    for report in ReplayBank::simulate_slice(&configs, &[]) {
        assert_eq!(report.stats.accesses(), 0);
        assert_eq!(report.cpu_bus.transfers, 0);
        assert_eq!(report.mem_bus.transfers, 0);
    }
}

#[test]
fn identical_lanes_produce_identical_reports() {
    let config = CacheConfig::new(64, 8, 2)
        .expect("valid")
        .with_replacement(Replacement::Fifo);
    let trace: Vec<TraceEvent> = (0..200)
        .map(|i| TraceEvent::read(i * 12 % 512, 4))
        .collect();
    let reports = ReplayBank::simulate_slice(&[config, config], &trace);
    assert_eq!(reports[0].stats, reports[1].stats);
    assert_eq!(reports[0].cpu_bus, reports[1].cpu_bus);
    assert_eq!(reports[0].mem_bus, reports[1].mem_bus);
}

#[test]
fn write_policy_mix_in_one_bank_matches_lone_runs() {
    let wb = CacheConfig::new(64, 8, 1).expect("valid");
    let wt = wb.with_write_policy(WritePolicy::WriteThroughNoAllocate);
    let trace: Vec<TraceEvent> = (0..100)
        .map(|i| {
            if i % 3 == 0 {
                TraceEvent::write(i * 8 % 256, 4)
            } else {
                TraceEvent::read(i * 8 % 256, 4)
            }
        })
        .collect();
    for (config, report) in [wb, wt]
        .iter()
        .zip(ReplayBank::simulate_slice(&[wb, wt], &trace))
    {
        let lone = Simulator::simulate_slice(*config, &trace);
        assert_eq!(lone.stats, report.stats, "{config}");
        assert_eq!(lone.mem_bus, report.mem_bus, "{config}");
    }
}
