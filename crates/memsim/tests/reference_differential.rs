//! Differential tests: the optimized simulator against the naive
//! reference model on random traces and geometries.
//!
//! [`memsim::reference::ReferenceCache`] shares no code with the
//! production [`Simulator`] — flat line vector vs per-set ways, division
//! vs shifts, per-byte splitting vs arithmetic line walks — so agreement
//! on every counter across random traces is strong evidence both address
//! paths are right.

use memsim::reference::ReferenceCache;
use memsim::{CacheConfig, Replacement, Simulator, TraceEvent, WritePolicy};
use proptest::prelude::*;

/// Random traces with unaligned, line-spanning, and zero-size accesses.
fn arb_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (
            0u64..2048,
            prop_oneof![Just(0u32), Just(1), Just(4), Just(8), Just(13), Just(32)],
            proptest::bool::ANY,
        ),
        1..300,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(addr, size, w)| TraceEvent {
                addr,
                size,
                is_write: w,
            })
            .collect()
    })
}

/// Valid `(size, line, assoc)` triples, including fully associative ones.
fn arb_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (2u32..7, 2u32..5, 0u32..4).prop_filter_map("valid geometry", |(ts, ls, ss)| {
        let t = 1usize << (ts + 3); // 32..1024
        let l = 1usize << ls; // 4..16
        let s = 1usize << ss; // 1..8
        (l <= t && s <= t / l).then_some((t, l, s))
    })
}

fn arb_policy() -> impl Strategy<Value = (Replacement, WritePolicy)> {
    (
        prop_oneof![Just(Replacement::Lru), Just(Replacement::Fifo)],
        prop_oneof![
            Just(WritePolicy::WriteBackAllocate),
            Just(WritePolicy::WriteThroughNoAllocate),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_simulator_matches_the_reference(
        trace in arb_trace(),
        geom in arb_geometry(),
        policy in arb_policy(),
    ) {
        let (t, l, s) = geom;
        let (replacement, write_policy) = policy;
        let cfg = CacheConfig::new(t, l, s)
            .expect("filtered to valid")
            .with_replacement(replacement)
            .with_write_policy(write_policy);
        let optimized = Simulator::simulate(cfg, trace.iter().copied()).stats;
        let reference = ReferenceCache::simulate(cfg, trace.iter().copied());
        prop_assert_eq!(optimized, reference, "config {}", cfg);
    }

    #[test]
    fn reference_agrees_on_fully_associative_caches(trace in arb_trace()) {
        // One set exercises the whole-vector search and the LRU ordering
        // with the maximum number of resident candidates.
        let cfg = CacheConfig::fully_associative(128, 8).expect("valid");
        let optimized = Simulator::simulate(cfg, trace.iter().copied()).stats;
        let reference = ReferenceCache::simulate(cfg, trace.iter().copied());
        prop_assert_eq!(optimized, reference);
    }
}

/// A handful of deterministic geometry/trace corners kept out of the
/// property loop so failures name themselves.
#[test]
fn single_line_cache_hits_only_within_the_line() {
    // T == L: one line, every new line evicts the previous one.
    let cfg = CacheConfig::new(8, 8, 1).expect("valid");
    let trace = [
        TraceEvent::read(0, 4),
        TraceEvent::read(4, 4), // same line: hit
        TraceEvent::read(8, 4), // new line: evicts
        TraceEvent::read(0, 4), // miss again
    ];
    let optimized = Simulator::simulate(cfg, trace.iter().copied()).stats;
    let reference = ReferenceCache::simulate(cfg, trace.iter().copied());
    assert_eq!(optimized, reference);
    assert_eq!(optimized.read_hits, 1);
    assert_eq!(optimized.evictions, 2);
}

#[test]
fn access_spanning_many_lines_matches() {
    let cfg = CacheConfig::new(64, 4, 2).expect("valid");
    let trace = [TraceEvent::read(2, 33), TraceEvent::write(1, 17)];
    let optimized = Simulator::simulate(cfg, trace.iter().copied()).stats;
    let reference = ReferenceCache::simulate(cfg, trace.iter().copied());
    assert_eq!(optimized, reference);
    assert_eq!(optimized.reads, 9); // bytes 2..35 touch lines 0..8
}

#[test]
fn empty_trace_yields_zeroed_stats() {
    let cfg = CacheConfig::new(64, 8, 2).expect("valid");
    let optimized = Simulator::simulate(cfg, std::iter::empty()).stats;
    let reference = ReferenceCache::simulate(cfg, std::iter::empty());
    assert_eq!(optimized, reference);
    assert_eq!(optimized.accesses(), 0);
    assert_eq!(optimized.miss_rate(), 0.0);
}
