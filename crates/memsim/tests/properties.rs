//! Property-based tests for the cache simulator.

use memsim::din::{parse_din, write_din, DinLabel, DinRecord};
use memsim::{Cache, CacheConfig, Replacement, Simulator, TraceEvent, WritePolicy};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (
            0u64..4096,
            prop_oneof![Just(1u32), Just(4), Just(8)],
            proptest::bool::ANY,
        ),
        1..400,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(addr, size, w)| TraceEvent {
                addr,
                size,
                is_write: w,
            })
            .collect()
    })
}

fn arb_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (2u32..7, 2u32..4, 0u32..3).prop_filter_map("valid geometry", |(ts, ls, ss)| {
        let t = 1usize << (ts + 3); // 32..1024
        let l = 1usize << ls; // 4..8
        let s = 1usize << ss; // 1..4
        (l <= t && s <= t / l).then_some((t, l, s))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_are_internally_consistent(trace in arb_trace(), geom in arb_geometry()) {
        let (t, l, s) = geom;
        let cfg = CacheConfig::new(t, l, s).expect("filtered to valid");
        let report = Simulator::simulate(cfg, trace);
        let st = report.stats;
        prop_assert!(st.read_hits <= st.reads);
        prop_assert!(st.write_hits <= st.writes);
        prop_assert!(st.evictions <= st.fills);
        prop_assert!(st.writebacks <= st.evictions);
        prop_assert!(st.miss_rate() >= 0.0 && st.miss_rate() <= 1.0);
        prop_assert!((st.miss_rate() + st.hit_rate() - 1.0).abs() < 1e-12
            || st.accesses() == 0);
    }

    #[test]
    fn valid_lines_never_exceed_capacity(trace in arb_trace(), geom in arb_geometry()) {
        let (t, l, s) = geom;
        let cfg = CacheConfig::new(t, l, s).expect("filtered to valid");
        let mut cache = Cache::new(cfg);
        for e in &trace {
            cache.access(e.addr, e.is_write);
            prop_assert!(cache.valid_lines() <= cfg.num_lines());
        }
    }

    #[test]
    fn lru_inclusion_property_on_random_traces(trace in arb_trace()) {
        // Fully associative LRU is a stack algorithm: misses are monotone
        // non-increasing in capacity.
        let reads: Vec<TraceEvent> = trace
            .iter()
            .map(|e| TraceEvent::read(e.addr, e.size))
            .collect();
        let small = CacheConfig::fully_associative(128, 8).expect("valid");
        let large = CacheConfig::fully_associative(256, 8).expect("valid");
        let m_small = Simulator::simulate(small, reads.iter().copied()).stats.misses();
        let m_large = Simulator::simulate(large, reads).stats.misses();
        prop_assert!(m_large <= m_small);
    }

    #[test]
    fn classification_partitions_the_misses(trace in arb_trace(), geom in arb_geometry()) {
        let (t, l, s) = geom;
        let cfg = CacheConfig::new(t, l, s).expect("filtered to valid");
        let reads: Vec<TraceEvent> = trace
            .iter()
            .map(|e| TraceEvent::read(e.addr, e.size))
            .collect();
        let report = Simulator::simulate_classified(cfg, reads);
        let classes = report.miss_classes.expect("classification enabled");
        prop_assert_eq!(classes.total(), report.stats.misses());
    }

    #[test]
    fn full_associativity_has_no_conflict_misses(trace in arb_trace()) {
        let cfg = CacheConfig::fully_associative(128, 8).expect("valid");
        let reads: Vec<TraceEvent> = trace
            .iter()
            .map(|e| TraceEvent::read(e.addr, e.size))
            .collect();
        let report = Simulator::simulate_classified(cfg, reads);
        prop_assert_eq!(report.miss_classes.expect("classified").conflict, 0);
    }

    #[test]
    fn read_behaviour_is_write_policy_independent(trace in arb_trace(), geom in arb_geometry()) {
        // On read-only traces the write policy cannot matter.
        let (t, l, s) = geom;
        let reads: Vec<TraceEvent> = trace
            .iter()
            .map(|e| TraceEvent::read(e.addr, e.size))
            .collect();
        let wb = CacheConfig::new(t, l, s).expect("valid");
        let wt = wb.with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let a = Simulator::simulate(wb, reads.iter().copied()).stats;
        let b = Simulator::simulate(wt, reads).stats;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn replacement_policies_agree_on_direct_mapped(trace in arb_trace()) {
        // With one way there is no replacement choice to make.
        let base = CacheConfig::new(128, 8, 1).expect("valid");
        let reference = Simulator::simulate(base, trace.iter().copied()).stats;
        for policy in [Replacement::Fifo, Replacement::Plru, Replacement::Random { seed: 3 }] {
            let cfg = base.with_replacement(policy);
            let stats = Simulator::simulate(cfg, trace.iter().copied()).stats;
            prop_assert_eq!(stats, reference);
        }
    }

    #[test]
    fn din_round_trip_is_lossless(
        records in proptest::collection::vec((0u64..u64::MAX, 0u8..3), 0..200)
    ) {
        let records: Vec<DinRecord> = records
            .into_iter()
            .map(|(addr, label)| DinRecord {
                label: match label {
                    0 => DinLabel::Read,
                    1 => DinLabel::Write,
                    _ => DinLabel::Ifetch,
                },
                addr,
            })
            .collect();
        let mut buf = Vec::new();
        write_din(&mut buf, &records).expect("in-memory write");
        let parsed = parse_din(buf.as_slice()).expect("own output parses");
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn flush_restores_the_initial_miss_pattern(trace in arb_trace(), geom in arb_geometry()) {
        let (t, l, s) = geom;
        let cfg = CacheConfig::new(t, l, s).expect("valid");
        let mut cache = Cache::new(cfg);
        let first: Vec<bool> = trace.iter().map(|e| cache.access(e.addr, e.is_write).hit).collect();
        cache.flush();
        let second: Vec<bool> = trace.iter().map(|e| cache.access(e.addr, e.is_write).hit).collect();
        prop_assert_eq!(first, second);
    }

    #[test]
    fn rereading_everything_hits_when_it_fits(
        addrs in proptest::collection::vec(0u64..128, 1..16)
    ) {
        // Any working set smaller than the cache is fully resident after
        // one pass under LRU.
        let cfg = CacheConfig::fully_associative(256, 8).expect("valid");
        let mut sim = Simulator::new(cfg);
        sim.run(addrs.iter().map(|&a| TraceEvent::read(a, 1)));
        let warm = sim.stats().misses();
        sim.run(addrs.iter().map(|&a| TraceEvent::read(a, 1)));
        prop_assert_eq!(sim.stats().misses(), warm, "second pass must be all hits");
    }
}
