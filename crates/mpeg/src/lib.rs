//! MPEG decoder case-study workload (paper §5).
//!
//! The paper validates whole-program exploration on an MPEG decoder
//! consisting of nine kernel programs: **VLD** (variable-length decode),
//! **Dequant**, **IDCT**, **Plus**, **Display**, **Store**, and the
//! prediction stages **Addr**, **Fetch**, **Compute** (Thordarson's
//! behavioural MPEG, the paper's \[7\]). The original C source is not
//! published; each kernel here is a loop-nest IR program with the
//! *representative array access pattern* of that stage — which is exactly
//! the interface the paper's §5 procedure consumes: per-kernel records
//! `(T, L, S, B, mr, C, E)` plus per-kernel trip counts.
//!
//! # Example
//!
//! ```
//! use mpeg::decoder;
//!
//! let program = decoder();
//! assert_eq!(program.components.len(), 9);
//! assert!(program.total_trips() > 0);
//! ```

use loopir::{AffineExpr, ArrayDecl, ArrayId, ArrayRef, Kernel, Loop, LoopNest};
use memexplore::CompositeProgram;

/// Element size (bytes) for pixel/coefficient data.
const ELEM: usize = 4;

fn v(d: usize) -> AffineExpr {
    AffineExpr::var(d)
}

/// Variable-length decoder: sequential scan of the bitstream buffer writing
/// decoded coefficients — pure streaming, no reuse.
pub fn vld(n: usize) -> Kernel {
    let bits = ArrayDecl::new("bits", &[n], ELEM);
    let coeff = ArrayDecl::new("coeff", &[n], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0)]),
            ArrayRef::write(ArrayId(1), vec![v(0)]),
        ],
    };
    Kernel::new("VLD", vec![bits, coeff], nest)
}

/// Inverse quantisation over `blocks` 8×8 coefficient blocks: the quant
/// table is reused by every block (high temporal locality on a tiny array).
pub fn dequant_blocks(blocks: usize) -> Kernel {
    let coeff = ArrayDecl::new("coeff", &[blocks, 8, 8], ELEM);
    let qtable = ArrayDecl::new("qtable", &[8, 8], ELEM);
    let out = ArrayDecl::new("out", &[blocks, 8, 8], ELEM);
    let nest = LoopNest {
        loops: vec![
            Loop::new(0, blocks as i64 - 1),
            Loop::new(0, 7),
            Loop::new(0, 7),
        ],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1), v(2)]),
            ArrayRef::read(ArrayId(1), vec![v(1), v(2)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1), v(2)]),
        ],
    };
    Kernel::new("Dequant", vec![coeff, qtable, out], nest)
}

/// Inverse DCT (row pass) over `blocks` 8×8 blocks with a shared cosine
/// look-up table.
pub fn idct(blocks: usize) -> Kernel {
    let blk = ArrayDecl::new("blk", &[blocks, 8, 8], ELEM);
    let cos = ArrayDecl::new("cos", &[8, 8], ELEM);
    let out = ArrayDecl::new("out", &[blocks, 8, 8], ELEM);
    let nest = LoopNest {
        loops: vec![
            Loop::new(0, blocks as i64 - 1),
            Loop::new(0, 7),
            Loop::new(0, 7),
        ],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1), v(2)]),
            ArrayRef::read(ArrayId(1), vec![v(2), v(1)]), // transposed LUT walk
            ArrayRef::write(ArrayId(2), vec![v(0), v(1), v(2)]),
        ],
    };
    Kernel::new("IDCT", vec![blk, cos, out], nest)
}

/// Reconstruction: `frame = predicted + idct` over an `n`×`n` tile.
pub fn plus(n: usize) -> Kernel {
    let pred = ArrayDecl::new("pred", &[n, n], ELEM);
    let diff = ArrayDecl::new("diff", &[n, n], ELEM);
    let frame = ArrayDecl::new("frame", &[n, n], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64 - 1), Loop::new(0, n as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(1), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(2), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Plus", vec![pred, diff, frame], nest)
}

/// Display: stream the reconstructed frame out to the display buffer.
pub fn display(n: usize) -> Kernel {
    let frame = ArrayDecl::new("frame", &[n, n], ELEM);
    let disp = ArrayDecl::new("disp", &[n, n], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64 - 1), Loop::new(0, n as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Display", vec![frame, disp], nest)
}

/// Store: copy the reconstructed frame into the reference-frame store.
pub fn store(n: usize) -> Kernel {
    let frame = ArrayDecl::new("frame", &[n, n], ELEM);
    let rstore = ArrayDecl::new("rstore", &[n, n], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64 - 1), Loop::new(0, n as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Store", vec![frame, rstore], nest)
}

/// Prediction address generation: scan motion vectors per macroblock.
pub fn addr(mbs: usize) -> Kernel {
    let mv = ArrayDecl::new("mv", &[mbs], ELEM);
    let mbinfo = ArrayDecl::new("mbinfo", &[mbs], ELEM);
    let out = ArrayDecl::new("addrbuf", &[mbs], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, mbs as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0)]),
            ArrayRef::read(ArrayId(1), vec![v(0)]),
            ArrayRef::write(ArrayId(2), vec![v(0)]),
        ],
    };
    Kernel::new("Addr", vec![mv, mbinfo, out], nest)
}

/// Prediction fetch: copy a (n+1)×(n+1) region of the reference frame into
/// the working buffer (the extra row/column feeds half-pel interpolation).
pub fn fetch(n: usize) -> Kernel {
    let refframe = ArrayDecl::new("refframe", &[n + 1, n + 1], ELEM);
    let fbuf = ArrayDecl::new("fbuf", &[n + 1, n + 1], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64), Loop::new(0, n as i64)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Fetch", vec![refframe, fbuf], nest)
}

/// Prediction compute: half-pel bilinear interpolation — four overlapping
/// reads per output pixel.
pub fn compute(n: usize) -> Kernel {
    let fbuf = ArrayDecl::new("fbuf", &[n + 1, n + 1], ELEM);
    let pred = ArrayDecl::new("pred", &[n, n], ELEM);
    let nest = LoopNest {
        loops: vec![Loop::new(0, n as i64 - 1), Loop::new(0, n as i64 - 1)],
        refs: vec![
            ArrayRef::read(ArrayId(0), vec![v(0), v(1)]),
            ArrayRef::read(ArrayId(0), vec![v(0), v(1) + 1]),
            ArrayRef::read(ArrayId(0), vec![v(0) + 1, v(1)]),
            ArrayRef::read(ArrayId(0), vec![v(0) + 1, v(1) + 1]),
            ArrayRef::write(ArrayId(1), vec![v(0), v(1)]),
        ],
    };
    Kernel::new("Compute", vec![fbuf, pred], nest)
}

/// The nine kernels at the default working-set sizes, in the paper's
/// Fig. 10 order.
pub fn kernels() -> Vec<Kernel> {
    vec![
        vld(512),
        dequant_blocks(8),
        idct(8),
        plus(32),
        display(32),
        store(32),
        addr(64),
        fetch(16),
        compute(16),
    ]
}

/// The decoder as a weighted composite program: per-frame-slice trip counts
/// for each kernel. Block-level kernels run once per macroblock group,
/// frame-level kernels once.
pub fn decoder() -> CompositeProgram {
    let trips = [4u64, 4, 4, 2, 1, 1, 4, 4, 4];
    CompositeProgram::new("MPEG decoder", kernels().into_iter().zip(trips).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::{DataLayout, TraceGen};
    use memexplore::{CacheDesign, Evaluator};

    #[test]
    fn nine_kernels_in_fig_10_order() {
        let names: Vec<String> = kernels().into_iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            vec!["VLD", "Dequant", "IDCT", "Plus", "Display", "Store", "Addr", "Fetch", "Compute"]
        );
    }

    #[test]
    fn every_kernel_traces_cleanly() {
        for k in kernels() {
            let layout = DataLayout::natural(&k);
            let n = TraceGen::new(&k, &layout).count();
            assert!(n > 0, "{} produced an empty trace", k.name);
        }
    }

    #[test]
    fn every_kernel_evaluates_at_the_paper_grid_corner() {
        let eval = Evaluator::default();
        for k in kernels() {
            let rec = eval.evaluate(&k, CacheDesign::new(64, 8, 1, 1));
            assert!(rec.miss_rate >= 0.0 && rec.miss_rate <= 1.0, "{}", k.name);
            assert!(rec.energy_nj > 0.0, "{}", k.name);
        }
    }

    #[test]
    fn streaming_kernels_miss_once_per_line() {
        // VLD reads 512 sequential 4-byte words; with 8 B lines that is one
        // miss every two reads regardless of cache size (no reuse).
        let eval = Evaluator::default();
        let rec = eval.evaluate(&vld(512), CacheDesign::new(64, 8, 1, 1));
        assert!((rec.miss_rate - 0.5).abs() < 0.02, "{}", rec.miss_rate);
    }

    #[test]
    fn dequant_qtable_reuse_shows_up() {
        // After the first block, the 8×8 qtable should mostly hit in a cache
        // that holds it (256 B table).
        let eval = Evaluator::default();
        let small = eval.evaluate(&dequant_blocks(8), CacheDesign::new(64, 8, 1, 1));
        let large = eval.evaluate(&dequant_blocks(8), CacheDesign::new(512, 8, 1, 1));
        assert!(large.miss_rate < small.miss_rate);
    }

    #[test]
    fn decoder_composite_is_consistent() {
        let p = decoder();
        assert_eq!(p.components.len(), 9);
        assert_eq!(p.total_trips(), 4 + 4 + 4 + 2 + 1 + 1 + 4 + 4 + 4);
    }

    #[test]
    fn compute_has_four_overlapping_reads() {
        let k = compute(16);
        assert_eq!(k.reads_per_iteration(), 4);
        // Overlap means strong locality: at C64L8 the miss rate must be far
        // below the 0.5 of a pure stream.
        let eval = Evaluator::default();
        let rec = eval.evaluate(&k, CacheDesign::new(64, 8, 1, 1));
        assert!(rec.miss_rate < 0.3, "{}", rec.miss_rate);
    }
}
