//! The MemExplore sweep.
//!
//! The sweep engine is *trace-once, simulate-many*: each distinct access
//! trace is materialized exactly once into a shared [`TraceArena`] and
//! every `(T, L, S, B)` design point replays an immutable slice of it.
//! A trace depends on the off-chip layout (a function of cache size `T`
//! and line size `L`) and on the tiling `B` (tiling reorders the loop
//! nest), so traces are keyed by deduplicated layout contents plus `B`:
//! all associativities `S` — and all `(T, L)` pairs that optimize to the
//! same layout — share one buffer. Replay work is then fanned out over a
//! work-stealing pool of scoped threads (a shared atomic next-job index —
//! no static chunking, so skewed costs cannot strand idle workers). The
//! default [`Engine::Fused`] makes the work unit a *trace group*: one
//! arena slice plus the bank of all designs keyed to it, streamed once
//! through a `memsim::ReplayBank` that steps every design in lockstep, so
//! trace consumption is O(events) per group instead of O(events ×
//! designs). [`Engine::PerDesign`] keeps one design per steal as the
//! differential reference. Records are written into per-design slots
//! either way, so the returned order is the deterministic sweep order
//! regardless of scheduling or engine.

use crate::analytic::{kernel_footprint_bytes, try_group_records};
use crate::checkpoint::CheckpointError;
use crate::metrics::{read_trace, CacheDesign, Evaluator, Record};
use crate::obs::{FieldValue, LatencyHistogram, Obs, Span};
use crate::telemetry::SweepTelemetry;
use loopir::transform::tile_all;
use loopir::{DataLayout, Kernel};
use memsim::{CompressedTrace, Replacement, TraceArena, TraceEvent, WritePolicy};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How often the fused bank reports scanned-event progress to the
/// observability counters (events per tick). Coarse enough that the
/// per-chunk overhead vanishes, fine enough that the progress line moves.
pub(crate) const OBS_TICK_EVENTS: usize = 1 << 16;

/// The swept parameter ranges (all powers of two, per the paper's
/// `Algorithm MemExplore`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DesignSpace {
    /// Candidate cache sizes `T` in bytes.
    pub cache_sizes: Vec<usize>,
    /// Candidate line sizes `L` in bytes (filtered to `L ≤ T / min_lines`).
    pub line_sizes: Vec<usize>,
    /// Candidate associativities `S` (filtered to `S ≤ T/L`).
    pub assocs: Vec<usize>,
    /// Candidate tiling sizes `B` (filtered to `B ≤ T/L`).
    pub tilings: Vec<u64>,
    /// Minimum number of cache lines per configuration (the paper's Fig. 3
    /// restricts to ≥ 4 lines).
    pub min_lines: usize,
    /// Candidate replacement policies (the paper assumes LRU only).
    pub replacements: Vec<Replacement>,
    /// Candidate write policies (the paper assumes write-back/allocate).
    pub write_policies: Vec<WritePolicy>,
}

impl Default for DesignSpace {
    /// An empty grid with the paper's single-policy axes, so struct-update
    /// syntax (`..Default::default()`) keeps legacy grids policy-free.
    fn default() -> Self {
        DesignSpace {
            cache_sizes: Vec::new(),
            line_sizes: Vec::new(),
            assocs: Vec::new(),
            tilings: Vec::new(),
            min_lines: 1,
            replacements: vec![Replacement::default()],
            write_policies: vec![WritePolicy::default()],
        }
    }
}

impl DesignSpace {
    /// The paper's evaluation grid: `T` ∈ 16…1024, `L` ∈ 4…64,
    /// `S` ∈ {1, 2, 4, 8}, `B` ∈ 1…16, at least 4 lines.
    pub fn paper() -> Self {
        DesignSpace {
            cache_sizes: pow2_range(16, 1024),
            line_sizes: pow2_range(4, 64),
            assocs: vec![1, 2, 4, 8],
            tilings: vec![1, 2, 4, 8, 16],
            min_lines: 4,
            ..Default::default()
        }
    }

    /// An expansive grid of over a million candidates for bound-guided
    /// search (`core::search`): `T` up to 8 MiB, `L` up to 1 KiB, `S` up
    /// to 64 ways, every tiling `B` in 1…256, with replacement policy
    /// (LRU, FIFO, PLRU) and write policy as first-class axes. Exhaustive
    /// sweep is infeasible here — use [`Explorer::search`].
    pub fn expansive() -> Self {
        DesignSpace {
            cache_sizes: pow2_range(16, 1 << 23),
            line_sizes: pow2_range(4, 1024),
            assocs: vec![1, 2, 4, 8, 16, 32, 64],
            tilings: (1..=256).collect(),
            min_lines: 4,
            replacements: vec![Replacement::Lru, Replacement::Fifo, Replacement::Plru],
            write_policies: vec![
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ],
        }
    }

    /// A small grid for tests and doc examples (direct-mapped, untiled).
    pub fn small() -> Self {
        DesignSpace {
            cache_sizes: pow2_range(16, 128),
            line_sizes: pow2_range(4, 16),
            assocs: vec![1],
            tilings: vec![1],
            min_lines: 2,
            ..Default::default()
        }
    }

    /// Direct-mapped, untiled sweep over the given size/line ranges — the
    /// grid of the paper's Figs. 1–4.
    pub fn size_line_grid(cache_sizes: &[usize], line_sizes: &[usize]) -> Self {
        DesignSpace {
            cache_sizes: cache_sizes.to_vec(),
            line_sizes: line_sizes.to_vec(),
            assocs: vec![1],
            tilings: vec![1],
            min_lines: 1,
            ..Default::default()
        }
    }

    /// Enumerates all valid designs in sweep order
    /// (`T` outer … `B` inner, as in the paper's pseudocode).
    pub fn designs(&self) -> Vec<CacheDesign> {
        let mut out = Vec::new();
        for &t in &self.cache_sizes {
            for &l in &self.line_sizes {
                if l > t || t / l < self.min_lines {
                    continue;
                }
                for &s in &self.assocs {
                    if s > t / l {
                        continue;
                    }
                    for &b in &self.tilings {
                        if b > (t / l) as u64 {
                            continue;
                        }
                        for &r in &self.replacements {
                            for &w in &self.write_policies {
                                out.push(
                                    CacheDesign::new(t, l, s, b)
                                        .with_replacement(r)
                                        .with_write_policy(w),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of valid designs, without materializing the grid — the
    /// expansive search spaces run to 10⁶–10⁷ candidates, so callers size
    /// work and report coverage from this count.
    pub fn design_count(&self) -> usize {
        let mut n = 0usize;
        let policies = self.replacements.len() * self.write_policies.len();
        for &t in &self.cache_sizes {
            for &l in &self.line_sizes {
                if l > t || t / l < self.min_lines {
                    continue;
                }
                let lines = (t / l) as u64;
                let s_ok = self.assocs.iter().filter(|&&s| s as u64 <= lines).count();
                let b_ok = self.tilings.iter().filter(|&&b| b <= lines).count();
                n += s_ok * b_ok * policies;
            }
        }
        n
    }
}

/// Which simulation engine a sweep uses. Both produce bit-identical
/// records in the same deterministic sweep order; they differ only in how
/// the work-stealing queue partitions the replay work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The work unit is a **trace group**: one arena slice plus the bank
    /// of every design replaying it, evaluated by a fused one-pass replay
    /// (`memsim::ReplayBank`) that streams the slice once while stepping
    /// all cache states in lockstep.
    #[default]
    Fused,
    /// The work unit is a single design; each one re-scans its shared
    /// arena slice. Kept as the reference implementation for differential
    /// tests and perf comparisons.
    PerDesign,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Fused => "fused",
            Engine::PerDesign => "per-design",
        })
    }
}

/// A typed sweep failure.
///
/// Worker panics are joined and *propagated* as this error instead of
/// re-panicking on the coordinating thread (which used to turn one broken
/// design into an abort of the whole process). The supervised sweep
/// ([`Explorer::explore_supervised`](crate::supervisor)) additionally
/// wraps checkpoint problems.
#[derive(Debug)]
pub enum ExploreError {
    /// A worker thread panicked during the named sweep phase. The panic
    /// payload (when it was a string) is preserved in `message`.
    WorkerPanic {
        /// Sweep phase that lost the worker (`layout`, `trace`,
        /// `simulate`, `fallback`).
        phase: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Loading or validating a sweep checkpoint failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::WorkerPanic { phase, message } => {
                write!(f, "sweep worker panicked during {phase} phase: {message}")
            }
            ExploreError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Checkpoint(e) => Some(e),
            ExploreError::WorkerPanic { .. } => None,
        }
    }
}

impl From<CheckpointError> for ExploreError {
    fn from(e: CheckpointError) -> Self {
        ExploreError::Checkpoint(e)
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else is reported generically).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo > 0 && lo.is_power_of_two() && hi.is_power_of_two() && lo <= hi);
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

/// Runs `jobs` indexed tasks over `workers` threads with work stealing:
/// every worker pulls the next index from one shared atomic counter until
/// the range is exhausted. The task closure receives `(worker, job)` so
/// instrumented callers can attribute units of work to the worker that
/// ran them. Returns each worker's busy time. With one worker the tasks
/// run inline on the calling thread (still in index order pulled from the
/// same counter), so serial and parallel sweeps share a single code path.
pub(crate) fn steal_loop<F: Fn(usize, usize) + Sync>(
    workers: usize,
    jobs: usize,
    run: F,
) -> Vec<Duration> {
    try_steal_loop(workers, jobs, run)
        .unwrap_or_else(|message| panic!("sweep worker panicked: {message}"))
}

/// Fallible [`steal_loop`]: a panicking worker is *joined*, the remaining
/// workers drain the queue, and the first panic's payload comes back as
/// `Err` — the coordinating thread never double-panics and callers can
/// surface the failure as a typed [`ExploreError`].
pub(crate) fn try_steal_loop<F: Fn(usize, usize) + Sync>(
    workers: usize,
    jobs: usize,
    run: F,
) -> Result<Vec<Duration>, String> {
    let next = AtomicUsize::new(0);
    let work = |worker: usize, next: &AtomicUsize| {
        let start = Instant::now();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            run(worker, i);
        }
        start.elapsed()
    };
    if workers <= 1 || jobs <= 1 {
        return match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(0, &next))) {
            Ok(busy) => Ok(vec![busy]),
            Err(payload) => Err(panic_message(payload)),
        };
    }
    std::thread::scope(|scope| {
        let work = &work;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || work(w, next)))
            .collect();
        let mut busy = Vec::with_capacity(handles.len());
        let mut first_panic: Option<String> = None;
        for h in handles {
            match h.join() {
                Ok(d) => busy.push(d),
                Err(payload) => {
                    first_panic.get_or_insert_with(|| panic_message(payload));
                }
            }
        }
        match first_panic {
            None => Ok(busy),
            Some(message) => Err(message),
        }
    })
}

/// The per-unit latency histograms every sweep engine records into
/// (whether or not a JSONL log is configured): trace-group scans,
/// per-design simulations, layout placements, and checkpoint flushes.
/// Snapshotted into the matching [`SweepTelemetry`] fields at the end of
/// a run.
#[derive(Debug, Default)]
pub(crate) struct SweepHists {
    /// Layout placement latency (one sample per distinct `(T, L)` pair).
    pub layout: LatencyHistogram,
    /// Per-design simulation latency (per-design engine + fallbacks).
    pub design: LatencyHistogram,
    /// Trace-group scan latency (fused engine, one sample per bank).
    pub scan: LatencyHistogram,
    /// Checkpoint flush latency (supervised sweeps).
    pub flush: LatencyHistogram,
}

impl SweepHists {
    /// Snapshots every histogram into its telemetry field.
    pub fn fill(&self, t: &mut SweepTelemetry) {
        t.layout_latency = self.layout.summary();
        t.design_latency = self.design.summary();
        t.scan_latency = self.scan.summary();
        t.flush_latency = self.flush.summary();
    }
}

/// Runs the sweep, fanning designs out across worker threads.
///
/// # Example
///
/// ```
/// use memexplore::{DesignSpace, Explorer};
/// use loopir::kernels;
///
/// let records = Explorer::default().explore(&kernels::matadd(6), &DesignSpace::small());
/// assert!(!records.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Per-design evaluator.
    pub evaluator: Evaluator,
    /// Worker-thread count; `None` uses the machine's available
    /// parallelism. `Some(1)` forces a fully serial sweep (useful as the
    /// reference for determinism checks — results are bit-identical
    /// either way).
    pub workers: Option<usize>,
    /// Simulation engine ([`Engine::Fused`] by default; records are
    /// bit-identical either way).
    pub engine: Engine,
    /// Observability hub (JSONL events + progress counters). `None` — the
    /// default — keeps the sweep exactly as uninstrumented as before;
    /// records are bit-identical either way.
    pub obs: Option<Arc<Obs>>,
    /// Whether the fused engine may resolve qualifying trace groups in
    /// closed form instead of replaying them (see [`crate::analytic`]).
    /// On by default; records are bit-identical either way — `false` is
    /// the `--no-analytic` escape hatch and the honest replay baseline
    /// for benchmarks.
    pub analytic: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            evaluator: Evaluator::default(),
            workers: None,
            engine: Engine::default(),
            obs: None,
            analytic: true,
        }
    }
}

/// The shared preparation of a sweep: the layout phase (one off-chip
/// placement per distinct `(T, L)` pair) and the trace phase (one
/// materialized trace per distinct (deduplicated layout, tiling) key,
/// interned into a [`TraceArena`]). Both the plain sweep and the
/// supervised sweep run phases 3–4 over one of these.
pub(crate) struct SweepPlan {
    /// Distinct `(T, L)` pairs in first-appearance order.
    pub pairs: Vec<(usize, usize)>,
    /// `(T, L)` → index into [`pairs`](Self::pairs).
    pub pair_index: HashMap<(usize, usize), usize>,
    /// Conflict-free flag per pair (belongs to the pair, not the layout:
    /// pairs with equal layout contents can differ here).
    pub conflict_free: Vec<bool>,
    /// Unique-layout id per pair (layouts deduplicated by value).
    pub layout_id: Vec<usize>,
    /// Distinct (layout id, tiling) trace keys in first-appearance order.
    pub keys: Vec<(usize, u64)>,
    /// Trace key → index into [`keys`](Self::keys).
    pub key_index: HashMap<(usize, u64), usize>,
    /// The shared trace storage, one immutable slice per key.
    pub arena: TraceArena<(usize, u64)>,
    /// Wall time of the layout phase.
    pub layout_time: Duration,
    /// Wall time of the trace phase.
    pub trace_time: Duration,
}

impl SweepPlan {
    /// The conflict-free flag of a design's `(T, L)` pair.
    pub fn conflict_free_of(&self, d: &CacheDesign) -> bool {
        self.conflict_free[self.pair_index[&(d.cache_size, d.line)]]
    }

    /// The trace key a design replays.
    pub fn key_of(&self, d: &CacheDesign) -> (usize, u64) {
        (
            self.layout_id[self.pair_index[&(d.cache_size, d.line)]],
            d.tiling,
        )
    }

    /// The arena slice a design replays.
    pub fn trace_of(&self, d: &CacheDesign) -> &[TraceEvent] {
        self.arena
            .get(&self.key_of(d))
            .expect("trace phase interned every key")
    }

    /// Trace groups over `designs`: `groups[k]` lists the indices of every
    /// design replaying key `k`, in sweep order — the fused engine's units
    /// of work.
    pub fn groups(&self, designs: &[CacheDesign]) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.keys.len()];
        for (i, d) in designs.iter().enumerate() {
            groups[self.key_index[&self.key_of(d)]].push(i);
        }
        groups
    }
}

/// The fused engine's prepared work units: trace groups with their event
/// counts, the closed-form records of every analytic-exact group, and the
/// compressed trace of every must-simulate group. Built between the trace
/// and simulate phases; once it exists the raw arena can be dropped.
struct FusedPrep {
    groups: Vec<Vec<usize>>,
    group_events: Vec<usize>,
    analytic_records: Vec<Option<Vec<Record>>>,
    ztraces: Vec<Option<CompressedTrace>>,
}

impl Explorer {
    /// An explorer around a specific evaluator.
    pub fn new(evaluator: Evaluator) -> Self {
        Explorer {
            evaluator,
            ..Explorer::default()
        }
    }

    /// Enables or disables the analytic fast path (builder-style).
    pub fn with_analytic(mut self, analytic: bool) -> Self {
        self.analytic = analytic;
        self
    }

    /// Pins the sweep to a fixed worker count (builder-style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Selects the simulation engine (builder-style).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches an observability hub (builder-style).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    pub(crate) fn worker_count(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.workers.unwrap_or(hw).max(1).min(jobs.max(1))
    }

    /// Evaluates every design of `space` on `kernel`. Results come back in
    /// sweep order regardless of thread scheduling.
    pub fn explore(&self, kernel: &Kernel, space: &DesignSpace) -> Vec<Record> {
        self.explore_designs(kernel, &space.designs())
    }

    /// Evaluates an explicit design list (in order).
    pub fn explore_designs(&self, kernel: &Kernel, designs: &[CacheDesign]) -> Vec<Record> {
        self.explore_designs_with_telemetry(kernel, designs).0
    }

    /// [`explore`](Self::explore), additionally reporting
    /// [`SweepTelemetry`] for the run.
    pub fn explore_with_telemetry(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
    ) -> (Vec<Record>, SweepTelemetry) {
        self.explore_designs_with_telemetry(kernel, &space.designs())
    }

    /// The trace-once, simulate-many engine behind every sweep.
    ///
    /// Four phases, the first three work-stealing over scoped threads:
    ///
    /// 1. **layout** — one off-chip placement per distinct `(T, L)` pair
    ///    (placement does not depend on `S` or `B`);
    /// 2. **trace** — one access trace per distinct (layout value, `B`)
    ///    key, assembled into a shared [`TraceArena`] in first-appearance
    ///    order;
    /// 3. **simulate** — with [`Engine::Fused`] the work unit is a *trace
    ///    group* (one arena slice plus the bank of designs keyed to it):
    ///    workers steal groups and a `memsim::ReplayBank` streams the
    ///    slice once, stepping every design in lockstep. With
    ///    [`Engine::PerDesign`] workers steal individual designs and each
    ///    re-scans its slice. Either way, records scatter into per-design
    ///    slots;
    /// 4. **select** — slots are collected into sweep order.
    pub fn explore_designs_with_telemetry(
        &self,
        kernel: &Kernel,
        designs: &[CacheDesign],
    ) -> (Vec<Record>, SweepTelemetry) {
        self.try_explore_designs_with_telemetry(kernel, designs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the layout and trace phases over `designs` and interns the
    /// result — the part of the sweep shared by the plain and supervised
    /// engines. A worker panic here is a whole-phase failure (layouts and
    /// traces are inputs to *every* design), so it propagates as
    /// [`ExploreError::WorkerPanic`] rather than being isolated per unit.
    pub(crate) fn prepare(
        &self,
        kernel: &Kernel,
        designs: &[CacheDesign],
        workers: usize,
        hists: &SweepHists,
    ) -> Result<SweepPlan, ExploreError> {
        let obs = self.obs.as_deref();
        // Phase 1: off-chip layouts, one per distinct (T, L).
        let phase_start = Instant::now();
        let span = Span::begin(obs, "layout");
        let mut pair_index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for d in designs {
            pair_index.entry((d.cache_size, d.line)).or_insert_with(|| {
                pairs.push((d.cache_size, d.line));
                pairs.len() - 1
            });
        }
        let layout_slots: Vec<OnceLock<(DataLayout, bool)>> =
            pairs.iter().map(|_| OnceLock::new()).collect();
        try_steal_loop(workers, pairs.len(), |w, i| {
            let (t, l) = pairs[i];
            let unit_start = Instant::now();
            let _ = layout_slots[i].set(self.evaluator.layout_for(kernel, t, l));
            let dur = unit_start.elapsed();
            hists.layout.record(dur);
            if let Some(o) = obs {
                o.unit(
                    "layout",
                    "place",
                    w as u64,
                    dur,
                    &[
                        ("cache", FieldValue::U64(t as u64)),
                        ("line", FieldValue::U64(l as u64)),
                    ],
                );
            }
        })
        .map_err(|message| ExploreError::WorkerPanic {
            phase: "layout",
            message,
        })?;
        drop(span);
        let layout_time = phase_start.elapsed();

        // Phase 2: traces. A trace depends on the layout *contents* and the
        // tiling — not on (T, L) directly — and distinct (T, L) pairs often
        // optimize to identical layouts, so layouts are deduplicated by
        // value first and traces are keyed by (layout id, B). Tiling
        // reorders the loop nest, so the tiled kernel is shared per B.
        let phase_start = Instant::now();
        let span = Span::begin(obs, "trace");
        let mut tiled: HashMap<u64, Kernel> = HashMap::new();
        for d in designs {
            tiled
                .entry(d.tiling)
                .or_insert_with(|| tile_all(kernel, d.tiling));
        }
        let mut conflict_free = Vec::with_capacity(pairs.len());
        let mut unique_layouts: Vec<DataLayout> = Vec::new();
        let mut layout_id = Vec::with_capacity(pairs.len());
        for slot in layout_slots {
            let (layout, cf) = slot.into_inner().expect("layout phase filled every slot");
            conflict_free.push(cf);
            match unique_layouts.iter().position(|u| *u == layout) {
                Some(id) => layout_id.push(id),
                None => {
                    unique_layouts.push(layout);
                    layout_id.push(unique_layouts.len() - 1);
                }
            }
        }
        let mut key_index: HashMap<(usize, u64), usize> = HashMap::new();
        let mut keys: Vec<(usize, u64)> = Vec::new();
        for d in designs {
            let id = layout_id[pair_index[&(d.cache_size, d.line)]];
            key_index.entry((id, d.tiling)).or_insert_with(|| {
                keys.push((id, d.tiling));
                keys.len() - 1
            });
        }
        let trace_slots: Vec<OnceLock<Vec<TraceEvent>>> =
            keys.iter().map(|_| OnceLock::new()).collect();
        try_steal_loop(workers, keys.len(), |_w, i| {
            let (id, b) = keys[i];
            let _ = trace_slots[i].set(read_trace(&tiled[&b], &unique_layouts[id]));
        })
        .map_err(|message| ExploreError::WorkerPanic {
            phase: "trace",
            message,
        })?;
        let arena: TraceArena<(usize, u64)> = TraceArena::assemble(
            keys.iter().copied().zip(
                trace_slots
                    .into_iter()
                    .map(|s| s.into_inner().expect("trace phase filled every slot")),
            ),
        );
        drop(span);
        let trace_time = phase_start.elapsed();

        Ok(SweepPlan {
            pairs,
            pair_index,
            conflict_free,
            layout_id,
            keys,
            key_index,
            arena,
            layout_time,
            trace_time,
        })
    }

    /// Fallible [`explore_designs_with_telemetry`](Self::explore_designs_with_telemetry):
    /// a worker panic in any phase surfaces as a typed
    /// [`ExploreError`] instead of a process abort. For *per-unit* panic
    /// isolation (quarantine, fallback, checkpointing), use the supervised
    /// sweep in [`supervisor`](crate::supervisor).
    pub fn try_explore_designs_with_telemetry(
        &self,
        kernel: &Kernel,
        designs: &[CacheDesign],
    ) -> Result<(Vec<Record>, SweepTelemetry), ExploreError> {
        let sweep_start = Instant::now();
        let workers = self.worker_count(designs.len());
        let obs = self.obs.as_deref();
        if let Some(o) = obs {
            o.counters
                .total
                .fetch_add(designs.len() as u64, Ordering::Relaxed);
        }
        let hists = SweepHists::default();
        let mut plan = self.prepare(kernel, designs, workers, &hists)?;
        let events_generated = plan.arena.events().len() as u64;

        // Phases 2b/2c (fused engine only): classify each trace group as
        // analytic-exact vs must-simulate, then delta-compress the traces
        // the must-simulate groups will replay and drop the raw arena.
        // Both run in their own windows (`classify_time`, `compress_time`)
        // so the simulate phase stays a pure replay measurement; only the
        // block decode rides inside it.
        let mut classify_time = Duration::ZERO;
        let mut compress_time = Duration::ZERO;
        let mut analytic_groups = 0usize;
        let mut arena_bytes = 0u64;
        let mut arena_compressed_bytes = 0u64;
        let mut fused_prep: Option<FusedPrep> = None;
        if self.engine == Engine::Fused {
            let groups = plan.groups(designs);
            let group_events: Vec<usize> = (0..groups.len())
                .map(|g| {
                    plan.arena
                        .get(&plan.keys[g])
                        .expect("trace phase interned every key")
                        .len()
                })
                .collect();

            let phase_start = Instant::now();
            let analytic_slots: Vec<OnceLock<Option<Vec<Record>>>> =
                groups.iter().map(|_| OnceLock::new()).collect();
            if self.analytic && !self.evaluator.scalar_replay {
                let span = Span::begin(obs, "classify");
                let footprint = kernel_footprint_bytes(kernel);
                try_steal_loop(workers, groups.len(), |_w, g| {
                    let trace = plan
                        .arena
                        .get(&plan.keys[g])
                        .expect("trace phase interned every key");
                    let bank: Vec<(CacheDesign, bool)> = groups[g]
                        .iter()
                        .map(|&i| (designs[i], plan.conflict_free_of(&designs[i])))
                        .collect();
                    let _ = analytic_slots[g].set(try_group_records(
                        &self.evaluator,
                        footprint,
                        &bank,
                        trace,
                    ));
                })
                .map_err(|message| ExploreError::WorkerPanic {
                    phase: "classify",
                    message,
                })?;
                drop(span);
            }
            let analytic_records: Vec<Option<Vec<Record>>> = analytic_slots
                .into_iter()
                .map(|s| s.into_inner().flatten())
                .collect();
            analytic_groups = analytic_records.iter().filter(|r| r.is_some()).count();
            classify_time = phase_start.elapsed();

            let phase_start = Instant::now();
            let span = Span::begin(obs, "compress");
            let ztrace_slots: Vec<OnceLock<Option<CompressedTrace>>> =
                groups.iter().map(|_| OnceLock::new()).collect();
            try_steal_loop(workers, groups.len(), |_w, g| {
                let _ = ztrace_slots[g].set(if analytic_records[g].is_some() {
                    None
                } else {
                    Some(CompressedTrace::encode(
                        plan.arena
                            .get(&plan.keys[g])
                            .expect("trace phase interned every key"),
                    ))
                });
            })
            .map_err(|message| ExploreError::WorkerPanic {
                phase: "compress",
                message,
            })?;
            let ztraces: Vec<Option<CompressedTrace>> = ztrace_slots
                .into_iter()
                .map(|s| s.into_inner().expect("compress phase filled every slot"))
                .collect();
            arena_bytes = events_generated * std::mem::size_of::<TraceEvent>() as u64;
            arena_compressed_bytes = ztraces
                .iter()
                .flatten()
                .map(|z| z.compressed_bytes() as u64)
                .sum();
            // The raw arena is no longer needed: analytic groups are
            // already resolved and the rest replay from compressed form.
            plan.arena = TraceArena::new();
            drop(span);
            compress_time = phase_start.elapsed();

            fused_prep = Some(FusedPrep {
                groups,
                group_events,
                analytic_records,
                ztraces,
            });
        }

        // Phase 3: simulate. The conflict-free flag rides with each design
        // (it belongs to the design's own (T, L) pair, which can differ
        // within a trace group even though the layout contents agree).
        let phase_start = Instant::now();
        let span = Span::begin(obs, "simulate");
        let record_slots: Vec<OnceLock<Record>> = designs.iter().map(|_| OnceLock::new()).collect();
        let replayed = AtomicUsize::new(0);
        let scanned = AtomicUsize::new(0);
        let (worker_busy, fused_groups, max_bank_width) = match self.engine {
            Engine::Fused => {
                // Trace groups: every design keyed to the same slice forms
                // one bank. Analytic groups scatter their precomputed
                // records; the rest stream their compressed trace once
                // through a lockstep replay bank.
                let FusedPrep {
                    groups,
                    group_events,
                    analytic_records,
                    ztraces,
                } = fused_prep.take().expect("fused prep ran for this engine");
                let max_width = groups.iter().map(Vec::len).max().unwrap_or(0);
                let busy = try_steal_loop(workers, groups.len(), |w, g| {
                    let members = &groups[g];
                    let events = group_events[g];
                    replayed.fetch_add(events * members.len(), Ordering::Relaxed);
                    let unit_start = Instant::now();
                    if let Some(records) = &analytic_records[g] {
                        for (&i, record) in members.iter().zip(records) {
                            let _ = record_slots[i].set(record.clone());
                        }
                        let dur = unit_start.elapsed();
                        if let Some(o) = obs {
                            o.counters.add_done(members.len() as u64);
                            o.unit(
                                "simulate",
                                "analytic",
                                w as u64,
                                dur,
                                &[
                                    ("events", FieldValue::U64(events as u64)),
                                    ("width", FieldValue::U64(members.len() as u64)),
                                    ("fresh", FieldValue::U64(members.len() as u64)),
                                ],
                            );
                        }
                        return;
                    }
                    scanned.fetch_add(events, Ordering::Relaxed);
                    let ztrace = ztraces[g]
                        .as_ref()
                        .expect("must-simulate groups were compressed");
                    let bank: Vec<(CacheDesign, bool)> = members
                        .iter()
                        .map(|&i| (designs[i], plan.conflict_free_of(&designs[i])))
                        .collect();
                    let records = match obs {
                        Some(o) => self.evaluator.evaluate_bank_with_ztrace(
                            &bank,
                            ztrace,
                            Some(&|n| o.counters.add_events(n)),
                        ),
                        None => self
                            .evaluator
                            .evaluate_bank_with_ztrace(&bank, ztrace, None),
                    };
                    let dur = unit_start.elapsed();
                    hists.scan.record(dur);
                    for (&i, record) in members.iter().zip(records) {
                        let _ = record_slots[i].set(record);
                    }
                    if let Some(o) = obs {
                        o.counters.add_done(members.len() as u64);
                        o.unit(
                            "simulate",
                            "scan",
                            w as u64,
                            dur,
                            &[
                                ("events", FieldValue::U64(events as u64)),
                                ("width", FieldValue::U64(members.len() as u64)),
                                ("fresh", FieldValue::U64(members.len() as u64)),
                            ],
                        );
                    }
                });
                (busy, groups.len(), max_width)
            }
            Engine::PerDesign => {
                let busy = try_steal_loop(workers, designs.len(), |w, i| {
                    let d = designs[i];
                    let trace = plan.trace_of(&d);
                    replayed.fetch_add(trace.len(), Ordering::Relaxed);
                    scanned.fetch_add(trace.len(), Ordering::Relaxed);
                    let unit_start = Instant::now();
                    let _ = record_slots[i].set(self.evaluator.evaluate_with_trace(
                        d,
                        trace,
                        plan.conflict_free_of(&d),
                    ));
                    let dur = unit_start.elapsed();
                    hists.design.record(dur);
                    if let Some(o) = obs {
                        o.counters.add_done(1);
                        o.counters.add_events(trace.len() as u64);
                        o.unit(
                            "simulate",
                            "sim",
                            w as u64,
                            dur,
                            &[("events", FieldValue::U64(trace.len() as u64))],
                        );
                    }
                });
                (busy, 0, 0)
            }
        };
        drop(span);
        let worker_busy = worker_busy.map_err(|message| ExploreError::WorkerPanic {
            phase: "simulate",
            message,
        })?;
        let simulate_time = phase_start.elapsed();

        // Phase 4: collect records back into sweep order.
        let phase_start = Instant::now();
        let span = Span::begin(obs, "select");
        let records: Vec<Record> = record_slots
            .into_iter()
            .map(|s| s.into_inner().expect("simulate phase filled every slot"))
            .collect();
        drop(span);
        let select_time = phase_start.elapsed();

        let mut telemetry = SweepTelemetry {
            designs_evaluated: designs.len(),
            layouts_computed: plan.pairs.len(),
            traces_generated: plan.keys.len(),
            trace_events_generated: events_generated,
            trace_events_replayed: replayed.into_inner() as u64,
            trace_events_scanned: scanned.into_inner() as u64,
            fused_groups,
            max_bank_width,
            analytic_groups,
            simulated_groups: fused_groups - analytic_groups,
            arena_bytes,
            arena_compressed_bytes,
            workers,
            layout_time: plan.layout_time,
            trace_time: plan.trace_time,
            classify_time,
            compress_time,
            simulate_time,
            select_time,
            total_time: sweep_start.elapsed(),
            worker_busy,
            ..SweepTelemetry::default()
        };
        hists.fill(&mut telemetry);
        // Busy time is measured strictly inside the simulate window, so
        // the true (unclamped) utilization can only exceed 1 by clock
        // noise; anything more means busy-time overcounting.
        debug_assert!(
            telemetry.worker_utilization() <= 1.05,
            "worker busy time overcounted: utilization {}",
            telemetry.worker_utilization()
        );
        Ok((records, telemetry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn pow2_range_is_inclusive() {
        assert_eq!(pow2_range(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(pow2_range(16, 16), vec![16]);
    }

    #[test]
    fn designs_respect_all_constraints() {
        let space = DesignSpace::paper();
        for d in space.designs() {
            assert!(d.line <= d.cache_size);
            assert!(d.cache_size / d.line >= space.min_lines);
            assert!(d.assoc <= d.cache_size / d.line);
            assert!(d.tiling <= (d.cache_size / d.line) as u64);
            assert!(d.cache_config().is_ok());
        }
    }

    #[test]
    fn paper_space_is_reasonably_sized() {
        let n = DesignSpace::paper().designs().len();
        assert!(n > 100, "space too small: {n}");
        assert!(n < 3000, "space too large: {n}");
    }

    #[test]
    fn paper_space_stays_policy_free() {
        // Legacy grids must not grow policy axes: sweep order, checkpoint
        // sweep ids, and golden outputs all depend on it.
        let designs = DesignSpace::paper().designs();
        assert_eq!(designs.len(), 425);
        assert!(designs.iter().all(|d| d.has_default_policies()));
    }

    #[test]
    fn expansive_space_exceeds_a_million_designs() {
        let space = DesignSpace::expansive();
        let n = space.design_count();
        assert!(n >= 1_000_000, "expansive space too small: {n}");
        assert!(n < 10_000_000, "expansive space too large: {n}");
    }

    #[test]
    fn design_count_matches_materialized_grids() {
        for space in [
            DesignSpace::paper(),
            DesignSpace::small(),
            DesignSpace::size_line_grid(&[16, 32], &[4, 8]),
        ] {
            assert_eq!(space.design_count(), space.designs().len());
        }
        // A grid with policy axes counts the cross product too.
        let space = DesignSpace {
            cache_sizes: vec![64, 128],
            line_sizes: vec![8],
            assocs: vec![1, 2],
            tilings: vec![1, 2],
            min_lines: 2,
            replacements: vec![Replacement::Lru, Replacement::Fifo],
            write_policies: vec![
                WritePolicy::WriteBackAllocate,
                WritePolicy::WriteThroughNoAllocate,
            ],
        };
        assert_eq!(space.design_count(), space.designs().len());
        assert_eq!(space.design_count(), 2 * 2 * 2 * 2 * 2);
    }

    #[test]
    fn sweep_order_is_t_outer_b_inner() {
        let space = DesignSpace::paper();
        let designs = space.designs();
        // Cache sizes must be non-decreasing through the list.
        assert!(designs
            .windows(2)
            .all(|w| w[0].cache_size <= w[1].cache_size));
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        let k = kernels::matadd(6);
        let space = DesignSpace::small();
        let designs = space.designs();
        let explorer = Explorer::default();
        let parallel = explorer.explore_designs(&k, &designs);
        let serial: Vec<_> = designs
            .iter()
            .map(|&d| explorer.evaluator.evaluate(&k, d))
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.design, s.design);
            assert_eq!(p.miss_rate, s.miss_rate);
            assert_eq!(p.energy_nj, s.energy_nj);
        }
    }

    #[test]
    fn grid_space_is_direct_mapped_untiled() {
        let g = DesignSpace::size_line_grid(&[16, 32], &[4, 8]);
        for d in g.designs() {
            assert_eq!(d.assoc, 1);
            assert_eq!(d.tiling, 1);
        }
    }

    #[test]
    fn steal_loop_visits_every_job_exactly_once() {
        for workers in [1, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
            let busy = steal_loop(workers, hits.len(), |w, i| {
                assert!(w < workers);
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(!busy.is_empty() && busy.len() <= workers);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "job {i} ({workers} workers)");
            }
        }
    }

    #[test]
    fn serial_and_stealing_sweeps_are_bit_identical() {
        let k = kernels::compress(15);
        let designs = DesignSpace::small().designs();
        let serial = Explorer::default()
            .with_workers(1)
            .explore_designs(&k, &designs);
        let parallel = Explorer::default()
            .with_workers(4)
            .explore_designs(&k, &designs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn engine_matches_single_design_evaluation() {
        let k = kernels::matadd(6);
        let designs = DesignSpace::small().designs();
        let explorer = Explorer::default();
        let swept = explorer.explore_designs(&k, &designs);
        for (rec, &d) in swept.iter().zip(&designs) {
            let lone = explorer.evaluator.evaluate(&k, d);
            assert_eq!(*rec, lone, "sweep diverged from evaluate() at {d}");
        }
    }

    #[test]
    fn telemetry_counts_are_consistent() {
        let k = kernels::matadd(6);
        let space = DesignSpace {
            cache_sizes: vec![64, 128],
            line_sizes: vec![8],
            assocs: vec![1, 2, 4],
            tilings: vec![1, 2],
            min_lines: 2,
            ..Default::default()
        };
        let designs = space.designs();
        let (records, t) = Explorer::default().explore_designs_with_telemetry(&k, &designs);
        assert_eq!(records.len(), designs.len());
        assert_eq!(t.designs_evaluated, designs.len());
        assert_eq!(t.layouts_computed, 2); // (64, 8) and (128, 8)
                                           // At most two distinct layouts x two tilings; at least one trace
                                           // per tiling (layouts with equal contents share a trace).
        assert!(
            (2..=4).contains(&t.traces_generated),
            "{}",
            t.traces_generated
        );
        assert!(t.trace_events_generated > 0);
        // Three associativities per (T, L, B) replay each trace; reuse must
        // exceed generation.
        assert!(t.trace_events_replayed > t.trace_events_generated);
        assert_eq!(
            t.trace_events_reused(),
            t.trace_events_replayed - t.trace_events_generated
        );
        assert!(t.workers >= 1);
        assert!(!t.worker_busy.is_empty());
    }

    #[test]
    fn fused_and_per_design_engines_are_bit_identical() {
        let k = kernels::compress(15);
        let space = DesignSpace {
            cache_sizes: vec![32, 64, 128],
            line_sizes: vec![4, 8, 16],
            assocs: vec![1, 2],
            tilings: vec![1, 2],
            min_lines: 2,
            ..Default::default()
        };
        let designs = space.designs();
        let fused = Explorer::default()
            .with_engine(Engine::Fused)
            .explore_designs(&k, &designs);
        let per_design = Explorer::default()
            .with_engine(Engine::PerDesign)
            .explore_designs(&k, &designs);
        assert_eq!(fused, per_design);
    }

    #[test]
    fn fused_engine_scans_less_than_it_replays() {
        let k = kernels::matadd(6);
        let space = DesignSpace {
            cache_sizes: vec![64, 128],
            line_sizes: vec![8],
            assocs: vec![1, 2, 4],
            tilings: vec![1],
            min_lines: 2,
            ..Default::default()
        };
        let designs = space.designs();
        let (_, fused) = Explorer::default()
            .with_engine(Engine::Fused)
            .explore_designs_with_telemetry(&k, &designs);
        assert!(fused.fused_groups > 0);
        assert!(fused.max_bank_width >= 3); // 3 associativities share a slice
        assert!(fused.trace_events_scanned < fused.trace_events_replayed);
        assert_eq!(
            fused.trace_events_avoided(),
            fused.trace_events_replayed - fused.trace_events_scanned
        );
        let (_, per) = Explorer::default()
            .with_engine(Engine::PerDesign)
            .explore_designs_with_telemetry(&k, &designs);
        assert_eq!(per.fused_groups, 0);
        assert_eq!(per.max_bank_width, 0);
        assert_eq!(per.trace_events_scanned, per.trace_events_replayed);
        assert_eq!(per.trace_events_avoided(), 0);
        // Logical replay counts agree across engines.
        assert_eq!(per.trace_events_replayed, fused.trace_events_replayed);
    }

    #[test]
    fn engine_display_matches_cli_names() {
        assert_eq!(Engine::Fused.to_string(), "fused");
        assert_eq!(Engine::PerDesign.to_string(), "per-design");
        assert_eq!(Engine::default(), Engine::Fused);
    }

    #[test]
    fn empty_design_list_yields_empty_sweep() {
        let k = kernels::matadd(4);
        let (records, t) = Explorer::default().explore_designs_with_telemetry(&k, &[]);
        assert!(records.is_empty());
        assert_eq!(t.designs_evaluated, 0);
        assert_eq!(t.trace_events_generated, 0);
        assert_eq!(t.trace_reuse_factor(), 1.0);
    }

    #[test]
    fn duplicate_designs_are_each_evaluated() {
        let k = kernels::matadd(5);
        let d = CacheDesign::new(64, 8, 1, 1);
        let (records, t) = Explorer::default().explore_designs_with_telemetry(&k, &[d, d, d]);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], records[1]);
        assert_eq!(records[1], records[2]);
        assert_eq!(t.traces_generated, 1);
        assert_eq!(t.trace_events_replayed, 3 * t.trace_events_generated);
    }
}
