//! The MemExplore sweep.

use crate::metrics::{CacheDesign, Evaluator, Record};
use loopir::Kernel;

/// The swept parameter ranges (all powers of two, per the paper's
/// `Algorithm MemExplore`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DesignSpace {
    /// Candidate cache sizes `T` in bytes.
    pub cache_sizes: Vec<usize>,
    /// Candidate line sizes `L` in bytes (filtered to `L ≤ T / min_lines`).
    pub line_sizes: Vec<usize>,
    /// Candidate associativities `S` (filtered to `S ≤ T/L`).
    pub assocs: Vec<usize>,
    /// Candidate tiling sizes `B` (filtered to `B ≤ T/L`).
    pub tilings: Vec<u64>,
    /// Minimum number of cache lines per configuration (the paper's Fig. 3
    /// restricts to ≥ 4 lines).
    pub min_lines: usize,
}

impl DesignSpace {
    /// The paper's evaluation grid: `T` ∈ 16…1024, `L` ∈ 4…64,
    /// `S` ∈ {1, 2, 4, 8}, `B` ∈ 1…16, at least 4 lines.
    pub fn paper() -> Self {
        DesignSpace {
            cache_sizes: pow2_range(16, 1024),
            line_sizes: pow2_range(4, 64),
            assocs: vec![1, 2, 4, 8],
            tilings: vec![1, 2, 4, 8, 16],
            min_lines: 4,
        }
    }

    /// A small grid for tests and doc examples (direct-mapped, untiled).
    pub fn small() -> Self {
        DesignSpace {
            cache_sizes: pow2_range(16, 128),
            line_sizes: pow2_range(4, 16),
            assocs: vec![1],
            tilings: vec![1],
            min_lines: 2,
        }
    }

    /// Direct-mapped, untiled sweep over the given size/line ranges — the
    /// grid of the paper's Figs. 1–4.
    pub fn size_line_grid(cache_sizes: &[usize], line_sizes: &[usize]) -> Self {
        DesignSpace {
            cache_sizes: cache_sizes.to_vec(),
            line_sizes: line_sizes.to_vec(),
            assocs: vec![1],
            tilings: vec![1],
            min_lines: 1,
        }
    }

    /// Enumerates all valid designs in sweep order
    /// (`T` outer … `B` inner, as in the paper's pseudocode).
    pub fn designs(&self) -> Vec<CacheDesign> {
        let mut out = Vec::new();
        for &t in &self.cache_sizes {
            for &l in &self.line_sizes {
                if l > t || t / l < self.min_lines {
                    continue;
                }
                for &s in &self.assocs {
                    if s > t / l {
                        continue;
                    }
                    for &b in &self.tilings {
                        if b > (t / l) as u64 {
                            continue;
                        }
                        out.push(CacheDesign::new(t, l, s, b));
                    }
                }
            }
        }
        out
    }
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo > 0 && lo.is_power_of_two() && hi.is_power_of_two() && lo <= hi);
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

/// Runs the sweep, fanning designs out across worker threads.
///
/// # Example
///
/// ```
/// use memexplore::{DesignSpace, Explorer};
/// use loopir::kernels;
///
/// let records = Explorer::default().explore(&kernels::matadd(6), &DesignSpace::small());
/// assert!(!records.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Explorer {
    /// Per-design evaluator.
    pub evaluator: Evaluator,
}

impl Explorer {
    /// An explorer around a specific evaluator.
    pub fn new(evaluator: Evaluator) -> Self {
        Explorer { evaluator }
    }

    /// Evaluates every design of `space` on `kernel`. Results come back in
    /// sweep order regardless of thread scheduling.
    pub fn explore(&self, kernel: &Kernel, space: &DesignSpace) -> Vec<Record> {
        let designs = space.designs();
        self.explore_designs(kernel, &designs)
    }

    /// Evaluates an explicit design list (in order).
    ///
    /// The off-chip layout is computed once per `(T, L)` pair — it does not
    /// depend on associativity or tiling — and shared across the sweep.
    pub fn explore_designs(&self, kernel: &Kernel, designs: &[CacheDesign]) -> Vec<Record> {
        // Precompute layouts (the placement search dominates design cost).
        let mut layouts: std::collections::HashMap<(usize, usize), (loopir::DataLayout, bool)> =
            std::collections::HashMap::new();
        for d in designs {
            layouts
                .entry((d.cache_size, d.line))
                .or_insert_with(|| self.evaluator.layout_for(kernel, d.cache_size, d.line));
        }
        let eval_one = |d: CacheDesign| {
            let (layout, cf) = &layouts[&(d.cache_size, d.line)];
            self.evaluator.evaluate_with_layout(kernel, d, layout, *cf)
        };

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(designs.len().max(1));
        if workers <= 1 || designs.len() < 4 {
            return designs.iter().map(|&d| eval_one(d)).collect();
        }
        let mut slots: Vec<Option<Record>> = vec![None; designs.len()];
        std::thread::scope(|scope| {
            let chunk = designs.len().div_ceil(workers);
            for (designs_chunk, slots_chunk) in
                designs.chunks(chunk).zip(slots.chunks_mut(chunk))
            {
                let eval_one = &eval_one;
                scope.spawn(move || {
                    for (d, slot) in designs_chunk.iter().zip(slots_chunk.iter_mut()) {
                        *slot = Some(eval_one(*d));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every slot filled by its worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn pow2_range_is_inclusive() {
        assert_eq!(pow2_range(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(pow2_range(16, 16), vec![16]);
    }

    #[test]
    fn designs_respect_all_constraints() {
        let space = DesignSpace::paper();
        for d in space.designs() {
            assert!(d.line <= d.cache_size);
            assert!(d.cache_size / d.line >= space.min_lines);
            assert!(d.assoc <= d.cache_size / d.line);
            assert!(d.tiling <= (d.cache_size / d.line) as u64);
            assert!(d.cache_config().is_ok());
        }
    }

    #[test]
    fn paper_space_is_reasonably_sized() {
        let n = DesignSpace::paper().designs().len();
        assert!(n > 100, "space too small: {n}");
        assert!(n < 3000, "space too large: {n}");
    }

    #[test]
    fn sweep_order_is_t_outer_b_inner() {
        let space = DesignSpace::paper();
        let designs = space.designs();
        // Cache sizes must be non-decreasing through the list.
        assert!(designs.windows(2).all(|w| w[0].cache_size <= w[1].cache_size));
    }

    #[test]
    fn parallel_and_serial_results_agree() {
        let k = kernels::matadd(6);
        let space = DesignSpace::small();
        let designs = space.designs();
        let explorer = Explorer::default();
        let parallel = explorer.explore_designs(&k, &designs);
        let serial: Vec<_> = designs
            .iter()
            .map(|&d| explorer.evaluator.evaluate(&k, d))
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.design, s.design);
            assert_eq!(p.miss_rate, s.miss_rate);
            assert_eq!(p.energy_nj, s.energy_nj);
        }
    }

    #[test]
    fn grid_space_is_direct_mapped_untiled() {
        let g = DesignSpace::size_line_grid(&[16, 32], &[4, 8]);
        for d in g.designs() {
            assert_eq!(d.assoc, 1);
            assert_eq!(d.tiling, 1);
        }
    }
}
