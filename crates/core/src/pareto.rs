//! Multi-objective exploration: Pareto frontiers with admissible
//! branch-and-bound pruning.
//!
//! The paper's `Algorithm MemExplore` simulates every `(T, L, S, B)` point
//! and then selects one configuration under bounds. The multi-objective
//! mode instead returns the whole `(cycles, energy, cache size)` Pareto
//! frontier — and it does not have to simulate the whole space to get it
//! exactly.
//!
//! # Why pruning is lossless
//!
//! For a candidate design `d` we can compute, *without simulating it*,
//! admissible (never-overestimating) lower bounds on its true cycles and
//! energy:
//!
//! * The candidate replays a known trace (a function of its layout and
//!   tiling only). Scanning that trace once yields the **exact** number of
//!   line-level accesses `n` and the number of **distinct lines** `m`
//!   ([`analysis::TraceFootprint`]). A cold cache must miss each distinct
//!   line's first touch regardless of `T`, `S` or replacement, so the true
//!   miss count is `≥ m` and the true hit count is `≤ n − m`.
//! * Cycles and energy are both strictly increasing in the miss count, so
//!   evaluating the models at `(hits = n − m, misses = m)` bounds them from
//!   below. Crucially the bounds are computed with the **same expressions**
//!   the evaluator uses (`CycleModel::cycles_from_counts`, `hits·E_hit +
//!   misses·E_miss`), so when a candidate really does achieve the
//!   compulsory floor the bound equals its true metric *bitwise* — there is
//!   no floating-point slack to cross.
//! * The per-access address-bus switching `Add_bs` enters the energy model
//!   and depends only on the replayed trace, so for untiled candidates
//!   (whose trace is the one scanned) it is used exactly; for tiled
//!   candidates it is lower-bounded by 0 (switching energy is
//!   non-negative).
//!
//! If some already-simulated record `r` satisfies `r.cycles ≤ C_lb`,
//! `r.energy ≤ E_lb`, `r.T ≤ T_d`, strictly in at least one coordinate,
//! then `r` strictly dominates `d`'s true record and `d` cannot be on the
//! frontier — it is skipped. Skipping it cannot change the frontier:
//! dominance is transitive, so anything `d`'s true record would have
//! dominated is also dominated by `r`, which *is* simulated. The pruned
//! frontier is therefore bit-identical to the exhaustive one (the oracle
//! test in `tests/pareto_oracle.rs` asserts exactly this on every paper
//! kernel).
//!
//! # Search order
//!
//! Designs are processed in groups of equal cache size, in sweep order,
//! and each group in two waves: first the `(S=1, B=1)` bases, then the
//! rest. Bases of small caches are cheap and dominate aggressively (the
//! cell-array energy term grows linearly in `T`), so by the time the large
//! half of the space is reached, its groups are usually pruned wholesale —
//! the branch-and-bound "incumbent set" is the running list of evaluated
//! records. The analytic minimum-cache-size bound
//! ([`analysis::MinCacheReport`]) gates the bound computation: below the
//! conflict-free minimum for the candidate's line size the compulsory
//! floor is unreachable, so the pruner does not bother scanning for a
//! dominator there.
//!
//! With [`Engine::Fused`] (the default) each wave's survivors are grouped
//! by shared trace slice and simulated as one `memsim::ReplayBank` per
//! group — the pruner drops designs from a bank *before* the scan starts,
//! so fused lockstep only steps lanes that must be measured. Prune
//! decisions are order-independent predicates over the already-evaluated
//! record list (which grows only at wave boundaries in both engines), so
//! banking within a wave changes neither the prune set nor the frontier:
//! both stay bit-identical to the per-design engine.

use crate::analytic::{kernel_footprint_bytes, try_group_records};
use crate::explore::{steal_loop, DesignSpace, Engine, Explorer, SweepHists, OBS_TICK_EVENTS};
use crate::metrics::{read_trace, CacheDesign, Record};
use crate::obs::{FieldValue, Span};
use crate::select::pareto3;
use crate::telemetry::SweepTelemetry;
use analysis::{MinCacheReport, TraceFootprint};
use loopir::transform::tile_all;
use loopir::{DataLayout, Kernel};
use memsim::{BusMonitor, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Per-trace quantities the bounds are built from: the exact split-access
/// count, the compulsory-miss floor, and the exact average address-bus
/// switching of the untiled trace.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BoundInputs {
    /// Line-level accesses (`n`) — exactly what the simulator will count.
    pub(crate) accesses: u64,
    /// Distinct lines touched (`m`) — admissible lower bound on misses.
    pub(crate) min_misses: u64,
    /// Exact `Add_bs` of the untiled trace at this line size.
    pub(crate) add_bs: f64,
}

/// Exact average CPU-bus switching for `trace` at line size `line`,
/// replicating the simulator's line splitting and bus observation order
/// bit-for-bit (see `memsim::Simulator::step`).
pub(crate) fn exact_add_bs(
    trace: &[TraceEvent],
    line: usize,
    encoding: memsim::BusEncoding,
) -> f64 {
    let shift = (line as u64).trailing_zeros();
    let mut bus = BusMonitor::new(encoding);
    for e in trace {
        let size = e.size.max(1) as u64;
        let first_line = e.addr >> shift;
        let last_line = (e.addr + size - 1) >> shift;
        for l in first_line..=last_line {
            let addr = if l == first_line { e.addr } else { l << shift };
            bus.observe_cpu(addr);
        }
    }
    bus.cpu().avg_switches()
}

impl Explorer {
    /// The exhaustive reference: sweep the whole space, then extract the
    /// three-objective frontier with [`pareto3`]. Telemetry reports the
    /// full sweep plus `frontier_size`.
    pub fn pareto_exhaustive(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
    ) -> (Vec<Record>, SweepTelemetry) {
        let (records, mut telemetry) = self.explore_with_telemetry(kernel, space);
        let select_start = Instant::now();
        let frontier = pareto3(&records);
        telemetry.select_time += select_start.elapsed();
        telemetry.frontier_size = frontier.len();
        telemetry.total_time += select_start.elapsed();
        (frontier, telemetry)
    }

    /// The pruned engine: branch-and-bound over the sweep with admissible
    /// cycle/energy lower bounds. Returns a frontier bit-identical to
    /// [`pareto_exhaustive`](Self::pareto_exhaustive) (see the module
    /// docs for the argument), usually after simulating a fraction of the
    /// space; `telemetry.designs_pruned` counts the skipped designs.
    pub fn pareto_pruned(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
    ) -> (Vec<Record>, SweepTelemetry) {
        let sweep_start = Instant::now();
        let designs = space.designs();
        let workers = self.worker_count(designs.len());
        let obs = self.obs.as_deref();
        if let Some(o) = obs {
            o.counters
                .total
                .fetch_add(designs.len() as u64, Ordering::Relaxed);
        }
        let hists = SweepHists::default();

        // Caches shared across groups. Layouts are deduplicated by value
        // (distinct (T, L) pairs frequently optimize to the same layout),
        // traces are keyed by (layout id, B) exactly as in the exhaustive
        // engine, and bound inputs by (layout id, L).
        let mut pair_layout: HashMap<(usize, usize), (usize, bool)> = HashMap::new();
        let mut unique_layouts: Vec<DataLayout> = Vec::new();
        let mut traces: HashMap<(usize, u64), Vec<TraceEvent>> = HashMap::new();
        let mut tiled: HashMap<u64, Kernel> = HashMap::new();
        let mut bounds: HashMap<(usize, usize), BoundInputs> = HashMap::new();
        let mut min_cache: HashMap<usize, u64> = HashMap::new();

        let mut evaluated: Vec<Record> = Vec::new();
        let mut telemetry = SweepTelemetry {
            workers,
            ..SweepTelemetry::default()
        };
        let mut worker_busy: Vec<Duration> = Vec::new();

        // Process runs of equal cache size in sweep order.
        let mut group_start = 0;
        while group_start < designs.len() {
            let t = designs[group_start].cache_size;
            let mut group_end = group_start;
            while group_end < designs.len() && designs[group_end].cache_size == t {
                group_end += 1;
            }
            let group = &designs[group_start..group_end];
            group_start = group_end;

            // Layouts for this group's new (T, L) pairs, computed in
            // parallel then deduplicated by value.
            let phase_start = Instant::now();
            let new_pairs: Vec<(usize, usize)> = {
                let mut seen = Vec::new();
                for d in group {
                    let key = (d.cache_size, d.line);
                    if !pair_layout.contains_key(&key) && !seen.contains(&key) {
                        seen.push(key);
                    }
                }
                seen
            };
            let layout_slots: Vec<OnceLock<(DataLayout, bool)>> =
                new_pairs.iter().map(|_| OnceLock::new()).collect();
            let layout_span = Span::begin(obs, "layout");
            steal_loop(workers, new_pairs.len(), |w, i| {
                let (t, l) = new_pairs[i];
                let unit_start = Instant::now();
                let _ = layout_slots[i].set(self.evaluator.layout_for(kernel, t, l));
                let dur = unit_start.elapsed();
                hists.layout.record(dur);
                if let Some(o) = obs {
                    o.unit(
                        "layout",
                        "place",
                        w as u64,
                        dur,
                        &[
                            ("cache", FieldValue::U64(t as u64)),
                            ("line", FieldValue::U64(l as u64)),
                        ],
                    );
                }
            });
            drop(layout_span);
            for (pair, slot) in new_pairs.iter().zip(layout_slots) {
                let (layout, conflict_free) = slot.into_inner().expect("layout slot filled");
                let id = match unique_layouts.iter().position(|u| *u == layout) {
                    Some(id) => id,
                    None => {
                        unique_layouts.push(layout);
                        unique_layouts.len() - 1
                    }
                };
                pair_layout.insert(*pair, (id, conflict_free));
                telemetry.layouts_computed += 1;
            }
            telemetry.layout_time += phase_start.elapsed();

            // Bound inputs per (layout id, L): scan the untiled trace once.
            // The trace is materialized here (and kept — the bases replay
            // it), so bound preparation shares the trace-once discipline.
            for d in group {
                let (id, _) = pair_layout[&(d.cache_size, d.line)];
                if bounds.contains_key(&(id, d.line)) {
                    continue;
                }
                let trace_start = Instant::now();
                if let std::collections::hash_map::Entry::Vacant(slot) = traces.entry((id, 1)) {
                    let base = tiled.entry(1).or_insert_with(|| tile_all(kernel, 1));
                    let trace = read_trace(base, &unique_layouts[id]);
                    telemetry.traces_generated += 1;
                    telemetry.trace_events_generated += trace.len() as u64;
                    slot.insert(trace);
                }
                telemetry.trace_time += trace_start.elapsed();
                let scan_start = Instant::now();
                let trace = &traces[&(id, 1)];
                let fp =
                    TraceFootprint::analyze(d.line as u64, trace.iter().map(|e| (e.addr, e.size)));
                let add_bs = exact_add_bs(trace, d.line, self.evaluator.bus_encoding);
                bounds.insert(
                    (id, d.line),
                    BoundInputs {
                        accesses: fp.accesses,
                        min_misses: fp.min_misses(),
                        add_bs,
                    },
                );
                telemetry.bound_time += scan_start.elapsed();
            }

            // Two waves: bases (S=1, B=1) first so the rest of the group
            // can be pruned against them, then the remaining designs.
            let is_base = |d: &CacheDesign| d.assoc == 1 && d.tiling == 1;
            for wave in 0..2 {
                let members: Vec<CacheDesign> = group
                    .iter()
                    .copied()
                    .filter(|d| is_base(d) == (wave == 0))
                    .collect();
                if members.is_empty() {
                    continue;
                }

                // Bound check (serial — it only scans the evaluated list).
                let phase_start = Instant::now();
                let bound_span = Span::begin(obs, "bound");
                let wave_size = members.len();
                let survivors: Vec<CacheDesign> = members
                    .into_iter()
                    .filter(|d| {
                        let min_pow2 = min_cache_for(kernel, &mut min_cache, d.line);
                        !self.is_pruned(d, &pair_layout, &bounds, min_pow2, &evaluated)
                    })
                    .collect();
                let pruned_here = wave_size - survivors.len();
                telemetry.designs_pruned += pruned_here;
                drop(bound_span);
                if pruned_here > 0 {
                    if let Some(o) = obs {
                        o.counters
                            .pruned
                            .fetch_add(pruned_here as u64, Ordering::Relaxed);
                        o.point(
                            "bound",
                            "pruned",
                            &[
                                ("cache", FieldValue::U64(t as u64)),
                                ("wave", FieldValue::U64(wave as u64)),
                                ("count", FieldValue::U64(pruned_here as u64)),
                            ],
                        );
                    }
                }
                telemetry.bound_time += phase_start.elapsed();

                // Materialize any traces the survivors still need.
                let phase_start = Instant::now();
                for d in &survivors {
                    let (id, _) = pair_layout[&(d.cache_size, d.line)];
                    if traces.contains_key(&(id, d.tiling)) {
                        continue;
                    }
                    let tiled_kernel = tiled
                        .entry(d.tiling)
                        .or_insert_with(|| tile_all(kernel, d.tiling));
                    let trace = read_trace(tiled_kernel, &unique_layouts[id]);
                    telemetry.traces_generated += 1;
                    telemetry.trace_events_generated += trace.len() as u64;
                    traces.insert((id, d.tiling), trace);
                }
                telemetry.trace_time += phase_start.elapsed();

                // Simulate the wave's survivors with work stealing. The
                // pruner has already dropped designs from each bank, so
                // the fused engine only steps lanes that must be measured.
                let phase_start = Instant::now();
                let simulate_span = Span::begin(obs, "simulate");
                let record_slots: Vec<OnceLock<Record>> =
                    survivors.iter().map(|_| OnceLock::new()).collect();
                let replayed = AtomicUsize::new(0);
                let scanned = AtomicUsize::new(0);
                let busy = match self.engine {
                    Engine::Fused => {
                        // Trace groups within the wave: survivors sharing
                        // one (layout id, tiling) slice form one bank.
                        let mut group_of: HashMap<(usize, u64), usize> = HashMap::new();
                        let mut groups: Vec<Vec<usize>> = Vec::new();
                        for (i, d) in survivors.iter().enumerate() {
                            let (id, _) = pair_layout[&(d.cache_size, d.line)];
                            let g = *group_of.entry((id, d.tiling)).or_insert_with(|| {
                                groups.push(Vec::new());
                                groups.len() - 1
                            });
                            groups[g].push(i);
                        }
                        telemetry.fused_groups += groups.len();
                        telemetry.max_bank_width = telemetry
                            .max_bank_width
                            .max(groups.iter().map(Vec::len).max().unwrap_or(0));
                        // The frontier sweep keeps its raw traces resident
                        // (the bound scans reuse them across cache-size
                        // groups), so the analytic fast path is applied
                        // per bank inside the worker — qualifying groups
                        // skip the replay, everything else streams as
                        // before.
                        let analytic_hits = AtomicUsize::new(0);
                        let footprint = kernel_footprint_bytes(kernel);
                        let busy = steal_loop(workers, groups.len(), |w, g| {
                            let members = &groups[g];
                            let bank: Vec<(CacheDesign, bool)> = members
                                .iter()
                                .map(|&i| {
                                    let d = survivors[i];
                                    let (_, conflict_free) = pair_layout[&(d.cache_size, d.line)];
                                    (d, conflict_free)
                                })
                                .collect();
                            let d = survivors[members[0]];
                            let (id, _) = pair_layout[&(d.cache_size, d.line)];
                            let trace = &traces[&(id, d.tiling)];
                            replayed.fetch_add(trace.len() * members.len(), Ordering::Relaxed);
                            let unit_start = Instant::now();
                            if self.analytic {
                                if let Some(records) =
                                    try_group_records(&self.evaluator, footprint, &bank, trace)
                                {
                                    analytic_hits.fetch_add(1, Ordering::Relaxed);
                                    for (&i, record) in members.iter().zip(records) {
                                        let _ = record_slots[i].set(record);
                                    }
                                    let dur = unit_start.elapsed();
                                    if let Some(o) = obs {
                                        o.counters.add_done(members.len() as u64);
                                        o.unit(
                                            "simulate",
                                            "analytic",
                                            w as u64,
                                            dur,
                                            &[
                                                ("events", FieldValue::U64(trace.len() as u64)),
                                                ("width", FieldValue::U64(members.len() as u64)),
                                                ("fresh", FieldValue::U64(members.len() as u64)),
                                            ],
                                        );
                                    }
                                    return;
                                }
                            }
                            scanned.fetch_add(trace.len(), Ordering::Relaxed);
                            let records = match obs {
                                Some(o) => self.evaluator.evaluate_bank_with_trace_ticked(
                                    &bank,
                                    trace,
                                    OBS_TICK_EVENTS,
                                    &|n| o.counters.add_events(n),
                                ),
                                None => self.evaluator.evaluate_bank_with_trace(&bank, trace),
                            };
                            let dur = unit_start.elapsed();
                            hists.scan.record(dur);
                            for (&i, record) in members.iter().zip(records) {
                                let _ = record_slots[i].set(record);
                            }
                            if let Some(o) = obs {
                                o.counters.add_done(members.len() as u64);
                                o.unit(
                                    "simulate",
                                    "scan",
                                    w as u64,
                                    dur,
                                    &[
                                        ("events", FieldValue::U64(trace.len() as u64)),
                                        ("width", FieldValue::U64(members.len() as u64)),
                                        ("fresh", FieldValue::U64(members.len() as u64)),
                                    ],
                                );
                            }
                        });
                        let hits = analytic_hits.into_inner();
                        telemetry.analytic_groups += hits;
                        telemetry.simulated_groups += groups.len() - hits;
                        busy
                    }
                    Engine::PerDesign => steal_loop(workers, survivors.len(), |w, i| {
                        let d = survivors[i];
                        let (id, conflict_free) = pair_layout[&(d.cache_size, d.line)];
                        let trace = &traces[&(id, d.tiling)];
                        replayed.fetch_add(trace.len(), Ordering::Relaxed);
                        scanned.fetch_add(trace.len(), Ordering::Relaxed);
                        let unit_start = Instant::now();
                        let _ = record_slots[i].set(self.evaluator.evaluate_with_trace(
                            d,
                            trace,
                            conflict_free,
                        ));
                        let dur = unit_start.elapsed();
                        hists.design.record(dur);
                        if let Some(o) = obs {
                            o.counters.add_done(1);
                            o.counters.add_events(trace.len() as u64);
                            o.unit(
                                "simulate",
                                "sim",
                                w as u64,
                                dur,
                                &[("events", FieldValue::U64(trace.len() as u64))],
                            );
                        }
                    }),
                };
                drop(simulate_span);
                telemetry.simulate_time += phase_start.elapsed();
                telemetry.trace_events_replayed += replayed.into_inner() as u64;
                telemetry.trace_events_scanned += scanned.into_inner() as u64;
                for (i, d) in busy.into_iter().enumerate() {
                    if i < worker_busy.len() {
                        worker_busy[i] += d;
                    } else {
                        worker_busy.push(d);
                    }
                }
                for slot in record_slots {
                    evaluated.push(slot.into_inner().expect("simulate slot filled"));
                }
            }
        }

        let phase_start = Instant::now();
        let select_span = Span::begin(obs, "select");
        let frontier = pareto3(&evaluated);
        drop(select_span);
        telemetry.select_time = phase_start.elapsed();
        telemetry.designs_evaluated = evaluated.len();
        telemetry.frontier_size = frontier.len();
        telemetry.worker_busy = worker_busy;
        telemetry.total_time = sweep_start.elapsed();
        hists.fill(&mut telemetry);
        debug_assert!(
            telemetry.worker_utilization() <= 1.05,
            "worker busy time overcounted: utilization {}",
            telemetry.worker_utilization()
        );
        (frontier, telemetry)
    }

    /// Whether an evaluated record provably strictly dominates the true
    /// (unsimulated) record of `d`.
    fn is_pruned(
        &self,
        d: &CacheDesign,
        pair_layout: &HashMap<(usize, usize), (usize, bool)>,
        bounds: &HashMap<(usize, usize), BoundInputs>,
        min_pow2_cache: u64,
        evaluated: &[Record],
    ) -> bool {
        // Analytic minimum-cache gate: below the conflict-free minimum for
        // this line size the compulsory floor cannot be approached, so a
        // dominator search is a waste of time (skipping a prune is always
        // sound).
        if (d.cache_size as u64) < min_pow2_cache {
            return false;
        }
        let (id, _) = pair_layout[&(d.cache_size, d.line)];
        let b = bounds[&(id, d.line)];
        let max_hits = b.accesses - b.min_misses;
        let cycles_lb = self.evaluator.cycle_model.cycles_from_counts(
            max_hits,
            b.min_misses,
            d.assoc,
            d.line,
            d.tiling,
        );
        // The untiled trace is exactly the candidate's trace when B = 1;
        // tiling permutes it, so its switching is only bounded below by 0.
        let add_bs = if d.tiling == 1 { b.add_bs } else { 0.0 };
        let cfg = d
            .cache_config()
            .expect("design spaces only enumerate valid geometry");
        let energy_lb = max_hits as f64 * self.evaluator.energy_model.hit_energy_nj(&cfg, add_bs)
            + b.min_misses as f64 * self.evaluator.energy_model.miss_energy_nj(&cfg, add_bs);
        evaluated.iter().any(|r| {
            r.design.cache_size <= d.cache_size
                && r.cycles <= cycles_lb
                && r.energy_nj <= energy_lb
                && (r.design.cache_size < d.cache_size
                    || r.cycles < cycles_lb
                    || r.energy_nj < energy_lb)
        })
    }
}

/// Memoized `MinCacheReport::min_pow2_cache_bytes` per line size.
fn min_cache_for(kernel: &Kernel, cache: &mut HashMap<usize, u64>, line: usize) -> u64 {
    *cache
        .entry(line)
        .or_insert_with(|| MinCacheReport::analyze(kernel, line as u64).min_pow2_cache_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn pruned_matches_exhaustive_on_the_small_space() {
        let explorer = Explorer::default();
        for k in [kernels::compress(15), kernels::matadd(8), kernels::sor(15)] {
            let space = DesignSpace::small();
            let (exhaustive, te) = explorer.pareto_exhaustive(&k, &space);
            let (pruned, tp) = explorer.pareto_pruned(&k, &space);
            assert_eq!(exhaustive, pruned, "kernel {}", k.name);
            assert_eq!(te.frontier_size, exhaustive.len());
            assert_eq!(
                tp.designs_evaluated + tp.designs_pruned,
                space.designs().len(),
                "kernel {}",
                k.name
            );
        }
    }

    #[test]
    fn pruned_matches_exhaustive_with_tiling_and_assoc() {
        let k = kernels::compress(15);
        let space = DesignSpace {
            cache_sizes: vec![16, 32, 64, 128, 256, 512],
            line_sizes: vec![4, 8, 16],
            assocs: vec![1, 2, 4],
            tilings: vec![1, 2, 4],
            min_lines: 2,
            ..Default::default()
        };
        let explorer = Explorer::default();
        let (exhaustive, _) = explorer.pareto_exhaustive(&k, &space);
        let (pruned, t) = explorer.pareto_pruned(&k, &space);
        assert_eq!(exhaustive, pruned);
        assert!(t.designs_pruned > 0, "expected pruning on compress(15)");
    }

    #[test]
    fn pruning_actually_skips_large_caches_on_compress() {
        // Compress(31)'s working set fits well under 1 KiB, so the big
        // half of the paper grid must prune.
        let k = kernels::compress(31);
        let (frontier, t) = Explorer::default().pareto_pruned(&k, &DesignSpace::paper());
        assert!(!frontier.is_empty());
        assert!(
            t.designs_pruned as f64 >= 0.3 * t.designs_considered() as f64,
            "pruned only {} of {}",
            t.designs_pruned,
            t.designs_considered()
        );
        // Pruned designs generate no records — the frontier never
        // references a cache size the bound ruled out entirely.
        assert_eq!(t.frontier_size, frontier.len());
    }

    #[test]
    fn serial_and_parallel_pruned_sweeps_agree() {
        let k = kernels::sor(15);
        let space = DesignSpace::small();
        let (serial, _) = Explorer::default()
            .with_workers(1)
            .pareto_pruned(&k, &space);
        let (parallel, _) = Explorer::default()
            .with_workers(4)
            .pareto_pruned(&k, &space);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fused_and_per_design_pruned_sweeps_agree() {
        let k = kernels::compress(15);
        let space = DesignSpace {
            cache_sizes: vec![16, 32, 64, 128, 256],
            line_sizes: vec![4, 8, 16],
            assocs: vec![1, 2],
            tilings: vec![1, 2],
            min_lines: 2,
            ..Default::default()
        };
        let (fused, tf) = Explorer::default()
            .with_engine(Engine::Fused)
            .pareto_pruned(&k, &space);
        let (per, tp) = Explorer::default()
            .with_engine(Engine::PerDesign)
            .pareto_pruned(&k, &space);
        assert_eq!(fused, per);
        // Same prune decisions, different scheduling.
        assert_eq!(tf.designs_pruned, tp.designs_pruned);
        assert_eq!(tf.designs_evaluated, tp.designs_evaluated);
        assert_eq!(tf.trace_events_replayed, tp.trace_events_replayed);
        assert!(tf.fused_groups > 0);
        assert!(tf.trace_events_scanned <= tf.trace_events_replayed);
        assert_eq!(tp.fused_groups, 0);
        assert_eq!(tp.trace_events_scanned, tp.trace_events_replayed);
    }

    #[test]
    fn frontier_members_come_from_the_design_space() {
        let k = kernels::matadd(6);
        let space = DesignSpace::small();
        let designs = space.designs();
        let (frontier, _) = Explorer::default().pareto_pruned(&k, &space);
        for r in &frontier {
            assert!(designs.contains(&r.design), "{} not in space", r.design);
        }
    }

    #[test]
    fn exact_add_bs_matches_the_simulator() {
        use memsim::{BusEncoding, CacheConfig, Simulator};
        let k = kernels::compress(15);
        let layout = loopir::DataLayout::natural(&k);
        let trace = read_trace(&k, &layout);
        for line in [4usize, 8, 16] {
            let ours = exact_add_bs(&trace, line, BusEncoding::Gray);
            let cfg = CacheConfig::new(64.max(line * 4), line, 1).unwrap();
            let mut sim = Simulator::with_options(cfg, BusEncoding::Gray, false);
            sim.run_slice(&trace);
            let theirs = sim.into_report().cpu_bus.avg_switches();
            assert_eq!(ours, theirs, "line={line}");
        }
    }

    #[test]
    fn empty_space_produces_empty_frontier() {
        let k = kernels::matadd(4);
        let space = DesignSpace {
            cache_sizes: vec![],
            line_sizes: vec![],
            assocs: vec![],
            tilings: vec![],
            min_lines: 1,
            ..Default::default()
        };
        let (frontier, t) = Explorer::default().pareto_pruned(&k, &space);
        assert!(frontier.is_empty());
        assert_eq!(t.designs_evaluated, 0);
        assert_eq!(t.designs_pruned, 0);
    }
}
