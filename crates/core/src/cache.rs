//! Content-addressed result cache with single-flight deduplication.
//!
//! The exploration loop is a pure function of `(kernel IR, design grid,
//! cycle/energy model, engine, objective)`, which makes completed results
//! perfectly memoizable. This module provides the serving layer's memory:
//!
//! * [`CacheKey`] — a 128-bit FNV-1a hash over a caller-supplied canonical
//!   byte string. Callers are responsible for canonicalization (the serve
//!   layer renders the parsed job spec, not the request bytes, so key order
//!   / whitespace / explicit defaults cannot perturb the key).
//! * [`ResultCache`] — a bounded map from key to immutable result bytes with
//!   LRU eviction and **single-flight** semantics: when several callers ask
//!   for the same missing key concurrently, exactly one (the *leader*)
//!   computes while the rest block on the in-flight slot and receive the
//!   leader's bytes. A leader that dies (panic, cancellation) abandons the
//!   flight; one waiter is promoted to retry so the key is never wedged.
//!
//! The cache stores opaque `Arc<[u8]>` values; hits are byte-identical to
//! the miss that populated them by construction. Only *completed* results
//! should be fulfilled as cacheable — cancelled or failed jobs must either
//! fulfill uncacheable (waiters still get the bytes, nothing is stored) or
//! abandon (waiters retry).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a 128-bit hash (offset basis and prime from the published spec).
/// The 64-bit sibling lives in [`crate::checkpoint::fnv1a`]; keys that
/// address arbitrary user-submitted jobs get the wider variant so that
/// accidental collisions are out of the picture at any realistic scale.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

/// A content-address: the 128-bit FNV-1a hash of a canonical job rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Hashes a canonical byte string.
    pub fn from_canonical(bytes: &[u8]) -> Self {
        CacheKey(fnv1a_128(bytes))
    }

    /// Lower-case hex rendering (32 digits), used in logs and responses.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// State of an in-flight computation, guarded by `Flight::state`.
enum FlightState {
    /// Leader is computing; waiters block on the condvar.
    Pending,
    /// Leader delivered bytes (cacheable or not); waiters take the Arc.
    Done(Arc<Vec<u8>>),
    /// Leader died without delivering; one waiter retries the lookup.
    Abandoned,
}

/// Shared slot for one in-flight key.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Blocks until the leader resolves the flight. `None` = abandoned.
    fn wait(&self) -> Option<Arc<Vec<u8>>> {
        let mut st = self.state.lock().unwrap();
        loop {
            match &*st {
                FlightState::Pending => st = self.cv.wait(st).unwrap(),
                FlightState::Done(v) => return Some(Arc::clone(v)),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn resolve(&self, outcome: FlightState) {
        let mut st = self.state.lock().unwrap();
        *st = outcome;
        self.cv.notify_all();
    }
}

enum Slot {
    /// A leader is computing this key.
    InFlight(Arc<Flight>),
    /// Completed bytes, subject to LRU eviction.
    Ready { value: Arc<Vec<u8>>, last_used: u64 },
}

struct Inner {
    map: HashMap<u128, Slot>,
    /// Monotonic logical clock for LRU ordering.
    tick: u64,
    /// Total bytes held by `Ready` slots.
    bytes: usize,
}

/// Point-in-time counters, all monotonically increasing except
/// `entries`/`bytes` which describe the current resident set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a `Ready` slot.
    pub hits: u64,
    /// Lookups that became the leader for a new flight.
    pub misses: u64,
    /// Lookups that joined an existing flight and received the leader's bytes.
    pub joins: u64,
    /// Ready entries evicted by the LRU policy.
    pub evictions: u64,
    /// Flights abandoned by their leader.
    pub abandoned: u64,
    /// Resident `Ready` entries.
    pub entries: usize,
    /// Resident `Ready` bytes.
    pub bytes: usize,
}

/// Outcome of [`ResultCache::lookup`].
pub enum Lookup {
    /// Bytes were already resident (`coalesced == false`) or were produced
    /// by a concurrent leader this call joined (`coalesced == true`).
    Hit {
        value: Arc<Vec<u8>>,
        coalesced: bool,
    },
    /// This caller is the leader: compute the result, then call
    /// [`FlightGuard::fulfill`]. Dropping the guard without fulfilling
    /// abandons the flight (waiters retry).
    Miss(FlightGuard),
}

/// Leader's obligation token for a single in-flight key.
pub struct FlightGuard {
    cache: Arc<CacheShared>,
    key: CacheKey,
    flight: Arc<Flight>,
    fulfilled: bool,
}

impl FlightGuard {
    /// The key this flight is computing.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// Delivers `value` to every waiter. When `cacheable`, the bytes are
    /// also stored for future lookups (subject to eviction); otherwise the
    /// slot is removed so the next lookup recomputes.
    pub fn fulfill(mut self, value: Arc<Vec<u8>>, cacheable: bool) {
        self.fulfilled = true;
        let mut inner = self.cache.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if cacheable {
            inner.bytes += value.len();
            inner.map.insert(
                self.key.0,
                Slot::Ready {
                    value: Arc::clone(&value),
                    last_used: tick,
                },
            );
            self.cache.evict_locked(&mut inner);
        } else {
            inner.map.remove(&self.key.0);
        }
        drop(inner);
        self.flight.resolve(FlightState::Done(value));
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Leader died without delivering: clear the slot and wake waiters
        // so one of them can retry as the new leader.
        let mut inner = self.cache.inner.lock().unwrap();
        if let Some(Slot::InFlight(f)) = inner.map.get(&self.key.0) {
            if Arc::ptr_eq(f, &self.flight) {
                inner.map.remove(&self.key.0);
            }
        }
        drop(inner);
        self.cache.abandoned.fetch_add(1, Ordering::Relaxed);
        self.flight.resolve(FlightState::Abandoned);
    }
}

struct CacheShared {
    inner: Mutex<Inner>,
    max_entries: usize,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    evictions: AtomicU64,
    abandoned: AtomicU64,
}

impl CacheShared {
    /// Evicts least-recently-used `Ready` slots until both bounds hold.
    /// In-flight slots are never evicted. O(n) scan per eviction — the
    /// resident set is small (hundreds) relative to job cost (milliseconds
    /// of simulation), so simplicity wins over an intrusive LRU list.
    fn evict_locked(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .map
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .count();
            // A lone entry always stays resident (`max_entries >= 1`), even
            // when a single oversized value exceeds `max_bytes` — evicting
            // it would just force the next lookup to recompute the same
            // oversized value.
            if ready <= 1 {
                return;
            }
            if ready <= self.max_entries && inner.bytes <= self.max_bytes {
                return;
            }
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, *k)),
                    Slot::InFlight(_) => None,
                })
                .min();
            let Some((_, key)) = victim else { return };
            if let Some(Slot::Ready { value, .. }) = inner.map.remove(&key) {
                inner.bytes -= value.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Bounded content-addressed cache with single-flight deduplication.
/// Cloning is cheap (shared state).
#[derive(Clone)]
pub struct ResultCache {
    shared: Arc<CacheShared>,
}

impl ResultCache {
    /// `max_entries` / `max_bytes` bound the resident `Ready` set; both are
    /// clamped to at least 1 so the cache is never degenerate.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        ResultCache {
            shared: Arc::new(CacheShared {
                inner: Mutex::new(Inner {
                    map: HashMap::new(),
                    tick: 0,
                    bytes: 0,
                }),
                max_entries: max_entries.max(1),
                max_bytes: max_bytes.max(1),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                joins: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
            }),
        }
    }

    /// Looks up `key`, blocking on an in-flight computation if one exists.
    ///
    /// Returns [`Lookup::Hit`] with the resident (or just-computed) bytes,
    /// or [`Lookup::Miss`] making this caller the leader. If a joined
    /// flight is abandoned, the lookup retries internally — callers never
    /// observe abandonment.
    pub fn lookup(&self, key: CacheKey) -> Lookup {
        loop {
            let flight = {
                let mut inner = self.shared.inner.lock().unwrap();
                inner.tick += 1;
                let tick = inner.tick;
                match inner.map.get_mut(&key.0) {
                    Some(Slot::Ready { value, last_used }) => {
                        *last_used = tick;
                        let value = Arc::clone(value);
                        drop(inner);
                        self.shared.hits.fetch_add(1, Ordering::Relaxed);
                        return Lookup::Hit {
                            value,
                            coalesced: false,
                        };
                    }
                    Some(Slot::InFlight(f)) => Arc::clone(f),
                    None => {
                        let flight = Flight::new();
                        inner.map.insert(key.0, Slot::InFlight(Arc::clone(&flight)));
                        drop(inner);
                        self.shared.misses.fetch_add(1, Ordering::Relaxed);
                        return Lookup::Miss(FlightGuard {
                            cache: Arc::clone(&self.shared),
                            key,
                            flight,
                            fulfilled: false,
                        });
                    }
                }
            };
            // Block outside the map lock.
            match flight.wait() {
                Some(value) => {
                    self.shared.joins.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit {
                        value,
                        coalesced: true,
                    };
                }
                None => continue, // abandoned — retry as potential new leader
            }
        }
    }

    /// Removes one entry (Ready only); returns whether something was evicted.
    pub fn evict(&self, key: CacheKey) -> bool {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.map.get(&key.0) {
            Some(Slot::Ready { .. }) => {
                if let Some(Slot::Ready { value, .. }) = inner.map.remove(&key.0) {
                    inner.bytes -= value.len();
                }
                self.shared.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Drops every `Ready` entry (in-flight slots are untouched).
    pub fn clear(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        let keys: Vec<u128> = inner
            .map
            .iter()
            .filter_map(|(k, s)| matches!(s, Slot::Ready { .. }).then_some(*k))
            .collect();
        for k in keys {
            if let Some(Slot::Ready { value, .. }) = inner.map.remove(&k) {
                inner.bytes -= value.len();
                self.shared.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the counters and resident-set size.
    pub fn stats(&self) -> CacheStats {
        let inner = self.shared.inner.lock().unwrap();
        let entries = inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        CacheStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            joins: self.shared.joins.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            abandoned: self.shared.abandoned.load(Ordering::Relaxed),
            entries,
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn bytes(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn fnv1a_128_spec_vectors() {
        // Offset basis: hash of the empty string.
        assert_eq!(fnv1a_128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        // One byte mixes: must differ from the basis and be deterministic.
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b""));
        assert_eq!(fnv1a_128(b"a"), fnv1a_128(b"a"));
        assert_ne!(fnv1a_128(b"ab"), fnv1a_128(b"ba"));
    }

    #[test]
    fn key_hex_is_32_digits() {
        assert_eq!(CacheKey(0).to_hex().len(), 32);
        assert_eq!(CacheKey(1).to_hex(), format!("{:032x}", 1));
        assert_eq!(CacheKey(u128::MAX).to_hex(), "f".repeat(32));
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = ResultCache::new(8, 1 << 20);
        let key = CacheKey::from_canonical(b"job-1");
        let Lookup::Miss(guard) = cache.lookup(key) else {
            panic!("expected cold miss");
        };
        guard.fulfill(bytes("result-1"), true);
        match cache.lookup(key) {
            Lookup::Hit { value, coalesced } => {
                assert_eq!(&**value, b"result-1");
                assert!(!coalesced);
            }
            Lookup::Miss(_) => panic!("expected hit after fulfill"),
        }
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert_eq!(st.bytes, "result-1".len());
    }

    #[test]
    fn uncacheable_fulfill_serves_waiters_but_is_not_stored() {
        let cache = ResultCache::new(8, 1 << 20);
        let key = CacheKey::from_canonical(b"cancelled-job");
        let Lookup::Miss(guard) = cache.lookup(key) else {
            panic!("expected miss");
        };
        guard.fulfill(bytes("partial"), false);
        assert!(matches!(cache.lookup(key), Lookup::Miss(_)));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn abandoned_flight_promotes_next_caller() {
        let cache = ResultCache::new(8, 1 << 20);
        let key = CacheKey::from_canonical(b"flaky");
        let Lookup::Miss(guard) = cache.lookup(key) else {
            panic!("expected miss");
        };
        drop(guard); // leader dies
        assert_eq!(cache.stats().abandoned, 1);
        // Next lookup becomes the new leader, not a wedged waiter.
        let Lookup::Miss(guard) = cache.lookup(key) else {
            panic!("expected re-miss after abandon");
        };
        guard.fulfill(bytes("ok"), true);
        assert!(matches!(cache.lookup(key), Lookup::Hit { .. }));
    }

    #[test]
    fn single_flight_coalesces_concurrent_lookups() {
        let cache = ResultCache::new(8, 1 << 20);
        let key = CacheKey::from_canonical(b"shared");
        let n = 8;
        let mut handles = Vec::new();
        for _ in 0..n {
            let cache = cache.clone();
            handles.push(thread::spawn(move || match cache.lookup(key) {
                Lookup::Hit { value, .. } => (*value).clone(),
                Lookup::Miss(guard) => {
                    // Simulate work while others pile up.
                    thread::sleep(std::time::Duration::from_millis(20));
                    let v = bytes("computed-once");
                    guard.fulfill(Arc::clone(&v), true);
                    (*v).clone()
                }
            }));
        }
        let results: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            assert_eq!(r, b"computed-once");
        }
        // Exactly one leader, everyone else hit or joined.
        let st = cache.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits + st.joins, (n - 1) as u64);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let cache = ResultCache::new(2, 1 << 20);
        let (a, b, c) = (
            CacheKey::from_canonical(b"a"),
            CacheKey::from_canonical(b"b"),
            CacheKey::from_canonical(b"c"),
        );
        for (k, v) in [(a, "va"), (b, "vb")] {
            let Lookup::Miss(g) = cache.lookup(k) else {
                panic!()
            };
            g.fulfill(bytes(v), true);
        }
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(cache.lookup(a), Lookup::Hit { .. }));
        let Lookup::Miss(g) = cache.lookup(c) else {
            panic!()
        };
        g.fulfill(bytes("vc"), true);
        assert!(matches!(cache.lookup(a), Lookup::Hit { .. }));
        assert!(matches!(cache.lookup(c), Lookup::Hit { .. }));
        assert!(matches!(cache.lookup(b), Lookup::Miss(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_until_satisfied() {
        let cache = ResultCache::new(64, 10);
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::from_canonical(format!("k{i}").as_bytes()))
            .collect();
        for k in &keys {
            let Lookup::Miss(g) = cache.lookup(*k) else {
                panic!()
            };
            g.fulfill(bytes("xxxx"), true); // 4 bytes each; bound 10 → ≤ 2 fit
        }
        let st = cache.stats();
        assert!(st.bytes <= 10, "bytes {} > bound", st.bytes);
        assert!(st.entries <= 2);
        // Newest entry always survives.
        assert!(matches!(cache.lookup(keys[3]), Lookup::Hit { .. }));
    }

    #[test]
    fn explicit_evict_forces_recompute() {
        let cache = ResultCache::new(8, 1 << 20);
        let key = CacheKey::from_canonical(b"evict-me");
        let Lookup::Miss(g) = cache.lookup(key) else {
            panic!()
        };
        g.fulfill(bytes("v1"), true);
        assert!(cache.evict(key));
        assert!(!cache.evict(key)); // already gone
        let Lookup::Miss(g) = cache.lookup(key) else {
            panic!("expected miss after evict");
        };
        g.fulfill(bytes("v1"), true);
        match cache.lookup(key) {
            Lookup::Hit { value, .. } => assert_eq!(&**value, b"v1"),
            Lookup::Miss(_) => panic!(),
        }
    }

    #[test]
    fn clear_empties_ready_set() {
        let cache = ResultCache::new(8, 1 << 20);
        for i in 0..3 {
            let k = CacheKey::from_canonical(format!("c{i}").as_bytes());
            let Lookup::Miss(g) = cache.lookup(k) else {
                panic!()
            };
            g.fulfill(bytes("v"), true);
        }
        cache.clear();
        let st = cache.stats();
        assert_eq!((st.entries, st.bytes), (0, 0));
    }

    #[test]
    fn oversized_single_value_stays_resident() {
        // A value larger than max_bytes must not evict itself into a loop.
        let cache = ResultCache::new(8, 4);
        let key = CacheKey::from_canonical(b"big");
        let Lookup::Miss(g) = cache.lookup(key) else {
            panic!()
        };
        g.fulfill(bytes("way-more-than-four-bytes"), true);
        // The lone oversized entry survives (bound best-effort for n=1).
        assert!(matches!(cache.lookup(key), Lookup::Hit { .. }));
    }
}
