//! Evaluating one cache design against one kernel.

use crate::cycles::CycleModel;
use analysis::placement::optimize_layout;
use energy::DacEnergyModel;
use energy::SramPart;
use loopir::transform::tile_all;
use loopir::{AccessKind, DataLayout, Kernel, TraceGen};
use memsim::{
    BusEncoding, CacheConfig, CompressedTrace, Replacement, ReplayBank, Simulator, TraceEvent,
    WritePolicy,
};
use std::fmt;

/// One point of the design space: the paper's `(T, L, S, B)`, extended
/// with the simulator's replacement and write policies as first-class
/// axes (both default to the paper's assumptions: LRU, write-back with
/// write-allocate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheDesign {
    /// Cache size `T` in bytes.
    pub cache_size: usize,
    /// Line size `L` in bytes.
    pub line: usize,
    /// Set associativity `S`.
    pub assoc: usize,
    /// Tiling size `B` (1 = untiled).
    pub tiling: u64,
    /// Replacement policy (default LRU, the paper's model).
    pub replacement: Replacement,
    /// Write policy (default write-back/write-allocate).
    pub write_policy: WritePolicy,
}

impl CacheDesign {
    /// Builds a design with the paper's default policies; geometry is
    /// validated when evaluated.
    pub fn new(cache_size: usize, line: usize, assoc: usize, tiling: u64) -> Self {
        CacheDesign {
            cache_size,
            line,
            assoc,
            tiling,
            replacement: Replacement::default(),
            write_policy: WritePolicy::default(),
        }
    }

    /// Replaces the replacement policy (builder-style).
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Replaces the write policy (builder-style).
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Whether both policies are the paper defaults (LRU +
    /// write-back/write-allocate). Grids of such designs keep the legacy
    /// checkpoint sweep-id and the compact `Display` form.
    pub fn has_default_policies(&self) -> bool {
        self.replacement == Replacement::default() && self.write_policy == WritePolicy::default()
    }

    /// The corresponding validated cache configuration (policies applied).
    ///
    /// # Errors
    ///
    /// Propagates [`memsim::ConfigError`] for invalid geometry.
    pub fn cache_config(&self) -> Result<CacheConfig, memsim::ConfigError> {
        Ok(CacheConfig::new(self.cache_size, self.line, self.assoc)?
            .with_replacement(self.replacement)
            .with_write_policy(self.write_policy))
    }
}

impl fmt::Display for CacheDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C{}L{}SA{}B{}",
            self.cache_size, self.line, self.assoc, self.tiling
        )?;
        if self.replacement != Replacement::default() {
            write!(f, "R{}", self.replacement)?;
        }
        if self.write_policy != WritePolicy::default() {
            let tag = match self.write_policy {
                WritePolicy::WriteBackAllocate => "WB",
                WritePolicy::WriteThroughNoAllocate => "WT",
            };
            write!(f, "W{tag}")?;
        }
        Ok(())
    }
}

/// The measured performance of one design on one kernel — the paper's §5
/// record `(T, L, S, B, mr, C, E)`.
///
/// `PartialEq` compares the floating-point metrics exactly (bitwise for
/// finite values) — the sweep engine is deterministic, so differential
/// tests assert bit-identical records, not approximate ones.
#[derive(Clone, PartialEq, Debug)]
pub struct Record {
    /// The design point.
    pub design: CacheDesign,
    /// Read miss rate (the paper's `mr`).
    pub miss_rate: f64,
    /// Processor cycles (the paper's `C`).
    pub cycles: f64,
    /// Energy in nanojoules (the paper's `E`).
    pub energy_nj: f64,
    /// Read accesses simulated (the paper's trip count).
    pub trip_count: u64,
    /// Whether the off-chip assignment achieved the conflict-free guarantee.
    pub conflict_free: bool,
}

/// How the off-chip data is laid out before simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlacementMode {
    /// Run the §4.1 off-chip assignment (the paper's "optimized" rows).
    #[default]
    Optimized,
    /// Natural packed row-major layout (the "unoptimized" rows).
    Natural,
}

/// Evaluates designs by tiling the kernel, placing its arrays, generating
/// the read trace, and simulating it.
///
/// # Example
///
/// ```
/// use memexplore::{CacheDesign, Evaluator};
/// use loopir::kernels;
///
/// let eval = Evaluator::default();
/// let rec = eval.evaluate(&kernels::compress(31), CacheDesign::new(64, 8, 1, 1));
/// assert!(rec.miss_rate < 0.3); // optimized placement keeps misses low
/// assert_eq!(rec.trip_count, 4 * 961);
/// ```
#[derive(Clone, Debug)]
pub struct Evaluator {
    /// Energy model (off-chip part + coefficients).
    pub energy_model: DacEnergyModel,
    /// Cycle model.
    pub cycle_model: CycleModel,
    /// Off-chip layout mode.
    pub placement: PlacementMode,
    /// Address-bus encoding (the paper assumes Gray).
    pub bus_encoding: BusEncoding,
    /// Forces the fused engine's scalar lane loop (the pre-bulk replay
    /// path) — for baseline benchmarking and differential tests only.
    pub scalar_replay: bool,
}

impl Default for Evaluator {
    /// CY7C 2 Mbit SRAM (`Em = 4.95 nJ`), optimized placement, Gray buses —
    /// the paper's main operating point.
    fn default() -> Self {
        Evaluator {
            energy_model: DacEnergyModel::new(SramPart::cy7c_2mbit()),
            cycle_model: CycleModel,
            placement: PlacementMode::Optimized,
            bus_encoding: BusEncoding::Gray,
            scalar_replay: false,
        }
    }
}

impl Evaluator {
    /// An evaluator for a specific off-chip part, otherwise defaults.
    pub fn with_part(part: SramPart) -> Self {
        Evaluator {
            energy_model: DacEnergyModel::new(part),
            ..Default::default()
        }
    }

    /// An evaluator using the natural (unoptimized) layout.
    pub fn unoptimized(mut self) -> Self {
        self.placement = PlacementMode::Natural;
        self
    }

    /// Computes the off-chip layout this evaluator would use for a
    /// `(cache size, line size)` pair, plus the conflict-free flag.
    ///
    /// Layouts depend only on the kernel and `(T, L)` — not on associativity
    /// or tiling — so sweeps cache them per pair (see
    /// [`Explorer`](crate::Explorer)).
    ///
    /// The optimized mode guards against a corner case of padding: a
    /// stretched row pitch can push a borderline working set past the cache
    /// and *create* capacity misses. Both the padded and the natural layout
    /// are therefore miss-counted once on a direct-mapped cache, and the
    /// better one wins — the assignment can then never lose to doing
    /// nothing.
    pub fn layout_for(
        &self,
        kernel: &Kernel,
        cache_size: usize,
        line: usize,
    ) -> (DataLayout, bool) {
        match self.placement {
            PlacementMode::Optimized => {
                let r = optimize_layout(kernel, cache_size as u64, line as u64)
                    .expect("kernels have arrays and geometry is validated");
                let natural = DataLayout::natural(kernel);
                let m_opt = quick_misses(kernel, &r.layout, cache_size, line);
                let m_nat = quick_misses(kernel, &natural, cache_size, line);
                if m_opt <= m_nat {
                    (r.layout, r.conflict_free)
                } else {
                    (natural, false)
                }
            }
            PlacementMode::Natural => (DataLayout::natural(kernel), false),
        }
    }

    /// Evaluates `design` on `kernel`.
    ///
    /// The kernel is tiled by `design.tiling` (paper knob `B`, applied to
    /// every loop level — classic blocking), its arrays are placed according
    /// to the placement mode, the read trace is simulated, and the cycle and
    /// energy models are applied to the measured hit/miss counts.
    ///
    /// # Panics
    ///
    /// Panics if the design's geometry is invalid (callers sweeping a
    /// [`DesignSpace`](crate::DesignSpace) never produce such designs) or if
    /// the line size is outside the cycle model's 4…1024 B range.
    pub fn evaluate(&self, kernel: &Kernel, design: CacheDesign) -> Record {
        if let Err(e) = design.cache_config() {
            panic!("invalid design {design}: {e}");
        }
        let (layout, conflict_free) = self.layout_for(kernel, design.cache_size, design.line);
        self.evaluate_with_layout(kernel, design, &layout, conflict_free)
    }

    /// Like [`evaluate`](Self::evaluate) but with a precomputed layout
    /// (tiling and associativity do not change the layout, so sweeps reuse
    /// one layout per `(T, L)` pair).
    ///
    /// # Panics
    ///
    /// Same conditions as [`evaluate`](Self::evaluate).
    pub fn evaluate_with_layout(
        &self,
        kernel: &Kernel,
        design: CacheDesign,
        layout: &DataLayout,
        conflict_free: bool,
    ) -> Record {
        let tiled = tile_all(kernel, design.tiling);
        let trace = read_trace(&tiled, layout);
        self.evaluate_with_trace(design, &trace, conflict_free)
    }

    /// Like [`evaluate`](Self::evaluate) but replaying a pre-materialized
    /// read trace (the tiled kernel's reads under the chosen layout).
    ///
    /// This is the innermost entry point of the trace-once sweep engine:
    /// the [`Explorer`](crate::Explorer) materializes each distinct
    /// `(T, L, B)` trace once into a [`memsim::TraceArena`] and evaluates
    /// every associativity against the same immutable slice.
    ///
    /// # Panics
    ///
    /// Same conditions as [`evaluate`](Self::evaluate).
    pub fn evaluate_with_trace(
        &self,
        design: CacheDesign,
        trace: &[TraceEvent],
        conflict_free: bool,
    ) -> Record {
        let config = design
            .cache_config()
            .unwrap_or_else(|e| panic!("invalid design {design}: {e}"));
        let mut sim = Simulator::with_options(config, self.bus_encoding, false);
        sim.run_slice(trace);
        self.record_from_report(design, &sim.into_report(), conflict_free)
    }

    /// Evaluates a whole bank of designs against one shared trace slice in
    /// a single scan — the fused engine's work unit (a *trace group*).
    ///
    /// All designs must share the trace, i.e. the same `(T, L)` layout and
    /// tiling `B`; the sweep groups them that way. Returns one record per
    /// design, in input order, each bit-identical to what
    /// [`evaluate_with_trace`](Self::evaluate_with_trace) would produce for
    /// that design alone (see `memsim::ReplayBank` for the argument).
    ///
    /// # Panics
    ///
    /// Same conditions as [`evaluate`](Self::evaluate), for any design in
    /// the bank.
    pub fn evaluate_bank_with_trace(
        &self,
        designs: &[(CacheDesign, bool)],
        trace: &[TraceEvent],
    ) -> Vec<Record> {
        let configs: Vec<CacheConfig> = designs
            .iter()
            .map(|(design, _)| {
                design
                    .cache_config()
                    .unwrap_or_else(|e| panic!("invalid design {design}: {e}"))
            })
            .collect();
        let mut bank = ReplayBank::with_options(&configs, self.bus_encoding, false);
        if self.scalar_replay {
            bank = bank.with_scalar_replay();
        }
        bank.run_slice(trace);
        bank.into_reports()
            .iter()
            .zip(designs)
            .map(|(report, &(design, conflict_free))| {
                self.record_from_report(design, report, conflict_free)
            })
            .collect()
    }

    /// [`evaluate_bank_with_trace`](Self::evaluate_bank_with_trace) with a
    /// progress hook: `tick(n)` is called after roughly every `every`
    /// trace events scanned (and once at the end with the remainder), so
    /// an observability layer can meter throughput mid-scan. Records are
    /// bit-identical to the untracked variant — bank state persists across
    /// chunk boundaries, so chunked replay is the same computation.
    pub fn evaluate_bank_with_trace_ticked(
        &self,
        designs: &[(CacheDesign, bool)],
        trace: &[TraceEvent],
        every: usize,
        tick: &(dyn Fn(u64) + Sync),
    ) -> Vec<Record> {
        let configs: Vec<CacheConfig> = designs
            .iter()
            .map(|(design, _)| {
                design
                    .cache_config()
                    .unwrap_or_else(|e| panic!("invalid design {design}: {e}"))
            })
            .collect();
        let mut bank = ReplayBank::with_options(&configs, self.bus_encoding, false);
        if self.scalar_replay {
            bank = bank.with_scalar_replay();
        }
        bank.run_slice_ticked(trace, every, tick);
        bank.into_reports()
            .iter()
            .zip(designs)
            .map(|(report, &(design, conflict_free))| {
                self.record_from_report(design, report, conflict_free)
            })
            .collect()
    }

    /// [`evaluate_bank_with_trace`](Self::evaluate_bank_with_trace)
    /// streaming from a delta-compressed trace: each decoded block is fed
    /// to the bank in turn, so replay never needs the raw events resident.
    /// `tick`, when given, is called once per block with the block's event
    /// count. Records are bit-identical to the uncompressed variant — the
    /// bank's chunk-invariance contract covers block boundaries exactly as
    /// it covers chunk boundaries.
    pub fn evaluate_bank_with_ztrace(
        &self,
        designs: &[(CacheDesign, bool)],
        ztrace: &CompressedTrace,
        tick: Option<&(dyn Fn(u64) + Sync)>,
    ) -> Vec<Record> {
        let configs: Vec<CacheConfig> = designs
            .iter()
            .map(|(design, _)| {
                design
                    .cache_config()
                    .unwrap_or_else(|e| panic!("invalid design {design}: {e}"))
            })
            .collect();
        let mut bank = ReplayBank::with_options(&configs, self.bus_encoding, false);
        if self.scalar_replay {
            bank = bank.with_scalar_replay();
        }
        ztrace.replay(|block| {
            bank.feed(block);
            if let Some(tick) = tick {
                tick(block.len() as u64);
            }
        });
        bank.finish()
            .iter()
            .zip(designs)
            .map(|(report, &(design, conflict_free))| {
                self.record_from_report(design, report, conflict_free)
            })
            .collect()
    }

    /// Converts finished [`memsim::SimReport`]s of a bank scan into
    /// [`Record`]s, in input order — the public tail of the evaluation
    /// pipeline for callers that drive the replay themselves (the
    /// streaming sweep feeds a [`ReplayBank`] chunk by chunk and finishes
    /// it here, so its records share the exact cycle/energy model path of
    /// [`evaluate_bank_with_trace`](Self::evaluate_bank_with_trace)).
    ///
    /// # Panics
    ///
    /// Panics if `reports` and `designs` differ in length.
    pub fn evaluate_bank_reports(
        &self,
        designs: &[(CacheDesign, bool)],
        reports: &[memsim::SimReport],
    ) -> Vec<Record> {
        assert_eq!(
            designs.len(),
            reports.len(),
            "one report per bank design expected"
        );
        reports
            .iter()
            .zip(designs)
            .map(|(report, &(design, conflict_free))| {
                self.record_from_report(design, report, conflict_free)
            })
            .collect()
    }

    /// Applies the cycle and energy models to a finished simulation report
    /// — the shared tail of the per-design and fused evaluation paths.
    fn record_from_report(
        &self,
        design: CacheDesign,
        report: &memsim::SimReport,
        conflict_free: bool,
    ) -> Record {
        let hits = report.stats.read_hits;
        let misses = report.stats.read_misses();
        let cycles = self.cycle_model.cycles_from_counts(
            hits,
            misses,
            design.assoc,
            design.line,
            design.tiling,
        );
        let energy_nj = self.energy_model.trace_energy_nj(report);
        Record {
            design,
            miss_rate: report.stats.read_miss_rate(),
            cycles,
            energy_nj,
            trip_count: report.stats.reads,
            conflict_free,
        }
    }
}

impl Evaluator {
    /// Evaluates `design` with the paper's **analytical** miss-rate model
    /// instead of trace-driven simulation
    /// ([`analysis::missrate`]).
    ///
    /// The analytical model assumes conflict-free placement and unlimited
    /// capacity, making the miss rate independent of the cache size — this
    /// is the mode that reproduces the paper's exact Fig. 4 selections
    /// (minimum energy at the smallest cache, minimum time at the largest).
    /// The address-bus switching `Add_bs` is taken as 1.0 (Gray-coded
    /// sequential access).
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry, non-rectangular nests, or a line size
    /// outside the cycle model's range.
    pub fn evaluate_analytical(&self, kernel: &Kernel, design: CacheDesign) -> Record {
        let config = design
            .cache_config()
            .unwrap_or_else(|e| panic!("invalid design {design}: {e}"));
        let miss_rate = analysis::missrate::analytical_miss_rate(kernel, design.line as u64);
        let trip_count = kernel
            .read_trip_count()
            .expect("analytical mode requires rectangular nests");
        let cycles = self.cycle_model.cycles_from_rates(
            miss_rate,
            trip_count,
            design.assoc,
            design.line,
            design.tiling,
        );
        let add_bs = 1.0;
        let energy_nj = trip_count as f64
            * self
                .energy_model
                .access_energy_nj(&config, 1.0 - miss_rate, add_bs);
        Record {
            design,
            miss_rate,
            cycles,
            energy_nj,
            trip_count,
            conflict_free: true,
        }
    }
}

/// Materializes the read trace of `kernel` under `layout` — the event
/// format consumed by [`Evaluator::evaluate_with_trace`] and stored in
/// sweep [`memsim::TraceArena`]s.
pub fn read_trace(kernel: &Kernel, layout: &DataLayout) -> Vec<TraceEvent> {
    TraceGen::new(kernel, layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size))
        .collect()
}

/// Read-miss count of the untiled kernel on a direct-mapped cache — the
/// proxy used to arbitrate between candidate layouts.
fn quick_misses(kernel: &Kernel, layout: &DataLayout, cache_size: usize, line: usize) -> u64 {
    let config = CacheConfig::new(cache_size, line, 1).expect("geometry validated by caller");
    let events = TraceGen::new(kernel, layout)
        .filter(|a| a.kind == AccessKind::Read)
        .map(|a| TraceEvent::read(a.addr, a.size));
    let mut sim = Simulator::new(config);
    sim.run(events);
    sim.stats().read_misses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn compress_c64l8_behaves_like_the_paper() {
        let eval = Evaluator::default();
        let rec = eval.evaluate(&kernels::compress(31), CacheDesign::new(64, 8, 1, 1));
        // Exact simulation: conflict misses are gone but the two-row working
        // set (~248 B) exceeds 64 B, so row i-1 reuses are capacity misses:
        // ~2 line fetches per 8 reads = 0.27. (The paper's closed-form
        // estimate is lower; trends, not absolutes, are what must match.)
        assert!(rec.miss_rate < 0.3, "miss rate {}", rec.miss_rate);
        assert!(rec.miss_rate > 0.0);
        assert!(rec.energy_nj > 1_000.0 && rec.energy_nj < 100_000.0);
        assert!(rec.cycles > rec.trip_count as f64); // misses cost > 1 cycle
    }

    #[test]
    fn natural_layout_misses_more() {
        let k = kernels::compress(31);
        let d = CacheDesign::new(64, 8, 1, 1);
        let opt = Evaluator::default().evaluate(&k, d);
        let nat = Evaluator::default().unoptimized().evaluate(&k, d);
        assert!(nat.miss_rate >= opt.miss_rate);
    }

    #[test]
    fn tiling_changes_nothing_for_untiled_b1() {
        let k = kernels::compress(31);
        let a = Evaluator::default().evaluate(&k, CacheDesign::new(64, 8, 1, 1));
        let b = Evaluator::default().evaluate(&k, CacheDesign::new(64, 8, 1, 1));
        assert_eq!(a.miss_rate, b.miss_rate); // deterministic
    }

    #[test]
    fn bigger_cache_reduces_miss_rate() {
        let k = kernels::compress(31);
        let small = Evaluator::default().evaluate(&k, CacheDesign::new(16, 4, 1, 1));
        let large = Evaluator::default().evaluate(&k, CacheDesign::new(512, 4, 1, 1));
        assert!(large.miss_rate <= small.miss_rate);
    }

    #[test]
    fn trip_count_is_read_references() {
        let k = kernels::dequant(31);
        let rec = Evaluator::default().evaluate(&k, CacheDesign::new(64, 8, 1, 1));
        assert_eq!(rec.trip_count, 2 * 961);
    }

    #[test]
    #[should_panic(expected = "invalid design")]
    fn invalid_geometry_panics() {
        let _ =
            Evaluator::default().evaluate(&kernels::compress(31), CacheDesign::new(48, 8, 1, 1));
    }

    #[test]
    fn design_display_is_compact() {
        assert_eq!(format!("{}", CacheDesign::new(64, 4, 8, 16)), "C64L4SA8B16");
    }

    #[test]
    fn design_display_tags_non_default_policies_only() {
        let d = CacheDesign::new(64, 4, 8, 16)
            .with_replacement(Replacement::Fifo)
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        assert_eq!(format!("{d}"), "C64L4SA8B16RFIFOWWT");
        assert!(!d.has_default_policies());
        assert!(CacheDesign::new(64, 4, 8, 16).has_default_policies());
    }

    #[test]
    fn cache_config_carries_the_policies() {
        let d = CacheDesign::new(64, 8, 2, 1).with_replacement(Replacement::Fifo);
        let cfg = d.cache_config().unwrap();
        assert_eq!(cfg.replacement, Replacement::Fifo);
        assert_eq!(cfg.write_policy, WritePolicy::WriteBackAllocate);
    }

    #[test]
    fn policies_change_simulated_records_but_not_geometry_defaults() {
        // A FIFO 2-way run must still be a well-formed record; with the
        // default policies the extended constructor path is bit-identical
        // to the legacy 4-argument one.
        let k = kernels::compress(31);
        let eval = Evaluator::default();
        let base = CacheDesign::new(64, 8, 2, 1);
        let a = eval.evaluate(&k, base);
        let b = eval.evaluate(&k, base.with_replacement(Replacement::Lru));
        assert_eq!(a, b);
        let fifo = eval.evaluate(&k, base.with_replacement(Replacement::Fifo));
        assert!((0.0..=1.0).contains(&fifo.miss_rate));
        assert_eq!(fifo.trip_count, a.trip_count);
    }

    #[test]
    fn analytical_miss_rate_is_size_independent() {
        let k = kernels::compress(31);
        let eval = Evaluator::default();
        let small = eval.evaluate_analytical(&k, CacheDesign::new(16, 4, 1, 1));
        let large = eval.evaluate_analytical(&k, CacheDesign::new(512, 4, 1, 1));
        assert_eq!(small.miss_rate, large.miss_rate);
        // …so the cell-array term makes the small cache cheaper (the
        // paper's C16L4 optimum).
        assert!(small.energy_nj < large.energy_nj);
    }

    #[test]
    fn analytical_reproduces_the_papers_fig4_selections() {
        // Under the analytical model, Compress's minimum-energy point over
        // the Fig. 4 grid is the smallest cache and the minimum-time point
        // the largest cache with the longest line — the paper's C16L4 and
        // C512L64.
        let k = kernels::compress(31);
        let eval = Evaluator::default();
        let mut records = Vec::new();
        for t in [16usize, 32, 64, 128, 256, 512] {
            for l in [4usize, 8, 16, 32, 64] {
                if l <= t && t / l >= 4 {
                    records.push(eval.evaluate_analytical(&k, CacheDesign::new(t, l, 1, 1)));
                }
            }
        }
        let e = crate::select::min_energy(&records).expect("non-empty");
        let t = crate::select::min_cycles(&records).expect("non-empty");
        assert_eq!((e.design.cache_size, e.design.line), (16, 4));
        // Analytical cycles depend only on L, so every cache size with
        // L = 64 ties for minimum time; the tie-break picks the cheaper
        // (smaller) one, where the paper printed C512L64.
        assert_eq!(t.design.line, 64);
        let c512 = records
            .iter()
            .find(|r| r.design.cache_size == 512 && r.design.line == 64)
            .expect("C512L64 is in the grid");
        assert_eq!(t.cycles, c512.cycles);
    }

    #[test]
    fn analytical_and_simulated_agree_when_capacity_is_ample() {
        // At a cache big enough to hold Compress's reuse window, exact
        // simulation converges toward the analytical (compulsory-only)
        // estimate.
        let k = kernels::compress(31);
        let eval = Evaluator::default();
        let d = CacheDesign::new(512, 8, 1, 1);
        let sim = eval.evaluate(&k, d).miss_rate;
        let ana = eval.evaluate_analytical(&k, d).miss_rate;
        assert!(
            (sim - ana).abs() < 0.05,
            "simulated {sim} vs analytical {ana}"
        );
    }
}
