//! External trace workloads: streamed `.din` sweeps with bounded memory.
//!
//! The kernel sweep engines ([`Explorer::explore_designs_with_telemetry`])
//! materialize every trace into a shared [`memsim::TraceArena`] before any
//! simulation starts — fine for paper kernels (tens of thousands of
//! events), hopeless for a multi-gigabyte recorded workload. This module
//! is the streaming counterpart: a [`TraceWorkload`] names an external
//! Dinero `.din` trace (file or in-memory text), carries its content
//! [`TraceFingerprint`] from one cheap preparation pass, and
//! [`Explorer::explore_trace`] sweeps a design grid over it by pulling
//! fixed-capacity chunks through [`memsim::TraceSource`] and feeding them
//! into incremental [`ReplayBank`] steppers.
//!
//! Memory stays `O(chunk_capacity × workers)` regardless of trace length:
//! each worker owns one chunk buffer and one bank of cache models. The
//! grid is sharded into banks of [`TRACE_BANK_WIDTH`] designs; each shard
//! re-streams the trace once, so the whole sweep reads the file
//! `⌈designs / TRACE_BANK_WIDTH⌉` times while every design still consumes
//! every event exactly once (the telemetry's replayed/scanned split).
//!
//! Bit-identity: lane state in a [`ReplayBank`] persists across
//! [`feed`](ReplayBank::feed) calls, so chunked replay is the same
//! computation as a whole-slice scan for *any* chunk size (see
//! `memsim::bank`), and records land in write-once slots indexed by
//! design, so worker count and scheduling cannot reorder or change them.
//!
//! External traces carry no kernel, so there is nothing to tile or place:
//! the grid has no tiling axis ([`TraceWorkload::design_space`] pins
//! `B = 1`) and layouts are never computed.

use crate::checkpoint::{fnv1a, Checkpoint, CheckpointError};
use crate::explore::{panic_message, try_steal_loop, SweepHists};
use crate::metrics::{CacheDesign, Evaluator, Record};
use crate::obs::{FieldValue, Span};
use crate::supervisor::{SweepError, SweepOptions, SweepOutcome};
use crate::telemetry::SweepTelemetry;
use crate::{DesignSpace, Explorer};
use memsim::{
    fingerprint_source, DinSource, ReplayBank, TraceEvent, TraceFingerprint, TraceSource,
    TraceSourceError, DEFAULT_CHUNK_CAPACITY,
};
use std::fmt;
use std::io::{self, BufReader};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Designs stepped in lockstep per shard of a streamed sweep. Each shard
/// re-streams the trace once, so this bounds both the number of passes
/// over the file (`⌈designs / width⌉`) and the per-worker model state.
pub const TRACE_BANK_WIDTH: usize = 64;

/// Errors of a streamed trace sweep.
#[derive(Debug)]
pub enum TraceError {
    /// The trace itself failed: I/O or a malformed record. Callers map
    /// this to the same exit discipline as any other input failure.
    Source(TraceSourceError),
    /// A sweep worker panicked outside the supervisor's quarantine.
    WorkerPanic {
        /// Panic payload, downcast to text.
        message: String,
    },
    /// Checkpoint sidecar failure (resume mismatch or unreadable file).
    Checkpoint(CheckpointError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Source(e) => write!(f, "trace source failed: {e}"),
            TraceError::WorkerPanic { message } => {
                write!(f, "streamed sweep worker panicked: {message}")
            }
            TraceError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Source(e) => Some(e),
            TraceError::WorkerPanic { .. } => None,
            TraceError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<TraceSourceError> for TraceError {
    fn from(e: TraceSourceError) -> Self {
        TraceError::Source(e)
    }
}

impl From<CheckpointError> for TraceError {
    fn from(e: CheckpointError) -> Self {
        TraceError::Checkpoint(e)
    }
}

/// Where a workload's bytes come from. Every shard opens its own reader,
/// so the input must be re-openable: a path is re-opened, in-memory text
/// is shared behind an [`Arc`].
#[derive(Clone, Debug)]
enum TraceInput {
    Path(PathBuf),
    Text { name: String, text: Arc<String> },
}

/// Shared in-memory text served as a reader, so inline traces (serve
/// jobs) stream through the same `DinSource` as files without copying
/// the text per shard.
#[derive(Debug)]
struct TextReader {
    text: Arc<String>,
    pos: usize,
}

impl io::Read for TextReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let bytes = self.text.as_bytes();
        let n = out.len().min(bytes.len() - self.pos);
        out[..n].copy_from_slice(&bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// An external `.din` trace prepared for streamed sweeps: a re-openable
/// input, its content fingerprint (one cheap preparation pass — the
/// trace is never materialized), and the chunk capacity every pass uses.
#[derive(Clone, Debug)]
pub struct TraceWorkload {
    input: TraceInput,
    fingerprint: TraceFingerprint,
    chunk_capacity: usize,
}

impl TraceWorkload {
    /// Prepares the `.din` file at `path`: one streaming pass computes
    /// the fingerprint and event count (bounded memory; the file may be
    /// arbitrarily large).
    ///
    /// # Errors
    ///
    /// A [`TraceError::Source`] if the file cannot be read or holds a
    /// malformed record.
    pub fn from_path(path: impl Into<PathBuf>) -> Result<Self, TraceError> {
        Self::with_input(TraceInput::Path(path.into()), DEFAULT_CHUNK_CAPACITY)
    }

    /// Prepares in-memory `.din` text (the serve daemon's inline-trace
    /// jobs). `name` labels errors the way a path would.
    ///
    /// # Errors
    ///
    /// A [`TraceError::Source`] on a malformed record.
    pub fn from_text(name: impl Into<String>, text: impl Into<String>) -> Result<Self, TraceError> {
        let input = TraceInput::Text {
            name: name.into(),
            text: Arc::new(text.into()),
        };
        Self::with_input(input, DEFAULT_CHUNK_CAPACITY)
    }

    fn with_input(input: TraceInput, chunk_capacity: usize) -> Result<Self, TraceError> {
        let mut workload = TraceWorkload {
            input,
            fingerprint: TraceFingerprint::default(),
            chunk_capacity: chunk_capacity.max(1),
        };
        workload.fingerprint = fingerprint_source(&mut *workload.open()?, workload.chunk_capacity)?;
        Ok(workload)
    }

    /// Replaces the chunk capacity (events per [`fill`](TraceSource::fill)
    /// call; builder-style). Records are invariant to this by
    /// construction — it only trades memory against read-loop overhead.
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity.max(1);
        self
    }

    /// The workload's display name (path or inline label).
    pub fn name(&self) -> &str {
        match &self.input {
            TraceInput::Path(p) => p.to_str().unwrap_or("trace.din"),
            TraceInput::Text { name, .. } => name,
        }
    }

    /// Content fingerprint from the preparation pass — the cache-key
    /// identity of this workload (replaces the kernel text for external
    /// traces).
    pub fn fingerprint(&self) -> TraceFingerprint {
        self.fingerprint
    }

    /// Events in the trace, counted by the preparation pass.
    pub fn events(&self) -> u64 {
        self.fingerprint.events()
    }

    /// Events per chunk each streaming pass holds resident.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Opens a fresh source over the input (each shard streams its own).
    ///
    /// # Errors
    ///
    /// A [`TraceSourceError::Io`] if a path input cannot be opened.
    pub fn open(&self) -> Result<Box<dyn TraceSource + Send>, TraceSourceError> {
        match &self.input {
            TraceInput::Path(p) => Ok(Box::new(DinSource::open(p)?)),
            TraceInput::Text { name, text } => {
                let reader = BufReader::new(TextReader {
                    text: Arc::clone(text),
                    pos: 0,
                });
                Ok(Box::new(DinSource::from_reader(reader, name.clone())))
            }
        }
    }

    /// The design grid streamed sweeps use by default: the paper's
    /// `(T, L, S)` axes with tiling pinned to `B = 1` — an external trace
    /// has no kernel to re-tile, so the tiling axis is meaningless.
    pub fn design_space() -> DesignSpace {
        DesignSpace {
            tilings: vec![1],
            ..DesignSpace::paper()
        }
    }
}

/// Stable identity of a streamed sweep configuration — the
/// [`sweep_id`](crate::supervisor::sweep_id) analogue keyed by trace
/// content instead of kernel name, so a checkpoint sidecar can never be
/// resumed against a different trace, grid, or evaluator.
pub fn trace_sweep_id(
    workload: &TraceWorkload,
    designs: &[CacheDesign],
    evaluator: &Evaluator,
) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"trace\0");
    bytes.extend_from_slice(&workload.fingerprint().digest().to_le_bytes());
    bytes.extend_from_slice(&workload.events().to_le_bytes());
    for d in designs {
        for word in [d.cache_size as u64, d.line as u64, d.assoc as u64, d.tiling] {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
    }
    bytes.push(evaluator.bus_encoding as u8);
    bytes.extend_from_slice(evaluator.energy_model.part.name.as_bytes());
    bytes.extend_from_slice(
        &evaluator
            .energy_model
            .part
            .energy_per_access_nj
            .to_bits()
            .to_le_bytes(),
    );
    fnv1a(&bytes)
}

impl Explorer {
    /// Sweeps `designs` over a streamed external trace. Convenience form
    /// of [`explore_trace_supervised`](Self::explore_trace_supervised)
    /// with default options, erroring out instead of quarantining: the
    /// result is complete or the call fails.
    ///
    /// # Errors
    ///
    /// [`TraceError::Source`] if the trace cannot be streamed,
    /// [`TraceError::WorkerPanic`] if any design's evaluation panicked.
    pub fn explore_trace(
        &self,
        workload: &TraceWorkload,
        designs: &[CacheDesign],
    ) -> Result<(Vec<Record>, SweepTelemetry), TraceError> {
        let outcome = self.explore_trace_supervised(workload, designs, &SweepOptions::default())?;
        if let Some(e) = outcome.errors.into_iter().next() {
            return Err(TraceError::WorkerPanic { message: e.message });
        }
        let records = outcome
            .records
            .into_iter()
            .map(|r| r.expect("no errors and no deadline leaves every slot filled"))
            .collect();
        Ok((records, outcome.telemetry))
    }

    /// Sweeps `designs` over a streamed external trace under the
    /// fault-isolation supervisor: panicking shards are retried one
    /// design at a time (each retry re-streams the trace alone), designs
    /// that still panic are quarantined into [`SweepError`]s, a
    /// cooperative deadline (checked between chunks) yields a well-formed
    /// partial [`SweepOutcome`], and a [`CheckpointPolicy`]
    /// (crate::CheckpointPolicy) persists/resumes completed records under
    /// a [`trace_sweep_id`] header.
    ///
    /// A [`TraceSourceError`] is *not* quarantined — the workload itself
    /// is broken, so the sweep stops and reports it.
    ///
    /// # Errors
    ///
    /// [`TraceError::Source`] on stream failure, [`TraceError::Checkpoint`]
    /// on sidecar mismatch, [`TraceError::WorkerPanic`] only if a panic
    /// escapes the per-shard quarantine.
    pub fn explore_trace_supervised(
        &self,
        workload: &TraceWorkload,
        designs: &[CacheDesign],
        options: &SweepOptions,
    ) -> Result<SweepOutcome, TraceError> {
        let sweep_start = Instant::now();
        let shards: Vec<Vec<usize>> = (0..designs.len())
            .collect::<Vec<_>>()
            .chunks(TRACE_BANK_WIDTH)
            .map(<[usize]>::to_vec)
            .collect();
        let workers = self.worker_count(shards.len());
        let id = trace_sweep_id(workload, designs, &self.evaluator);
        let obs = self.obs.as_deref();
        if let Some(o) = obs {
            o.counters
                .total
                .fetch_add(designs.len() as u64, Ordering::Relaxed);
        }

        // Resume: pre-fill output slots from the sidecar file (same
        // protocol as the kernel supervisor, different sweep id).
        let record_slots: Vec<OnceLock<Record>> = designs.iter().map(|_| OnceLock::new()).collect();
        let mut resumed_entries: Vec<(usize, Record)> = Vec::new();
        if let Some(policy) = options.checkpoint.as_ref().filter(|p| p.resume) {
            match Checkpoint::read(&policy.path) {
                Ok(ck) => {
                    if ck.sweep_id != id {
                        return Err(CheckpointError::SweepMismatch {
                            expected: id,
                            found: ck.sweep_id,
                        }
                        .into());
                    }
                    for (idx, mut record) in ck.entries {
                        if idx >= designs.len() {
                            return Err(CheckpointError::BadEntry {
                                index: idx as u64,
                                designs: designs.len(),
                            }
                            .into());
                        }
                        record.design = designs[idx];
                        let _ = record_slots[idx].set(record.clone());
                        resumed_entries.push((idx, record));
                    }
                }
                Err(CheckpointError::Io { ref source, .. })
                    if source.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        let records_resumed = resumed_entries.len();
        if let Some(o) = obs {
            if records_resumed > 0 {
                o.counters.add_done(records_resumed as u64);
                o.point(
                    "supervise",
                    "resume",
                    &[("records", FieldValue::U64(records_resumed as u64))],
                );
            }
        }

        let hists = SweepHists::default();
        let phase_start = Instant::now();
        let simulate_span = Span::begin(obs, "simulate");
        let replayed = AtomicU64::new(0);
        let scanned = AtomicU64::new(0);
        let peak_chunk_bytes = AtomicU64::new(0);
        let retried = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        let deadline = options.deadline.map(|d| sweep_start + d);
        let errors: Mutex<Vec<SweepError>> = Mutex::new(Vec::new());
        let source_error: Mutex<Option<TraceSourceError>> = Mutex::new(None);
        let sink = Mutex::new(CheckpointSink {
            entries: resumed_entries,
            since_flush: 0,
            flushes: 0,
            written: 0,
            failed: 0,
        });

        let fail_source = |e: TraceSourceError| {
            stop.store(true, Ordering::Relaxed);
            let mut slot = source_error.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(e);
            }
        };
        let quarantine = |e: SweepError| {
            if let Some(o) = obs {
                o.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                o.point(
                    "supervise",
                    "quarantine",
                    &[
                        ("design", FieldValue::U64(e.design_index as u64)),
                        ("engine", FieldValue::Str(e.engine.to_string())),
                        ("message", FieldValue::Str(e.message.clone())),
                    ],
                );
            }
            errors.lock().unwrap_or_else(|p| p.into_inner()).push(e);
        };
        let flush_with_id = |sink: &mut CheckpointSink, policy: &crate::CheckpointPolicy| {
            let nth = sink.flushes;
            sink.flushes += 1;
            sink.since_flush = 0;
            let flush_start = Instant::now();
            let ok = if options.fault.should_fail_checkpoint(nth) {
                sink.failed += 1;
                false
            } else {
                let ck = Checkpoint {
                    sweep_id: id,
                    entries: sink.entries.clone(),
                };
                match ck.write_atomic(&policy.path) {
                    Ok(()) => {
                        sink.written += 1;
                        true
                    }
                    Err(_) => {
                        sink.failed += 1;
                        false
                    }
                }
            };
            let dur = flush_start.elapsed();
            hists.flush.record(dur);
            if let Some(o) = obs {
                o.point(
                    "checkpoint",
                    "flush",
                    &[
                        (
                            "dur_us",
                            FieldValue::U64(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX)),
                        ),
                        ("ok", FieldValue::U64(u64::from(ok))),
                        ("records", FieldValue::U64(sink.entries.len() as u64)),
                    ],
                );
            }
        };
        let complete = |idx: usize, record: Record| {
            if record_slots[idx].set(record.clone()).is_ok() {
                if let Some(policy) = options.checkpoint.as_ref() {
                    let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
                    sink.entries.push((idx, record));
                    sink.since_flush += 1;
                    if sink.since_flush >= policy.every.max(1) {
                        flush_with_id(&mut sink, policy);
                    }
                }
            }
        };
        let out_of_time = || {
            if cancelled.load(Ordering::Relaxed) {
                return true;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                if !cancelled.swap(true, Ordering::Relaxed) {
                    if let Some(o) = obs {
                        o.point("supervise", "deadline_cancel", &[]);
                    }
                }
                return true;
            }
            false
        };
        // One full streaming pass over the workload, feeding `bank`.
        // Returns the events fed, or `None` when the deadline fired
        // mid-stream (the bank is then abandoned: a partial replay must
        // never produce a record).
        let stream_into = |bank: &mut ReplayBank| -> Result<Option<u64>, TraceSourceError> {
            let mut src = workload.open()?;
            let mut buf: Vec<TraceEvent> = Vec::with_capacity(workload.chunk_capacity());
            let mut events = 0u64;
            loop {
                let n = src.fill(&mut buf, workload.chunk_capacity())?;
                if n == 0 {
                    return Ok(Some(events));
                }
                events += n as u64;
                let bytes = (buf.len() * std::mem::size_of::<TraceEvent>()) as u64;
                peak_chunk_bytes.fetch_max(bytes, Ordering::Relaxed);
                bank.feed(&buf);
                if let Some(o) = obs {
                    o.counters.add_events(n as u64);
                }
                if out_of_time() {
                    return Ok(None);
                }
            }
        };
        // Per-design retry, shared by the quarantine fallback: re-streams
        // the whole trace through a bank of one.
        let simulate_one =
            |w: usize, i: usize| -> Result<Result<Option<Record>, TraceSourceError>, String> {
                let unit_start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    options.fault.maybe_panic_design(i);
                    let d = designs[i];
                    let config = d
                        .cache_config()
                        .unwrap_or_else(|e| panic!("invalid design {d}: {e}"));
                    let mut bank =
                        ReplayBank::with_options(&[config], self.evaluator.bus_encoding, false);
                    let events = match stream_into(&mut bank)? {
                        Some(events) => events,
                        None => return Ok(None),
                    };
                    scanned.fetch_add(events, Ordering::Relaxed);
                    replayed.fetch_add(events, Ordering::Relaxed);
                    let record = self
                        .evaluator
                        .evaluate_bank_reports(&[(d, false)], &bank.finish())
                        .pop()
                        .expect("bank of one yields one record");
                    Ok(Some((record, events)))
                }))
                .map_err(panic_message);
                match result {
                    Ok(Ok(Some((record, events)))) => {
                        let dur = unit_start.elapsed();
                        hists.design.record(dur);
                        if let Some(o) = obs {
                            o.counters.add_done(1);
                            o.unit(
                                "simulate",
                                "sim",
                                w as u64,
                                dur,
                                &[("events", FieldValue::U64(events))],
                            );
                        }
                        Ok(Ok(Some(record)))
                    }
                    Ok(Ok(None)) => Ok(Ok(None)),
                    Ok(Err(e)) => Ok(Err(e)),
                    Err(message) => Err(message),
                }
            };

        let worker_busy = try_steal_loop(workers, shards.len(), |w, s| {
            if out_of_time() || stop.load(Ordering::Relaxed) {
                return;
            }
            let members = &shards[s];
            let fresh = members
                .iter()
                .filter(|&&i| record_slots[i].get().is_none())
                .count();
            if fresh == 0 {
                return; // whole shard resumed from the checkpoint
            }
            let unit_start = Instant::now();
            let scan = catch_unwind(AssertUnwindSafe(
                || -> Result<Option<(Vec<Record>, u64)>, TraceSourceError> {
                    options.fault.maybe_panic_group(s);
                    let bank_designs: Vec<(CacheDesign, bool)> =
                        members.iter().map(|&i| (designs[i], false)).collect();
                    let configs: Vec<memsim::CacheConfig> = bank_designs
                        .iter()
                        .map(|(d, _)| {
                            d.cache_config()
                                .unwrap_or_else(|e| panic!("invalid design {d}: {e}"))
                        })
                        .collect();
                    let mut bank =
                        ReplayBank::with_options(&configs, self.evaluator.bus_encoding, false);
                    let events = match stream_into(&mut bank)? {
                        Some(events) => events,
                        None => return Ok(None),
                    };
                    scanned.fetch_add(events, Ordering::Relaxed);
                    replayed.fetch_add(events * members.len() as u64, Ordering::Relaxed);
                    let records = self
                        .evaluator
                        .evaluate_bank_reports(&bank_designs, &bank.finish());
                    Ok(Some((records, events)))
                },
            ));
            match scan {
                Ok(Ok(Some((records, events)))) => {
                    let dur = unit_start.elapsed();
                    hists.scan.record(dur);
                    for (&i, record) in members.iter().zip(records) {
                        complete(i, record);
                    }
                    if let Some(o) = obs {
                        o.counters.add_done(fresh as u64);
                        o.unit(
                            "simulate",
                            "scan",
                            w as u64,
                            dur,
                            &[
                                ("events", FieldValue::U64(events)),
                                ("width", FieldValue::U64(members.len() as u64)),
                                ("fresh", FieldValue::U64(fresh as u64)),
                            ],
                        );
                    }
                }
                Ok(Ok(None)) => {} // deadline fired mid-stream: partial result
                Ok(Err(e)) => fail_source(e),
                Err(payload) => {
                    // Fallback: re-stream each member alone; only a design
                    // that also fails there is quarantined.
                    let _ = panic_message(payload);
                    let mut retried_here = 0u64;
                    for &i in members {
                        if record_slots[i].get().is_some()
                            || out_of_time()
                            || stop.load(Ordering::Relaxed)
                        {
                            continue;
                        }
                        retried.fetch_add(1, Ordering::Relaxed);
                        retried_here += 1;
                        match simulate_one(w, i) {
                            Ok(Ok(Some(record))) => complete(i, record),
                            Ok(Ok(None)) => {} // deadline
                            Ok(Err(e)) => fail_source(e),
                            Err(message) => quarantine(SweepError {
                                design_index: i,
                                design: designs[i],
                                engine: "stream-fallback",
                                message,
                            }),
                        }
                    }
                    if let Some(o) = obs {
                        o.point(
                            "supervise",
                            "retry",
                            &[
                                ("group", FieldValue::U64(s as u64)),
                                ("count", FieldValue::U64(retried_here)),
                            ],
                        );
                    }
                }
            }
        });
        drop(simulate_span);
        let worker_busy = worker_busy.map_err(|message| TraceError::WorkerPanic { message })?;
        if let Some(e) = source_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(TraceError::Source(e));
        }
        let simulate_time = phase_start.elapsed();

        // Final flush so the sidecar captures the tail of the sweep.
        let (checkpoints_written, checkpoints_failed) = match options.checkpoint.as_ref() {
            Some(policy) => {
                let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
                if sink.since_flush > 0 || sink.flushes == 0 {
                    flush_with_id(&mut sink, policy);
                }
                (sink.written, sink.failed)
            }
            None => (0, 0),
        };

        let phase_start = Instant::now();
        let select_span = Span::begin(obs, "select");
        let records: Vec<Option<Record>> =
            record_slots.into_iter().map(OnceLock::into_inner).collect();
        let mut errors = errors.into_inner().unwrap_or_else(|p| p.into_inner());
        errors.sort_by_key(|e| e.design_index);
        drop(select_span);
        let select_time = phase_start.elapsed();

        let max_bank_width = shards.iter().map(Vec::len).max().unwrap_or(0);
        let mut telemetry = SweepTelemetry {
            designs_evaluated: records.iter().filter(|r| r.is_some()).count(),
            layouts_computed: 0,
            traces_generated: 1,
            trace_events_generated: workload.events(),
            trace_events_replayed: replayed.into_inner(),
            trace_events_scanned: scanned.into_inner(),
            fused_groups: shards.len(),
            max_bank_width,
            workers,
            simulate_time,
            select_time,
            total_time: sweep_start.elapsed(),
            worker_busy,
            designs_quarantined: errors.len(),
            designs_retried: retried.into_inner(),
            checkpoints_written,
            checkpoints_failed,
            records_resumed,
            cancelled: cancelled.into_inner(),
            peak_chunk_bytes: peak_chunk_bytes.into_inner(),
            ..SweepTelemetry::default()
        };
        hists.fill(&mut telemetry);
        Ok(SweepOutcome {
            records,
            errors,
            telemetry,
        })
    }
}

/// Mutable checkpoint state shared by workers (see
/// `supervisor::Sink` — duplicated here because both are private
/// implementation details of their engines).
struct CheckpointSink {
    entries: Vec<(usize, Record)>,
    since_flush: usize,
    flushes: usize,
    written: usize,
    failed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::din::{write_din, DinLabel, DinRecord};

    fn din_text(records: &[DinRecord]) -> String {
        let mut buf = Vec::new();
        write_din(&mut buf, records).unwrap();
        String::from_utf8(buf).unwrap()
    }

    fn sample_records(n: u64) -> Vec<DinRecord> {
        (0..n)
            .map(|i| DinRecord {
                label: if i % 7 == 3 {
                    DinLabel::Write
                } else {
                    DinLabel::Read
                },
                addr: (i * 4) % 512,
            })
            .collect()
    }

    fn small_grid() -> Vec<CacheDesign> {
        let mut v = Vec::new();
        for t in [64usize, 128, 256] {
            for l in [8usize, 16] {
                for s in [1usize, 2] {
                    v.push(CacheDesign::new(t, l, s, 1));
                }
            }
        }
        v
    }

    #[test]
    fn streamed_matches_materialized_replay() {
        let records = sample_records(3000);
        let workload = TraceWorkload::from_text("inline.din", din_text(&records))
            .unwrap()
            .with_chunk_capacity(97);
        let designs = small_grid();
        let explorer = Explorer::default();
        let (streamed, telemetry) = explorer.explore_trace(&workload, &designs).unwrap();

        // Materialized reference: same events through the whole-slice path.
        let events: Vec<TraceEvent> = records
            .iter()
            .map(|r| memsim::source::din_event(r.label, r.addr))
            .collect();
        let bank: Vec<(CacheDesign, bool)> = designs.iter().map(|&d| (d, false)).collect();
        let reference = explorer.evaluator.evaluate_bank_with_trace(&bank, &events);
        assert_eq!(streamed, reference);
        assert_eq!(telemetry.trace_events_generated, 3000);
        assert_eq!(telemetry.designs_evaluated, designs.len());
        assert!(telemetry.peak_chunk_bytes > 0);
        assert_eq!(telemetry.fused_groups, 1); // 12 designs, one shard
    }

    #[test]
    fn chunk_capacity_is_invisible_in_records() {
        let text = din_text(&sample_records(500));
        let designs = small_grid();
        let explorer = Explorer::default();
        let base = TraceWorkload::from_text("t.din", text.clone()).unwrap();
        let (reference, _) = explorer.explore_trace(&base, &designs).unwrap();
        for cap in [1usize, 7, 64, 4096] {
            let w = TraceWorkload::from_text("t.din", text.clone())
                .unwrap()
                .with_chunk_capacity(cap);
            assert_eq!(w.fingerprint(), base.fingerprint());
            let (records, _) = explorer.explore_trace(&w, &designs).unwrap();
            assert_eq!(records, reference, "chunk capacity {cap} changed records");
        }
    }

    #[test]
    fn malformed_trace_is_a_typed_source_error() {
        let workload = TraceWorkload::from_text("bad.din", "0 40\n9 zz\n");
        match workload {
            Err(TraceError::Source(TraceSourceError::Parse { path, .. })) => {
                assert_eq!(path, "bad.din");
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = TraceWorkload::from_path("/nonexistent/trace.din").unwrap_err();
        assert!(matches!(
            err,
            TraceError::Source(TraceSourceError::Io { .. })
        ));
        assert!(err.to_string().contains("trace source failed"));
    }

    #[test]
    fn sweep_id_tracks_content_and_grid() {
        let a = TraceWorkload::from_text("a.din", "0 40\n0 44\n").unwrap();
        let b = TraceWorkload::from_text("b.din", "0 40\n1 44\n").unwrap();
        let eval = Evaluator::default();
        let grid = small_grid();
        let id_a = trace_sweep_id(&a, &grid, &eval);
        assert_eq!(id_a, trace_sweep_id(&a, &grid, &eval));
        assert_ne!(id_a, trace_sweep_id(&b, &grid, &eval));
        assert_ne!(id_a, trace_sweep_id(&a, &grid[..3], &eval));
    }

    #[test]
    fn trace_design_space_pins_tiling() {
        let space = TraceWorkload::design_space();
        assert_eq!(space.tilings, vec![1]);
        assert!(space.designs().iter().all(|d| d.tiling == 1));
    }
}
