//! **MemExplore** — energy-aware data-cache design-space exploration for
//! embedded systems.
//!
//! This is the primary contribution of Shiue & Chakrabarti, *Memory
//! Exploration for Low Power, Embedded Systems* (DAC 1999): choose the
//! on-chip data-cache configuration `(cache size T, line size L, set
//! associativity S, tiling size B)` for a given application using **three**
//! performance metrics — cache size, processor cycles, and *energy* — rather
//! than the traditional two. The headline findings this crate reproduces:
//!
//! * increasing cache size / line size / tiling / associativity reduces the
//!   miss rate and cycle count but **not necessarily the energy**;
//! * off-chip data placement is the single largest performance lever
//!   (conflict misses can be eliminated for compatible patterns);
//! * the minimum-energy configuration differs from the minimum-time one, and
//!   the whole-program optimum differs from every kernel's optimum.
//!
//! The exploration loop (paper's `Algorithm MemExplore`):
//!
//! ```text
//! for cache size T (powers of 2, < M)
//!   for line size L (powers of 2, < T)
//!     for set associativity S (powers of 2, ≤ 8)
//!       for tiling size B (powers of 2, ≤ T/L)
//!         estimate cycles C and energy E
//! select (T, L, S, B) maximizing performance under the given bounds
//! ```
//!
//! # Quick start
//!
//! ```
//! use memexplore::{DesignSpace, Explorer};
//! use loopir::kernels;
//!
//! let explorer = Explorer::default(); // CY7C SRAM, optimized placement
//! let records = explorer.explore(&kernels::compress(31), &DesignSpace::small());
//! let best = memexplore::select::min_energy(&records).expect("non-empty space");
//! println!("minimum-energy configuration: {}", best.design);
//! ```

pub mod analytic;
pub mod cache;
pub mod checkpoint;
pub mod composite;
pub mod cycles;
pub mod explore;
pub mod fault;
pub mod hierarchy;
pub mod metrics;
pub mod obs;
pub mod pareto;
pub mod search;
pub mod select;
pub mod shard;
pub mod spm;
pub mod supervisor;
pub mod telemetry;
pub mod workload;

pub use cache::{fnv1a_128, CacheKey, CacheStats, FlightGuard, Lookup, ResultCache};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use composite::{CompositeProgram, CompositeRecord};
pub use cycles::CycleModel;
pub use explore::{DesignSpace, Engine, ExploreError, Explorer};
pub use fault::FaultPlan;
pub use metrics::{CacheDesign, Evaluator, PlacementMode, Record};
pub use obs::{
    Event, EventKind, FieldValue, LatencyHistogram, LatencySummary, Obs, ObsConfig, ObsSink,
    RunReport,
};
pub use search::{Objective, SearchOptions, SearchOutcome};
pub use shard::{
    backoff_delay, partition, run_sharded, CoordinatorOptions, MergeStats, ShardError,
    ShardExecutor, ShardHandle, ShardOutput, ShardSpec, ShardedOutcome, ThreadExecutor,
};
pub use supervisor::{CheckpointPolicy, SweepError, SweepOptions, SweepOutcome};
pub use telemetry::SweepTelemetry;
pub use workload::{trace_sweep_id, TraceError, TraceWorkload, TRACE_BANK_WIDTH};
