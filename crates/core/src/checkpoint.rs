//! Sweep checkpoint files.
//!
//! A checkpoint is a sidecar file holding the records a sweep has already
//! completed, so a killed run can resume without re-simulating them (see
//! [`supervisor`](crate::supervisor)). The format is a fixed binary layout
//! written atomically (temp file + rename), self-describing enough to
//! reject anything that is not a complete, matching checkpoint:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"MXCK"
//!      4     4  format version (LE u32, currently 1)
//!      8     8  sweep id (LE u64) — hash of kernel + grid + evaluator
//!     16     8  entry count (LE u64)
//!     24     8  payload length in bytes (LE u64) = count * 80
//!     32     8  FNV-1a-64 checksum of the payload (LE u64)
//!     40     …  payload: per entry, ten LE u64 words
//!               (design index, cache size, line, assoc, tiling,
//!                miss_rate bits, cycles bits, energy bits,
//!                trip count, conflict-free flag)
//! ```
//!
//! Floats are stored via [`f64::to_bits`], so a resumed sweep reproduces
//! records *bit-identically* — the property the resume tests assert.
//! Every load failure maps to a typed [`CheckpointError`]; a truncated,
//! corrupted, or version-skewed file is reported cleanly and never
//! panics or yields partial garbage.

use crate::metrics::{CacheDesign, Record};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: "MemXplore ChecKpoint".
pub const MAGIC: [u8; 4] = *b"MXCK";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 40;
/// Serialized size of one entry in bytes (ten LE u64 words).
pub const ENTRY_LEN: usize = 80;

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure, with the path it occurred on.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// File is shorter than its header or declared payload.
    Truncated { expected: usize, got: usize },
    /// Leading magic bytes are not `MXCK`.
    BadMagic,
    /// Format version this build does not understand; carries both the
    /// version found in the header and the one this build supports so
    /// the operator can tell which side is stale.
    BadVersion { found: u32, supported: u32 },
    /// Payload checksum mismatch (bit rot or a torn write).
    BadChecksum { expected: u64, got: u64 },
    /// Checkpoint belongs to a different sweep configuration.
    SweepMismatch { expected: u64, found: u64 },
    /// An entry's design index is out of range for the current sweep.
    BadEntry { index: u64, designs: usize },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "checkpoint `{path}`: {source}"),
            Self::Truncated { expected, got } => {
                write!(f, "truncated checkpoint: need {expected} bytes, found {got}")
            }
            Self::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Self::BadVersion { found, supported } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this build reads version {supported})"
                )
            }
            Self::BadChecksum { expected, got } => write!(
                f,
                "corrupt checkpoint: checksum {got:#018x}, expected {expected:#018x}"
            ),
            Self::SweepMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different sweep (id {found:#018x}, this sweep is {expected:#018x})"
            ),
            Self::BadEntry { index, designs } => write!(
                f,
                "corrupt checkpoint: design index {index} out of range for {designs} designs"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit hash — the checksum and sweep-id primitive (std-only,
/// stable across platforms and runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// In-memory form of a checkpoint: which sweep it belongs to and the
/// completed `(design index, record)` pairs, in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Hash binding the file to one (kernel, grid, evaluator) sweep.
    pub sweep_id: u64,
    /// Completed records, keyed by their index in the design grid.
    pub entries: Vec<(usize, Record)>,
}

impl Checkpoint {
    /// Serializes to the on-disk byte layout described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.entries.len() * ENTRY_LEN);
        for (idx, r) in &self.entries {
            for word in [
                *idx as u64,
                r.design.cache_size as u64,
                r.design.line as u64,
                r.design.assoc as u64,
                r.design.tiling,
                r.miss_rate.to_bits(),
                r.cycles.to_bits(),
                r.energy_nj.to_bits(),
                r.trip_count,
                r.conflict_free as u64,
            ] {
                payload.extend_from_slice(&word.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.sweep_id.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and fully validates the byte layout. Any deviation —
    /// truncation at *any* offset, flipped bits, wrong magic or version —
    /// yields a typed error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |b: &[u8], o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let version = u32_at(4);
        if version != VERSION {
            return Err(CheckpointError::BadVersion {
                found: version,
                supported: VERSION,
            });
        }
        let sweep_id = u64_at(bytes, 8);
        let count = u64_at(bytes, 16);
        let payload_len = u64_at(bytes, 24);
        let checksum = u64_at(bytes, 32);
        if payload_len != count.saturating_mul(ENTRY_LEN as u64) {
            // The header is internally inconsistent; report it as the
            // corruption it is rather than over- or under-reading.
            return Err(CheckpointError::BadChecksum {
                expected: checksum,
                got: fnv1a(&bytes[HEADER_LEN..]),
            });
        }
        let expected_total = HEADER_LEN as u64 + payload_len;
        if (bytes.len() as u64) < expected_total {
            return Err(CheckpointError::Truncated {
                expected: expected_total as usize,
                got: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
        let got = fnv1a(payload);
        if got != checksum {
            return Err(CheckpointError::BadChecksum {
                expected: checksum,
                got,
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for e in 0..count as usize {
            let at = |w: usize| u64_at(payload, e * ENTRY_LEN + w * 8);
            entries.push((
                at(0) as usize,
                Record {
                    // The entry format stores geometry only; resumes of
                    // policy-bearing grids re-stamp the design from the
                    // grid (the sweep id pins it — see the supervisor).
                    design: CacheDesign::new(at(1) as usize, at(2) as usize, at(3) as usize, at(4)),
                    miss_rate: f64::from_bits(at(5)),
                    cycles: f64::from_bits(at(6)),
                    energy_nj: f64::from_bits(at(7)),
                    trip_count: at(8),
                    conflict_free: at(9) != 0,
                },
            ));
        }
        Ok(Checkpoint { sweep_id, entries })
    }

    /// Writes the checkpoint atomically: the bytes go to `<path>.tmp`,
    /// are flushed, and the temp file is renamed over `path`. A reader
    /// (or a crash at any instant) sees either the previous complete
    /// checkpoint or this one — never a torn mix.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |source: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            source,
        };
        let tmp = path.with_extension("tmp");
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&self.to_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and validates a checkpoint from disk.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path).map_err(|source| CheckpointError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let record = |i: u64| Record {
            design: CacheDesign::new(1 << (6 + i), 8, 2, 4),
            miss_rate: 0.125 + i as f64 * 0.001,
            cycles: 1e6 + i as f64,
            energy_nj: 42.5 * (i + 1) as f64,
            trip_count: 1000 + i,
            conflict_free: i.is_multiple_of(2),
        };
        Checkpoint {
            sweep_id: 0xdead_beef_cafe_f00d,
            entries: (0..5).map(|i| (i as usize * 3, record(i))).collect(),
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let ck = sample();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        // Record's PartialEq is bitwise on the floats, so this asserts
        // bit-identity, not approximate equality.
        assert_eq!(ck, back);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint {
            sweep_id: 7,
            entries: Vec::new(),
        };
        assert_eq!(Checkpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn every_truncation_point_is_a_clean_error() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..len])
                .expect_err("truncated checkpoint must not parse");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::BadChecksum { .. }
                ),
                "length {len}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let mut bytes = sample().to_bytes();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let good = sample().to_bytes();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        assert!(matches!(
            Checkpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));
        let mut bad_version = good;
        bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bad_version),
            Err(CheckpointError::BadVersion {
                found: 99,
                supported: VERSION
            })
        ));
    }

    /// Regression: a v-next header on otherwise-valid bytes must be
    /// rejected as version skew — checked *before* the checksum so the
    /// operator sees "unsupported version", not a misleading bit-rot
    /// report — and the message must name both versions.
    #[test]
    fn version_skew_is_reported_before_checksum_and_names_both_versions() {
        let mut next = sample().to_bytes();
        next[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let err = Checkpoint::from_bytes(&next).unwrap_err();
        match &err {
            CheckpointError::BadVersion { found, supported } => {
                assert_eq!(*found, VERSION + 1);
                assert_eq!(*supported, VERSION);
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains(&format!("version {}", VERSION + 1)), "{msg}");
        assert!(msg.contains(&format!("version {VERSION}")), "{msg}");
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("memx-ck-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let ck = sample();
        ck.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ck);
        // Overwrite with a longer checkpoint; the rename replaces cleanly.
        let mut bigger = ck.clone();
        bigger.entries.extend_from_slice(&ck.entries);
        bigger.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), bigger);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::read(Path::new("/nonexistent/sweep.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }));
        assert!(err.to_string().contains("/nonexistent/sweep.ckpt"));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
