//! The analytic fast path: trace groups resolved in closed form.
//!
//! The fused engine's unit of work is a trace group — one arena slice
//! plus the bank of designs replaying it. [`try_group_records`] attempts
//! to produce that bank's records *without* replay, using the exact
//! per-class calculator in [`analysis::exact`]: if the group's trace is
//! read-only and every design either never evicts or never re-references
//! an evicted line, the full simulator report (counters and both buses)
//! follows in closed form, and the records — built through the same
//! [`Evaluator::evaluate_bank_reports`] tail as replayed groups — are
//! bit-identical to simulation.
//!
//! Profiling costs one trace scan, so groups are gated first by a cheap
//! capacity heuristic: the attempt is only made when every design in the
//! bank could hold the kernel's whole array footprint. Smaller caches
//! essentially never classify exact (the paper grids never do), and the
//! gate keeps the fast path free for them. The `--no-analytic` escape
//! hatch ([`Explorer::analytic`](crate::Explorer)) disables the attempt
//! entirely.

use crate::metrics::{CacheDesign, Evaluator, Record};
use analysis::exact::{exact_report, profile_read_class, ClassProfile};
use loopir::Kernel;
use memsim::{SimReport, TraceEvent};

/// Total bytes of every array the kernel declares — the capacity gate
/// for attempting analytic classification.
pub fn kernel_footprint_bytes(kernel: &Kernel) -> u64 {
    kernel.arrays.iter().map(|a| a.byte_size() as u64).sum()
}

/// Attempts to resolve a whole trace group in closed form. Returns the
/// bank's records (input order, bit-identical to replay) when *every*
/// design classifies analytic-exact; `None` sends the group to the
/// replay engine. A `scalar_replay` evaluator always declines — it
/// exists to time the replay engine honestly.
pub fn try_group_records(
    evaluator: &Evaluator,
    footprint: u64,
    bank: &[(CacheDesign, bool)],
    trace: &[TraceEvent],
) -> Option<Vec<Record>> {
    if bank.is_empty() || evaluator.scalar_replay {
        return None;
    }
    if bank.iter().any(|(d, _)| (d.cache_size as u64) < footprint) {
        return None;
    }
    let mut profiles: Vec<(usize, ClassProfile)> = Vec::new();
    let mut reports: Vec<SimReport> = Vec::with_capacity(bank.len());
    for (d, _) in bank {
        let config = d.cache_config().ok()?;
        let class = match profiles.iter().position(|(line, _)| *line == d.line) {
            Some(i) => i,
            None => {
                let profile = profile_read_class(trace, d.line, evaluator.bus_encoding)?;
                profiles.push((d.line, profile));
                profiles.len() - 1
            }
        };
        reports.push(exact_report(&profiles[class].1, config)?);
    }
    Some(evaluator.evaluate_bank_reports(bank, &reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::read_trace;
    use loopir::{kernels, DataLayout};

    #[test]
    fn footprint_sums_all_arrays() {
        // matadd(6): three 6x6 arrays of 4 B elements.
        assert_eq!(kernel_footprint_bytes(&kernels::matadd(6)), 3 * 36 * 4);
    }

    #[test]
    fn ample_group_matches_replay_bit_for_bit() {
        let k = kernels::matadd(8);
        let layout = DataLayout::natural(&k);
        let trace = read_trace(&k, &layout);
        let eval = Evaluator::default();
        let footprint = kernel_footprint_bytes(&k);
        let bank: Vec<(CacheDesign, bool)> = [1usize, 2, 4]
            .iter()
            .map(|&s| (CacheDesign::new(4096, 16, s, 1), false))
            .collect();
        let analytic =
            try_group_records(&eval, footprint, &bank, &trace).expect("ample caches classify");
        let replayed = eval.evaluate_bank_with_trace(&bank, &trace);
        assert_eq!(analytic, replayed);
    }

    #[test]
    fn small_caches_are_gated_out() {
        let k = kernels::matadd(8);
        let layout = DataLayout::natural(&k);
        let trace = read_trace(&k, &layout);
        let eval = Evaluator::default();
        let footprint = kernel_footprint_bytes(&k);
        let bank = vec![
            (CacheDesign::new(4096, 16, 1, 1), false),
            (CacheDesign::new(64, 16, 1, 1), false), // below the footprint
        ];
        assert!(try_group_records(&eval, footprint, &bank, &trace).is_none());
    }

    #[test]
    fn scalar_replay_evaluator_declines() {
        let k = kernels::matadd(8);
        let layout = DataLayout::natural(&k);
        let trace = read_trace(&k, &layout);
        let eval = Evaluator {
            scalar_replay: true,
            ..Evaluator::default()
        };
        let footprint = kernel_footprint_bytes(&k);
        let bank = vec![(CacheDesign::new(4096, 16, 1, 1), false)];
        assert!(try_group_records(&eval, footprint, &bank, &trace).is_none());
    }
}
