//! Two-level (L1 + on-chip L2) exploration.
//!
//! The paper's single-cache exploration generalises directly: an on-chip L2
//! behind the L1 trades extra cell-array energy per L1 miss against far
//! cheaper off-chip traffic. This module sweeps `(L1, L2)` pairs over a
//! kernel using the [`memsim::Hierarchy`] substrate, charging
//!
//! * L1 hits with the paper's `E_hit(L1)`,
//! * L1 misses that hit the L2 with `E_hit(L1) + E_hit(L2)` (probe + on-chip
//!   refill — no pads, no off-chip access),
//! * L2 misses with the full `E_miss(L2)` off-chip path,
//!
//! and a cycle model where an L2 hit costs [`L2_HIT_CYCLES`] instead of the
//! paper's 40–72-cycle off-chip penalty.
//!
//! A faithful consequence of the paper's linear `E_cell = β·8·T` model: a
//! 4 KiB on-chip array costs ~65 nJ per access — more than a whole line
//! fill from the cheap 2 Mbit SRAM (≈40 nJ at L = 8). An on-chip L2 is
//! therefore an energy win only against *expensive* off-chip memory
//! (Em = 43.56 nJ), while it is always a large cycle win. Real SRAM energy
//! grows sub-linearly with capacity, so treat absolute L2 numbers with the
//! same caution as the rest of the model.
//!
//! # Example
//!
//! ```
//! use loopir::kernels;
//! use memexplore::hierarchy::{explore_two_level, TwoLevelSpace};
//! use memexplore::Evaluator;
//!
//! let records = explore_two_level(
//!     &kernels::matmul(16),
//!     &TwoLevelSpace::small(),
//!     &Evaluator::default(),
//! );
//! assert!(!records.is_empty());
//! ```

use crate::metrics::{CacheDesign, Evaluator};
use loopir::{AccessKind, Kernel, TraceGen};
use memsim::{CacheConfig, Hierarchy, HierarchyReport};

/// Cycles for an L1 miss served by the on-chip L2 (tag check + array read +
/// line transfer on an on-chip bus) — far below the paper's 40+ cycle
/// off-chip penalty.
pub const L2_HIT_CYCLES: f64 = 6.0;

/// The swept `(L1, L2)` pairs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TwoLevelSpace {
    /// L1 sizes (bytes).
    pub l1_sizes: Vec<usize>,
    /// L1 line sizes (bytes).
    pub l1_lines: Vec<usize>,
    /// L2 sizes (bytes); must exceed the paired L1.
    pub l2_sizes: Vec<usize>,
    /// L2 line sizes (bytes); must be ≥ the paired L1 line.
    pub l2_lines: Vec<usize>,
}

impl TwoLevelSpace {
    /// A compact grid for studies and tests.
    pub fn small() -> Self {
        TwoLevelSpace {
            l1_sizes: vec![32, 64, 128],
            l1_lines: vec![8, 16],
            l2_sizes: vec![512, 1024, 4096],
            l2_lines: vec![16, 32],
        }
    }

    /// Enumerates the valid pairs (L2 strictly larger, L2 line ≥ L1 line).
    pub fn pairs(&self) -> Vec<(CacheConfig, CacheConfig)> {
        let mut out = Vec::new();
        for &t1 in &self.l1_sizes {
            for &l1 in &self.l1_lines {
                let Ok(c1) = CacheConfig::new(t1, l1, 1) else {
                    continue;
                };
                for &t2 in &self.l2_sizes {
                    for &l2 in &self.l2_lines {
                        if t2 <= t1 || l2 < l1 {
                            continue;
                        }
                        let Ok(c2) = CacheConfig::new(t2, l2, 4) else {
                            continue;
                        };
                        out.push((c1, c2));
                    }
                }
            }
        }
        out
    }
}

/// One evaluated `(L1, L2)` pair.
#[derive(Clone, Debug)]
pub struct TwoLevelRecord {
    /// L1 configuration.
    pub l1: CacheConfig,
    /// L2 configuration.
    pub l2: CacheConfig,
    /// Per-level counters.
    pub report: HierarchyReport,
    /// Total cycles.
    pub cycles: f64,
    /// Total energy (nanojoules).
    pub energy_nj: f64,
}

impl TwoLevelRecord {
    /// The fraction of processor reads served from off-chip.
    pub fn global_miss_rate(&self) -> f64 {
        self.report.global_miss_rate()
    }
}

/// Evaluates one `(L1, L2)` pair on the kernel's read trace (optimized
/// placement at L1 granularity).
pub fn evaluate_two_level(
    kernel: &Kernel,
    l1: CacheConfig,
    l2: CacheConfig,
    evaluator: &Evaluator,
) -> TwoLevelRecord {
    let (layout, _) = evaluator.layout_for(kernel, l1.size(), l1.line());
    let mut h = Hierarchy::new(l1, l2);
    for a in TraceGen::new(kernel, &layout).filter(|a| a.kind == AccessKind::Read) {
        h.step(memsim::TraceEvent::read(a.addr, a.size));
    }
    let report = h.report();

    let l1_design = CacheDesign::new(l1.size(), l1.line(), l1.assoc(), 1);
    let l2_design = CacheDesign::new(l2.size(), l2.line(), l2.assoc(), 1);
    let l1_cfg = l1_design.cache_config().expect("validated above");
    let l2_cfg = l2_design.cache_config().expect("validated above");

    // Cycles: L1 hits at the paper's hit cost; L2 hits at the on-chip
    // penalty; L2 misses at the paper's off-chip penalty for the L2 line.
    let cm = &evaluator.cycle_model;
    let l1_hits = report.l1.read_hits as f64;
    let l2_hits = report.l2.read_hits as f64;
    let l2_misses = report.l2.read_misses() as f64;
    let cycles = l1_hits * cm.cycles_per_hit(l1.assoc())
        + l2_hits * L2_HIT_CYCLES
        + l2_misses * (1.0 + cm.cycles_per_miss(l2.line()));

    // Energy: see module docs. Address-bus switching approximated at 2
    // (Gray-coded kernel traces measure 2–7; the E_dec term is negligible
    // either way).
    let add_bs = 2.0;
    let em = &evaluator.energy_model;
    let e_l1_hit = em.hit_energy_nj(&l1_cfg, add_bs);
    let e_l2_hit = em.hit_energy_nj(&l2_cfg, add_bs);
    let e_l2_miss = em.miss_energy_nj(&l2_cfg, add_bs);
    let energy_nj =
        l1_hits * e_l1_hit + l2_hits * (e_l1_hit + e_l2_hit) + l2_misses * (e_l1_hit + e_l2_miss);

    TwoLevelRecord {
        l1,
        l2,
        report,
        cycles,
        energy_nj,
    }
}

/// Sweeps every pair of the space.
pub fn explore_two_level(
    kernel: &Kernel,
    space: &TwoLevelSpace,
    evaluator: &Evaluator,
) -> Vec<TwoLevelRecord> {
    space
        .pairs()
        .into_iter()
        .map(|(l1, l2)| evaluate_two_level(kernel, l1, l2, evaluator))
        .collect()
}

/// The minimum-energy pair of a sweep.
pub fn min_energy(records: &[TwoLevelRecord]) -> Option<&TwoLevelRecord> {
    records
        .iter()
        .min_by(|a, b| a.energy_nj.partial_cmp(&b.energy_nj).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::kernels;

    #[test]
    fn pairs_respect_the_geometry_constraints() {
        for (l1, l2) in TwoLevelSpace::small().pairs() {
            assert!(l2.size() > l1.size());
            assert!(l2.line() >= l1.line());
        }
    }

    #[test]
    fn l2_cuts_the_global_miss_rate_for_matmul() {
        // MatMult thrashes a 64 B L1; a 4 KB L2 holds the 3 KB working set.
        let kernel = kernels::matmul(16);
        let eval = Evaluator::default();
        let l1 = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let l2 = CacheConfig::new(4096, 32, 4).expect("valid geometry");
        let r = evaluate_two_level(&kernel, l1, l2, &eval);
        assert!(r.report.l1.read_miss_rate() > 0.3);
        assert!(r.global_miss_rate() < 0.05, "{}", r.global_miss_rate());
    }

    #[test]
    fn two_level_wins_cycles_always_and_energy_against_expensive_offchip() {
        // MatMult's working set exceeds any single small cache. Against the
        // cheap 2 Mbit part the L2's cell energy exceeds an off-chip fill
        // (see module docs), but against the 16 Mbit part it wins on both
        // axes.
        let kernel = kernels::matmul(16);
        let l1 = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let l2 = CacheConfig::new(4096, 32, 4).expect("valid geometry");

        let cheap = Evaluator::default(); // Em = 4.95 nJ
        let two_cheap = evaluate_two_level(&kernel, l1, l2, &cheap);
        let one_cheap = cheap.evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
        assert!(
            two_cheap.cycles < one_cheap.cycles,
            "the L2 always wins time"
        );
        assert!(
            two_cheap.energy_nj > one_cheap.energy_nj,
            "under the linear cell model the L2 loses energy vs cheap off-chip"
        );

        let dear = Evaluator::with_part(energy::SramPart::sram_16mbit());
        let two_dear = evaluate_two_level(&kernel, l1, l2, &dear);
        let one_dear = dear.evaluate(&kernel, CacheDesign::new(64, 8, 1, 1));
        assert!(
            two_dear.energy_nj < one_dear.energy_nj,
            "two-level {} should beat L1-only {} when off-chip is expensive",
            two_dear.energy_nj,
            one_dear.energy_nj
        );
    }

    #[test]
    fn sweep_returns_one_record_per_pair() {
        let kernel = kernels::matadd(6);
        let space = TwoLevelSpace::small();
        let records = explore_two_level(&kernel, &space, &Evaluator::default());
        assert_eq!(records.len(), space.pairs().len());
        assert!(min_energy(&records).is_some());
    }

    #[test]
    fn energy_accounts_every_read_once() {
        let kernel = kernels::sor(16);
        let eval = Evaluator::default();
        let l1 = CacheConfig::new(64, 8, 1).expect("valid geometry");
        let l2 = CacheConfig::new(1024, 16, 4).expect("valid geometry");
        let r = evaluate_two_level(&kernel, l1, l2, &eval);
        let reads = r.report.l1.reads;
        assert_eq!(
            r.report.l1.read_hits + r.report.l2.read_hits + r.report.l2.read_misses(),
            reads,
            "every read is an L1 hit, an L2 hit, or an off-chip access"
        );
    }
}
