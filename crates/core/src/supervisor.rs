//! Fault-isolated sweep supervision: panic quarantine, engine fallback,
//! checkpoint/resume, and deadline-bounded partial results.
//!
//! The plain sweep engines ([`Explorer::explore_designs_with_telemetry`])
//! treat a worker panic as fatal: long exhaustive sweeps lose every
//! simulated record to one bad design. [`Explorer::explore_supervised`]
//! instead wraps each *unit of work* — a trace group for the fused
//! engine, a single design for the per-design engine — in
//! [`catch_unwind`], and degrades per unit:
//!
//! * a panicking fused bank scan is **retried** once per member on the
//!   per-design engine (the fallback path), so one poisoned design in a
//!   bank cannot take its neighbours down with it;
//! * a panicking single design is **quarantined** into a structured
//!   [`SweepError`] instead of aborting;
//! * every unaffected design stays **bit-identical** to a clean run,
//!   because units share only immutable inputs (the interned sweep plan)
//!   and write-once output slots.
//!
//! With a [`CheckpointPolicy`], completed records are periodically
//! persisted through [`Checkpoint::write_atomic`]; a killed sweep resumed
//! from the sidecar file re-simulates only the missing designs and its
//! final output is bit-identical to an uninterrupted run. A cooperative
//! [`deadline`](SweepOptions::deadline) is checked at unit boundaries and
//! turns a timeout into a well-formed partial [`SweepOutcome`] flagged in
//! telemetry. The deterministic [`FaultPlan`] hooks (compiled in by the
//! `fault-injection` feature) let the suite drive each of these paths on
//! purpose.

use crate::checkpoint::{fnv1a, Checkpoint, CheckpointError};
use crate::explore::{panic_message, try_steal_loop, ExploreError, SweepHists, OBS_TICK_EVENTS};
use crate::fault::FaultPlan;
use crate::metrics::{CacheDesign, Evaluator, Record};
use crate::obs::{FieldValue, Span};
use crate::telemetry::SweepTelemetry;
use crate::{Engine, Explorer};
use loopir::Kernel;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How a supervised sweep persists progress.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Sidecar file written atomically (temp + rename).
    pub path: PathBuf,
    /// Flush after every `every` newly completed records (the final
    /// flush at sweep end always happens). Clamped to at least 1.
    pub every: usize,
    /// Load `path` before sweeping and skip every design it already
    /// holds. A missing file is treated as a fresh start; a corrupt or
    /// mismatched file is a typed error.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// Policy writing to `path` every 32 records, without resuming.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 32,
            resume: false,
        }
    }
}

/// Knobs of a supervised sweep. The default supervises panics only — no
/// checkpointing, no deadline, no injected faults.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint sidecar policy, if any.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Cooperative time budget, checked at unit-of-work boundaries.
    pub deadline: Option<Duration>,
    /// Deterministic fault plan (inert without the `fault-injection`
    /// feature).
    pub fault: FaultPlan,
}

/// One quarantined design: the sweep finished without it and recorded
/// why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Index of the design in the sweep grid.
    pub design_index: usize,
    /// The design itself.
    pub design: CacheDesign,
    /// Engine that panicked last: `"fused"`, `"per-design"`, or
    /// `"fallback"` (per-design retry after a fused bank panic).
    pub engine: &'static str,
    /// Panic payload, downcast to text.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design #{} ({}) quarantined on {} engine: {}",
            self.design_index, self.design, self.engine, self.message
        )
    }
}

/// Result of a supervised sweep: records in sweep order (`None` for
/// designs that were quarantined or never reached before cancellation),
/// the quarantine log, and the run's telemetry.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-design records, in the grid's sweep order.
    pub records: Vec<Option<Record>>,
    /// Quarantined designs, sorted by design index.
    pub errors: Vec<SweepError>,
    /// Counters and timings, including the supervisor's quarantine /
    /// retry / checkpoint / resume / cancellation accounting.
    pub telemetry: SweepTelemetry,
}

impl SweepOutcome {
    /// True when every design produced a record.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// The present records, in sweep order.
    pub fn completed_records(&self) -> Vec<Record> {
        self.records.iter().filter_map(Clone::clone).collect()
    }
}

/// Stable identity of a sweep configuration, stored in checkpoint
/// headers so a sidecar file can never be resumed against a different
/// kernel, design grid, or evaluator.
pub fn sweep_id(kernel: &Kernel, designs: &[CacheDesign], evaluator: &Evaluator) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(kernel.name.as_bytes());
    bytes.push(0);
    // Pure-geometry grids hash exactly as before this field existed, so
    // sidecar files from older runs stay resumable; policy-bearing grids
    // append their policy words and thus can never collide with them.
    let any_policies = designs.iter().any(|d| !d.has_default_policies());
    for d in designs {
        for word in [d.cache_size as u64, d.line as u64, d.assoc as u64, d.tiling] {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        if any_policies {
            let (r, seed) = match d.replacement {
                memsim::Replacement::Lru => (0u8, 0u64),
                memsim::Replacement::Fifo => (1, 0),
                memsim::Replacement::Plru => (2, 0),
                memsim::Replacement::Random { seed } => (3, seed),
            };
            let w = match d.write_policy {
                memsim::WritePolicy::WriteBackAllocate => 0u8,
                memsim::WritePolicy::WriteThroughNoAllocate => 1,
            };
            bytes.push(r);
            bytes.extend_from_slice(&seed.to_le_bytes());
            bytes.push(w);
        }
    }
    bytes.push(evaluator.placement as u8);
    bytes.push(evaluator.bus_encoding as u8);
    bytes.extend_from_slice(evaluator.energy_model.part.name.as_bytes());
    bytes.extend_from_slice(
        &evaluator
            .energy_model
            .part
            .energy_per_access_nj
            .to_bits()
            .to_le_bytes(),
    );
    fnv1a(&bytes)
}

/// Mutable checkpoint state shared by workers. Held only for pushes and
/// flushes — never across a simulation — so a unit panic cannot poison
/// it mid-update.
struct Sink {
    entries: Vec<(usize, Record)>,
    since_flush: usize,
    flushes: usize,
    written: usize,
    failed: usize,
}

impl Explorer {
    /// Runs the sweep under the fault-isolation supervisor. Layout and
    /// trace phases are shared inputs to every design, so a panic there
    /// is still a whole-sweep [`ExploreError`]; from the simulate phase
    /// on, failures degrade per unit of work as described in the module
    /// docs.
    pub fn explore_supervised(
        &self,
        kernel: &Kernel,
        designs: &[CacheDesign],
        options: &SweepOptions,
    ) -> Result<SweepOutcome, ExploreError> {
        let sweep_start = Instant::now();
        let workers = self.worker_count(designs.len());
        let id = sweep_id(kernel, designs, &self.evaluator);
        let obs = self.obs.as_deref();
        if let Some(o) = obs {
            o.counters
                .total
                .fetch_add(designs.len() as u64, Ordering::Relaxed);
        }

        // Resume: pre-fill output slots from the sidecar file.
        let record_slots: Vec<OnceLock<Record>> = designs.iter().map(|_| OnceLock::new()).collect();
        let mut resumed_entries: Vec<(usize, Record)> = Vec::new();
        if let Some(policy) = options.checkpoint.as_ref().filter(|p| p.resume) {
            match Checkpoint::read(&policy.path) {
                Ok(ck) => {
                    if ck.sweep_id != id {
                        return Err(CheckpointError::SweepMismatch {
                            expected: id,
                            found: ck.sweep_id,
                        }
                        .into());
                    }
                    for (idx, mut record) in ck.entries {
                        if idx >= designs.len() {
                            return Err(CheckpointError::BadEntry {
                                index: idx as u64,
                                designs: designs.len(),
                            }
                            .into());
                        }
                        // Entries persist geometry only; the sweep id just
                        // matched, so the grid's design (with policies) is
                        // the one this record was measured for.
                        record.design = designs[idx];
                        let _ = record_slots[idx].set(record.clone());
                        resumed_entries.push((idx, record));
                    }
                }
                // A missing sidecar just means nothing was completed yet
                // (the natural state of a fresh `--resume` invocation);
                // any other failure is a real, reportable error.
                Err(CheckpointError::Io { ref source, .. })
                    if source.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        let records_resumed = resumed_entries.len();
        if let Some(o) = obs {
            if records_resumed > 0 {
                o.counters.add_done(records_resumed as u64);
                o.point(
                    "supervise",
                    "resume",
                    &[("records", FieldValue::U64(records_resumed as u64))],
                );
            }
        }

        let hists = SweepHists::default();
        let plan = self.prepare(kernel, designs, workers, &hists)?;

        let phase_start = Instant::now();
        let simulate_span = Span::begin(obs, "simulate");
        let replayed = AtomicUsize::new(0);
        let scanned = AtomicUsize::new(0);
        let retried = AtomicUsize::new(0);
        let cancelled = AtomicBool::new(false);
        let deadline = options.deadline.map(|d| sweep_start + d);
        let errors: Mutex<Vec<SweepError>> = Mutex::new(Vec::new());
        let sink = Mutex::new(Sink {
            entries: resumed_entries,
            since_flush: 0,
            flushes: 0,
            written: 0,
            failed: 0,
        });

        // Locks in this phase never panic while held (pushes and atomic
        // file writes only), so a poisoned mutex means a supervisor bug —
        // recover the data rather than cascading the panic.
        let quarantine = |e: SweepError| {
            if let Some(o) = obs {
                o.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                o.point(
                    "supervise",
                    "quarantine",
                    &[
                        ("design", FieldValue::U64(e.design_index as u64)),
                        ("engine", FieldValue::Str(e.engine.to_string())),
                        ("message", FieldValue::Str(e.message.clone())),
                    ],
                );
            }
            errors.lock().unwrap_or_else(|p| p.into_inner()).push(e);
        };
        let flush_with_id = |sink: &mut Sink, policy: &CheckpointPolicy| {
            let nth = sink.flushes;
            sink.flushes += 1;
            sink.since_flush = 0;
            let flush_start = Instant::now();
            let ok = if options.fault.should_fail_checkpoint(nth) {
                sink.failed += 1;
                false
            } else {
                let ck = Checkpoint {
                    sweep_id: id,
                    entries: sink.entries.clone(),
                };
                match ck.write_atomic(&policy.path) {
                    Ok(()) => {
                        sink.written += 1;
                        true
                    }
                    // A failed flush loses nothing but recency: the previous
                    // checkpoint is still intact on disk (atomic rename), so
                    // the sweep keeps going and the counter reports it.
                    Err(_) => {
                        sink.failed += 1;
                        false
                    }
                }
            };
            let dur = flush_start.elapsed();
            hists.flush.record(dur);
            if let Some(o) = obs {
                o.point(
                    "checkpoint",
                    "flush",
                    &[
                        (
                            "dur_us",
                            FieldValue::U64(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX)),
                        ),
                        ("ok", FieldValue::U64(u64::from(ok))),
                        ("records", FieldValue::U64(sink.entries.len() as u64)),
                    ],
                );
            }
        };
        let complete = |idx: usize, record: Record| {
            if record_slots[idx].set(record.clone()).is_ok() {
                if let Some(policy) = options.checkpoint.as_ref() {
                    let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
                    sink.entries.push((idx, record));
                    sink.since_flush += 1;
                    if sink.since_flush >= policy.every.max(1) {
                        flush_with_id(&mut sink, policy);
                    }
                }
            }
        };
        let out_of_time = || {
            if cancelled.load(Ordering::Relaxed) {
                return true;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                // `swap` so exactly one worker emits the cancel event.
                if !cancelled.swap(true, Ordering::Relaxed) {
                    if let Some(o) = obs {
                        o.point("supervise", "deadline_cancel", &[]);
                    }
                }
                return true;
            }
            false
        };
        // Per-design simulation, shared by the per-design engine and the
        // fused engine's fallback path. `AssertUnwindSafe` is sound here:
        // the closure only reads the immutable plan/evaluator and a panic
        // cannot leave a half-written record, because the write-once slot
        // is only set after the evaluation returns (see also the panic-
        // safety audit in `memsim::bank`).
        let simulate_one = |w: usize, i: usize| -> Result<Record, String> {
            let unit_start = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| {
                options.fault.maybe_panic_design(i);
                let d = designs[i];
                let trace = plan.trace_of(&d);
                replayed.fetch_add(trace.len(), Ordering::Relaxed);
                scanned.fetch_add(trace.len(), Ordering::Relaxed);
                self.evaluator
                    .evaluate_with_trace(d, trace, plan.conflict_free_of(&d))
            }))
            .map_err(panic_message);
            if result.is_ok() {
                let dur = unit_start.elapsed();
                hists.design.record(dur);
                if let Some(o) = obs {
                    let events = plan.trace_of(&designs[i]).len() as u64;
                    o.counters.add_done(1);
                    o.counters.add_events(events);
                    o.unit(
                        "simulate",
                        "sim",
                        w as u64,
                        dur,
                        &[("events", FieldValue::U64(events))],
                    );
                }
            }
            result
        };

        let (worker_busy, fused_groups, max_bank_width) = match self.engine {
            Engine::Fused => {
                let groups = plan.groups(designs);
                let max_width = groups.iter().map(Vec::len).max().unwrap_or(0);
                let busy = try_steal_loop(workers, groups.len(), |w, g| {
                    if out_of_time() {
                        return;
                    }
                    let members = &groups[g];
                    let fresh = members
                        .iter()
                        .filter(|&&i| record_slots[i].get().is_none())
                        .count();
                    if fresh == 0 {
                        return; // whole group resumed from the checkpoint
                    }
                    let unit_start = Instant::now();
                    let scan = catch_unwind(AssertUnwindSafe(|| {
                        options.fault.maybe_panic_group(g);
                        let trace = plan
                            .arena
                            .get(&plan.keys[g])
                            .expect("trace phase interned every key");
                        scanned.fetch_add(trace.len(), Ordering::Relaxed);
                        replayed.fetch_add(trace.len() * members.len(), Ordering::Relaxed);
                        let bank: Vec<(CacheDesign, bool)> = members
                            .iter()
                            .map(|&i| (designs[i], plan.conflict_free_of(&designs[i])))
                            .collect();
                        let records = match obs {
                            Some(o) => self.evaluator.evaluate_bank_with_trace_ticked(
                                &bank,
                                trace,
                                OBS_TICK_EVENTS,
                                &|n| o.counters.add_events(n),
                            ),
                            None => self.evaluator.evaluate_bank_with_trace(&bank, trace),
                        };
                        (records, trace.len())
                    }));
                    match scan {
                        Ok((records, events)) => {
                            let dur = unit_start.elapsed();
                            hists.scan.record(dur);
                            for (&i, record) in members.iter().zip(records) {
                                complete(i, record);
                            }
                            if let Some(o) = obs {
                                o.counters.add_done(fresh as u64);
                                o.unit(
                                    "simulate",
                                    "scan",
                                    w as u64,
                                    dur,
                                    &[
                                        ("events", FieldValue::U64(events as u64)),
                                        ("width", FieldValue::U64(members.len() as u64)),
                                        ("fresh", FieldValue::U64(fresh as u64)),
                                    ],
                                );
                            }
                        }
                        Err(_) => {
                            // Fallback: re-run each member alone on the
                            // per-design engine; only a design that also
                            // panics there is quarantined.
                            let mut retried_here = 0u64;
                            for &i in members {
                                if record_slots[i].get().is_some() {
                                    continue;
                                }
                                retried.fetch_add(1, Ordering::Relaxed);
                                retried_here += 1;
                                match simulate_one(w, i) {
                                    Ok(record) => complete(i, record),
                                    Err(message) => quarantine(SweepError {
                                        design_index: i,
                                        design: designs[i],
                                        engine: "fallback",
                                        message,
                                    }),
                                }
                            }
                            if let Some(o) = obs {
                                o.point(
                                    "supervise",
                                    "retry",
                                    &[
                                        ("group", FieldValue::U64(g as u64)),
                                        ("count", FieldValue::U64(retried_here)),
                                    ],
                                );
                            }
                        }
                    }
                });
                (busy, groups.len(), max_width)
            }
            Engine::PerDesign => {
                let busy = try_steal_loop(workers, designs.len(), |w, i| {
                    if out_of_time() || record_slots[i].get().is_some() {
                        return;
                    }
                    match simulate_one(w, i) {
                        Ok(record) => complete(i, record),
                        Err(message) => quarantine(SweepError {
                            design_index: i,
                            design: designs[i],
                            engine: "per-design",
                            message,
                        }),
                    }
                });
                (busy, 0, 0)
            }
        };
        drop(simulate_span);
        let worker_busy = worker_busy.map_err(|message| ExploreError::WorkerPanic {
            phase: "simulate",
            message,
        })?;
        let simulate_time = phase_start.elapsed();

        // Final flush so the sidecar captures the tail of the sweep.
        let (checkpoints_written, checkpoints_failed) = match options.checkpoint.as_ref() {
            Some(policy) => {
                let mut sink = sink.lock().unwrap_or_else(|p| p.into_inner());
                if sink.since_flush > 0 || sink.flushes == 0 {
                    flush_with_id(&mut sink, policy);
                }
                (sink.written, sink.failed)
            }
            None => (0, 0),
        };

        let phase_start = Instant::now();
        let select_span = Span::begin(obs, "select");
        let records: Vec<Option<Record>> =
            record_slots.into_iter().map(OnceLock::into_inner).collect();
        let mut errors = errors.into_inner().unwrap_or_else(|p| p.into_inner());
        errors.sort_by_key(|e| e.design_index);
        drop(select_span);
        let select_time = phase_start.elapsed();

        let mut telemetry = SweepTelemetry {
            designs_evaluated: records.iter().filter(|r| r.is_some()).count(),
            layouts_computed: plan.pairs.len(),
            traces_generated: plan.keys.len(),
            trace_events_generated: plan.arena.events().len() as u64,
            trace_events_replayed: replayed.into_inner() as u64,
            trace_events_scanned: scanned.into_inner() as u64,
            fused_groups,
            max_bank_width,
            workers,
            layout_time: plan.layout_time,
            trace_time: plan.trace_time,
            simulate_time,
            select_time,
            total_time: sweep_start.elapsed(),
            worker_busy,
            designs_quarantined: errors.len(),
            designs_retried: retried.into_inner(),
            checkpoints_written,
            checkpoints_failed,
            records_resumed,
            cancelled: cancelled.into_inner(),
            ..SweepTelemetry::default()
        };
        hists.fill(&mut telemetry);
        debug_assert!(
            telemetry.worker_utilization() <= 1.05,
            "worker busy time overcounted: utilization {}",
            telemetry.worker_utilization()
        );
        Ok(SweepOutcome {
            records,
            errors,
            telemetry,
        })
    }
}
