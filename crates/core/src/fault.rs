//! Deterministic fault injection for supervisor tests.
//!
//! A [`FaultPlan`] names exactly which unit of work misbehaves: panic
//! while scanning the Nth fused trace group, panic while simulating the
//! Nth design, or fail the Nth checkpoint flush. Faults are keyed by the
//! unit's *index*, not by shared counters, so a plan fires identically
//! regardless of worker count or scheduling order — the property that
//! lets the suite assert bit-identity of every unaffected record.
//!
//! All trigger methods are no-ops unless the crate is built with the
//! `fault-injection` cargo feature; release binaries carry an inert,
//! zero-cost plan.

/// Which units of a supervised sweep should fail, and how.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic while the fused engine scans this trace-group index.
    pub panic_group: Option<usize>,
    /// Panic while simulating this design index (fires on the per-design
    /// engine and on the fused engine's per-design fallback path).
    pub panic_design: Option<usize>,
    /// Report failure for this (0-based) checkpoint flush.
    pub fail_checkpoint_write: Option<usize>,
    /// Kill the worker running this `(shard, attempt)` mid-shard; the
    /// coordinator must observe the loss and retry within its budget.
    pub drop_worker: Option<(usize, u32)>,
    /// Stall liveness for this `(shard, attempt)`: the attempt reports a
    /// stale heartbeat (and dawdles) so straggler detection must fire a
    /// speculative re-dispatch that wins the race.
    pub stall_heartbeat: Option<(usize, u32)>,
    /// Flip a byte in this `(shard, attempt)`'s result stream before the
    /// coordinator validates it — must surface as a typed checkpoint
    /// rejection followed by a re-dispatch, never as merged garbage.
    pub corrupt_stream: Option<(usize, u32)>,
}

impl FaultPlan {
    /// A plan that injects nothing — the default for production sweeps.
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives a reproducible plan from `seed`: one faulted group and one
    /// faulted design, chosen by an xorshift64 generator so suite tests
    /// can sweep many distinct fault sites without hand-picking indices.
    pub fn seeded(seed: u64, groups: usize, designs: usize) -> Self {
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        Self {
            panic_group: (groups > 0).then(|| next() as usize % groups),
            panic_design: (designs > 0).then(|| next() as usize % designs),
            ..Self::default()
        }
    }

    /// Panics iff fault injection is compiled in and `group` is the
    /// planned group. Called by the fused engine before scanning a bank.
    #[inline]
    pub fn maybe_panic_group(&self, group: usize) {
        if cfg!(feature = "fault-injection") && self.panic_group == Some(group) {
            panic!("injected fault: trace group {group}");
        }
    }

    /// Panics iff fault injection is compiled in and `design` is the
    /// planned design. Called before each single-design simulation.
    #[inline]
    pub fn maybe_panic_design(&self, design: usize) {
        if cfg!(feature = "fault-injection") && self.panic_design == Some(design) {
            panic!("injected fault: design {design}");
        }
    }

    /// True iff fault injection is compiled in and `flush` (0-based) is
    /// the planned checkpoint write to fail.
    #[inline]
    pub fn should_fail_checkpoint(&self, flush: usize) -> bool {
        cfg!(feature = "fault-injection") && self.fail_checkpoint_write == Some(flush)
    }

    /// True iff fault injection is compiled in and the worker executing
    /// `(shard, attempt)` should die mid-shard.
    #[inline]
    pub fn should_drop_worker(&self, shard: usize, attempt: u32) -> bool {
        cfg!(feature = "fault-injection") && self.drop_worker == Some((shard, attempt))
    }

    /// True iff fault injection is compiled in and `(shard, attempt)`'s
    /// heartbeat should read as stale to the coordinator.
    #[inline]
    pub fn should_stall_heartbeat(&self, shard: usize, attempt: u32) -> bool {
        cfg!(feature = "fault-injection") && self.stall_heartbeat == Some((shard, attempt))
    }

    /// True iff fault injection is compiled in and `(shard, attempt)`'s
    /// result stream should be corrupted before validation.
    #[inline]
    pub fn should_corrupt_stream(&self, shard: usize, attempt: u32) -> bool {
        cfg!(feature = "fault-injection") && self.corrupt_stream == Some((shard, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 7, 100);
            let b = FaultPlan::seeded(seed, 7, 100);
            assert_eq!(a, b);
            assert!(a.panic_group.unwrap() < 7);
            assert!(a.panic_design.unwrap() < 100);
        }
    }

    #[test]
    fn seeded_handles_empty_dimensions() {
        let p = FaultPlan::seeded(3, 0, 0);
        assert_eq!(p.panic_group, None);
        assert_eq!(p.panic_design, None);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn triggers_fire_only_on_their_index() {
        let plan = FaultPlan {
            panic_group: Some(2),
            panic_design: Some(5),
            fail_checkpoint_write: Some(1),
            drop_worker: Some((3, 0)),
            stall_heartbeat: Some((1, 2)),
            corrupt_stream: Some((0, 1)),
        };
        plan.maybe_panic_group(1);
        plan.maybe_panic_design(4);
        assert!(!plan.should_fail_checkpoint(0));
        assert!(plan.should_fail_checkpoint(1));
        assert!(std::panic::catch_unwind(|| plan.maybe_panic_group(2)).is_err());
        assert!(std::panic::catch_unwind(|| plan.maybe_panic_design(5)).is_err());
        assert!(plan.should_drop_worker(3, 0));
        assert!(!plan.should_drop_worker(3, 1));
        assert!(plan.should_stall_heartbeat(1, 2));
        assert!(!plan.should_stall_heartbeat(2, 1));
        assert!(plan.should_corrupt_stream(0, 1));
        assert!(!plan.should_corrupt_stream(0, 0));
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn plan_is_inert_without_the_feature() {
        let plan = FaultPlan {
            panic_group: Some(0),
            panic_design: Some(0),
            fail_checkpoint_write: Some(0),
            drop_worker: Some((0, 0)),
            stall_heartbeat: Some((0, 0)),
            corrupt_stream: Some((0, 0)),
        };
        plan.maybe_panic_group(0);
        plan.maybe_panic_design(0);
        assert!(!plan.should_fail_checkpoint(0));
        assert!(!plan.should_drop_worker(0, 0));
        assert!(!plan.should_stall_heartbeat(0, 0));
        assert!(!plan.should_corrupt_stream(0, 0));
    }
}
