//! Structured observability for sweeps: JSONL run logs, latency
//! histograms, and a live progress reporter.
//!
//! Design-space exploration lives or dies by run introspection — a fleet
//! of supervised sweeps cannot be scaled or debugged through a single
//! end-of-run summary. This module gives every sweep path three windows,
//! all std-only and all off by default:
//!
//! * **JSONL event log** ([`Obs`] with a sink): one JSON object per line
//!   — span begin/end events for the sweep phases and point events for
//!   per-unit work (trace-group scans, per-design simulations, layout
//!   placements) and supervisor activity (quarantine, fallback,
//!   checkpoint flush, resume, deadline cancel). Every event carries a
//!   monotonic timestamp relative to the run start, the run id, and
//!   (where applicable) the worker id. Lines are canonical: emitting a
//!   parsed [`Event`] reproduces the original bytes, which the round-trip
//!   proptests pin.
//! * **Latency histograms** ([`LatencyHistogram`]): lock-free log2-bucket
//!   histograms recorded per unit of work regardless of whether a log is
//!   configured, summarized into [`SweepTelemetry`](crate::SweepTelemetry)
//!   as [`LatencySummary`] fields with p50/p95/p99.
//! * **Live progress** ([`ProgressCounters`] + a ticker thread): workers
//!   bump relaxed atomics on the hot path; a sampling thread renders
//!   designs done/total, events/s, an ETA, and prune/quarantine counts to
//!   stderr a few times per second. The hot path never formats, locks, or
//!   syscalls for progress.
//!
//! [`RunReport`] closes the loop: it rebuilds a run summary — phase
//! breakdown, worker utilization, histogram percentiles, and the
//! error/quarantine timeline — from a log file alone, which is what
//! `memx report` renders.

use std::fmt::{self, Write as _};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Version stamp of the JSONL event schema, emitted as `"v"` on every
/// line so downstream parsers can detect format changes.
pub const EVENT_SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// JSON primitives (emission)
// ---------------------------------------------------------------------------

/// Appends `s` to `out` as a JSON string literal (with the surrounding
/// quotes). The escape set is canonical — `"`, `\`, and control
/// characters only — so escaping an unescaped string round-trips.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a float as a JSON-safe token with `prec` decimal places.
/// Non-finite values have no JSON spelling (`{:.3}` would emit `NaN` or
/// `inf`, corrupting the document), so they degrade to `null`.
pub fn json_f64(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------------
// JSON parsing (for `memx report`, validation tests, and round-trips)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object keys keep document order and numbers keep
/// their raw token (so `u64` values above 2^53 survive a round-trip
/// bit-exactly — a float would silently lose them).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                saw_digit |= b.is_ascii_digit();
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if !saw_digit || raw.parse::<f64>().is_err() {
            return Err(format!("bad number `{raw}` at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-UTF-8 escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one JSON document (used by `memx report` and by the tests that
/// require telemetry and log output to be real JSON).
///
/// # Errors
///
/// A one-line description of the first syntax problem.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// The kind of a log line: a phase opening, a phase closing (carrying
/// `dur_us`), or a point-in-time event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A phase span opened.
    SpanBegin,
    /// A phase span closed; the event carries `dur_us`.
    SpanEnd,
    /// A point event (per-unit work, supervisor activity, notes).
    Point,
}

impl EventKind {
    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "begin",
            EventKind::SpanEnd => "end",
            EventKind::Point => "point",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "begin" => Some(EventKind::SpanBegin),
            "end" => Some(EventKind::SpanEnd),
            "point" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// A typed event payload value. Durations and counters are integers
/// (microseconds / counts), so emit → parse → re-emit is bit-identical;
/// [`FieldValue::Num`] preserves foreign numeric tokens verbatim.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A raw numeric token that is not a `u64`/`i64` (kept verbatim).
    Num(String),
}

impl FieldValue {
    fn push_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(s) => push_json_str(out, s),
            FieldValue::Num(raw) => out.push_str(raw),
        }
    }

    /// The value as a `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Keys every event line carries, in emission order. Extra fields must
/// not collide with these.
const RESERVED_KEYS: &[&str] = &["v", "t_us", "run", "kind", "phase", "name", "worker"];

/// One JSONL log event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic timestamp, microseconds since the run started.
    pub t_us: u64,
    /// Run id (shared by every event of one run).
    pub run: String,
    /// Span begin/end or point.
    pub kind: EventKind,
    /// Sweep phase the event belongs to (`layout`, `trace`, `simulate`,
    /// `select`, `supervise`, `checkpoint`, `run`, …).
    pub phase: String,
    /// Event name within the phase (`scan`, `sim`, `place`, `flush`,
    /// `quarantine`, …).
    pub name: String,
    /// Worker id for per-unit events, absent for run-level events.
    pub worker: Option<u64>,
    /// Extra payload fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Renders the event as one canonical JSONL line (no trailing
    /// newline). Key order is fixed, so parse → emit reproduces a line
    /// this function produced byte-for-byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"v\":{},\"t_us\":{},\"run\":",
            EVENT_SCHEMA_VERSION, self.t_us
        );
        push_json_str(&mut out, &self.run);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, self.kind.as_str());
        out.push_str(",\"phase\":");
        push_json_str(&mut out, &self.phase);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &self.name);
        if let Some(w) = self.worker {
            let _ = write!(out, ",\"worker\":{w}");
        }
        for (key, value) in &self.fields {
            debug_assert!(
                !RESERVED_KEYS.contains(&key.as_str()),
                "field key `{key}` collides with a reserved event key"
            );
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            value.push_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// A one-line description when the line is not valid JSON or misses a
    /// required key.
    pub fn parse(line: &str) -> Result<Event, String> {
        let Json::Obj(pairs) = parse_json(line)? else {
            return Err("event line is not a JSON object".to_string());
        };
        let mut t_us = None;
        let mut run = None;
        let mut kind = None;
        let mut phase = None;
        let mut name = None;
        let mut worker = None;
        let mut fields = Vec::new();
        for (key, value) in pairs {
            match key.as_str() {
                "v" => {
                    let v = value.as_u64().ok_or("bad `v`")?;
                    if v != EVENT_SCHEMA_VERSION {
                        return Err(format!("unsupported event schema version {v}"));
                    }
                }
                "t_us" => t_us = Some(value.as_u64().ok_or("bad `t_us`")?),
                "run" => run = Some(value.as_str().ok_or("bad `run`")?.to_string()),
                "kind" => {
                    kind = Some(
                        EventKind::parse(value.as_str().ok_or("bad `kind`")?)
                            .ok_or("unknown `kind`")?,
                    );
                }
                "phase" => phase = Some(value.as_str().ok_or("bad `phase`")?.to_string()),
                "name" => name = Some(value.as_str().ok_or("bad `name`")?.to_string()),
                "worker" => worker = Some(value.as_u64().ok_or("bad `worker`")?),
                _ => {
                    let fv = match value {
                        Json::Bool(b) => FieldValue::Bool(b),
                        Json::Str(s) => FieldValue::Str(s),
                        Json::Num(raw) => {
                            if let Ok(u) = raw.parse::<u64>() {
                                FieldValue::U64(u)
                            } else if let Ok(i) = raw.parse::<i64>() {
                                FieldValue::I64(i)
                            } else {
                                FieldValue::Num(raw)
                            }
                        }
                        other => {
                            return Err(format!("field `{key}` has unsupported type {other:?}"))
                        }
                    };
                    fields.push((key, fv));
                }
            }
        }
        Ok(Event {
            t_us: t_us.ok_or("missing `t_us`")?,
            run: run.ok_or("missing `run`")?,
            kind: kind.ok_or("missing `kind`")?,
            phase: phase.ok_or("missing `phase`")?,
            name: name.ok_or("missing `name`")?,
            worker,
            fields,
        })
    }

    /// Looks up an extra field's `u64` value.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
    }

    /// Looks up an extra field's string value.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_str())
    }
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// A lock-free log2-bucket latency histogram: bucket `b` counts samples
/// with `2^b ≤ nanos < 2^(b+1)`. Recording is two relaxed atomic adds —
/// cheap enough for per-unit instrumentation on the sweep hot path.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let bucket = 63 - ns.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshots the counters into an owned summary.
    pub fn summary(&self) -> LatencySummary {
        let mut buckets = Vec::new();
        let mut count = 0;
        for (b, c) in self.buckets.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((b as u8, c));
                count += c;
            }
        }
        LatencySummary {
            count,
            total: Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// An immutable histogram snapshot carried in
/// [`SweepTelemetry`](crate::SweepTelemetry): sample count, summed time,
/// and the sparse log2 buckets the percentiles are read from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub total: Duration,
    /// Sparse `(log2 bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
}

impl LatencySummary {
    /// The `q`-quantile (`0 < q ≤ 1`), reported as the upper bound of the
    /// bucket where the cumulative count crosses `q · count` (log2
    /// buckets bound each sample to within 2×). Zero when empty.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(bucket, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let upper = 1u128 << (u32::from(bucket) + 1);
                return Duration::from_nanos(u64::try_from(upper).unwrap_or(u64::MAX));
            }
        }
        Duration::ZERO
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> Duration {
        self.percentile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }

    /// Mean sample duration (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.count).unwrap_or(u32::MAX)
        }
    }

    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        self.count += other.count;
        self.total += other.total;
        for &(bucket, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (bucket, c)),
            }
        }
    }

    /// Flat JSON rendering (embedded in `SweepTelemetry::to_json`). An
    /// empty histogram has no percentiles — they render as `null`, not a
    /// fake `0` that would read as "instant" downstream.
    pub fn to_json(&self) -> String {
        if self.count == 0 {
            return concat!(
                "{\"count\":0,\"total_us\":0,",
                "\"p50_us\":null,\"p95_us\":null,\"p99_us\":null}"
            )
            .to_string();
        }
        format!(
            concat!(
                "{{\"count\":{},\"total_us\":{},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}"
            ),
            self.count,
            self.total.as_micros(),
            self.p50().as_micros(),
            self.p95().as_micros(),
            self.p99().as_micros(),
        )
    }
}

/// Formats a duration for humans (ns → µs → ms → s as it grows).
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, p50 {}, p95 {}, p99 {}",
            self.count,
            fmt_dur(self.p50()),
            fmt_dur(self.p95()),
            fmt_dur(self.p99()),
        )
    }
}

// ---------------------------------------------------------------------------
// Progress counters + ticker
// ---------------------------------------------------------------------------

/// Hot-path progress state: workers bump these with relaxed ordering; the
/// ticker thread (and nothing else) reads them. No locks, no formatting,
/// no syscalls on the worker side.
#[derive(Debug, Default)]
pub struct ProgressCounters {
    /// Designs completed (simulated or resumed).
    pub done: AtomicU64,
    /// Designs in the sweep grid.
    pub total: AtomicU64,
    /// Trace events scanned so far.
    pub events: AtomicU64,
    /// Designs skipped by the pruner.
    pub pruned: AtomicU64,
    /// Designs quarantined by the supervisor.
    pub quarantined: AtomicU64,
}

impl ProgressCounters {
    /// Relaxed add on `done`.
    pub fn add_done(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed add on `events`.
    pub fn add_events(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.1} Me/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} ke/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} e/s")
    }
}

/// Renders one progress line from the counters (shared by the ticker and
/// the final report so both look the same).
fn render_progress(c: &ProgressCounters, elapsed: Duration) -> String {
    let done = c.done.load(Ordering::Relaxed);
    let total = c.total.load(Ordering::Relaxed);
    let events = c.events.load(Ordering::Relaxed);
    let pruned = c.pruned.load(Ordering::Relaxed);
    let quarantined = c.quarantined.load(Ordering::Relaxed);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut line = if total > 0 {
        format!(
            "sweep {done}/{total} designs ({:.0}%)",
            done as f64 / total as f64 * 100.0
        )
    } else {
        format!("sweep {done} designs")
    };
    let _ = write!(line, " | {}", fmt_rate(events as f64 / secs));
    if done > 0 && total > done {
        let eta = (total - done) as f64 * secs / done as f64;
        let _ = write!(line, " | eta {:.0}s", eta.ceil());
    }
    if pruned > 0 {
        let _ = write!(line, " | {pruned} pruned");
    }
    if quarantined > 0 {
        let _ = write!(line, " | {quarantined} quarantined");
    }
    line
}

// ---------------------------------------------------------------------------
// The Obs hub
// ---------------------------------------------------------------------------

/// Where the JSONL log goes.
pub enum ObsSink {
    /// Create/truncate a file at this path.
    Path(PathBuf),
    /// Write into a caller-supplied sink (used by tests to capture the
    /// log in memory).
    Writer(Box<dyn Write + Send>),
}

/// Configuration of an [`Obs`] hub. Default: everything off.
#[derive(Default)]
pub struct ObsConfig {
    /// JSONL sink, if event logging is wanted.
    pub log: Option<ObsSink>,
    /// Start the stderr progress ticker.
    pub progress: bool,
    /// Run id override (tests); generated when `None`.
    pub run_id: Option<String>,
}

/// The observability hub threaded through a sweep: owns the run id, the
/// monotonic clock origin, the (optional) JSONL sink, the progress
/// counters, and the (optional) ticker thread. Cheap to share via `Arc`;
/// every method is `&self` and thread-safe.
pub struct Obs {
    run_id: String,
    start: Instant,
    log: Option<Mutex<Box<dyn Write + Send>>>,
    /// Hot-path progress counters (always present; the ticker is
    /// optional).
    pub counters: ProgressCounters,
    ticker: Mutex<Option<JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
    finished: AtomicBool,
    progress: bool,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("run_id", &self.run_id)
            .field("log", &self.log.is_some())
            .field("progress", &self.progress)
            .finish()
    }
}

/// Generates a run id from the wall clock and the process id — unique
/// enough to correlate log files with runs, with no RNG dependency.
fn generate_run_id() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO);
    format!("r{:x}-{:x}", now.as_secs(), std::process::id())
}

impl Obs {
    /// Builds a hub, opening the log sink and starting the ticker thread
    /// when requested.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the log file cannot be created.
    pub fn new(config: ObsConfig) -> io::Result<Arc<Obs>> {
        let log: Option<Mutex<Box<dyn Write + Send>>> = match config.log {
            None => None,
            Some(ObsSink::Writer(w)) => Some(Mutex::new(w)),
            Some(ObsSink::Path(path)) => {
                let file = std::fs::File::create(&path)?;
                Some(Mutex::new(Box::new(io::BufWriter::new(file))))
            }
        };
        let obs = Arc::new(Obs {
            run_id: config.run_id.unwrap_or_else(generate_run_id),
            start: Instant::now(),
            log,
            counters: ProgressCounters::default(),
            ticker: Mutex::new(None),
            stop: Arc::new(AtomicBool::new(false)),
            finished: AtomicBool::new(false),
            progress: config.progress,
        });
        if config.progress {
            let hub = Arc::clone(&obs);
            let stop = Arc::clone(&obs.stop);
            let handle = std::thread::spawn(move || {
                let mut last_len = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(200));
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let line = render_progress(&hub.counters, hub.start.elapsed());
                    let pad = last_len.saturating_sub(line.len());
                    last_len = line.len();
                    eprint!("\r{line}{}", " ".repeat(pad));
                    let _ = io::stderr().flush();
                }
            });
            *obs.ticker.lock().unwrap_or_else(|p| p.into_inner()) = Some(handle);
        }
        Ok(obs)
    }

    /// The run id stamped on every event.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Microseconds since the run started (monotonic).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Emits one event to the JSONL sink (no-op without one). Write
    /// failures are swallowed — observability must never take the sweep
    /// down with it.
    pub fn emit(
        &self,
        kind: EventKind,
        phase: &str,
        name: &str,
        worker: Option<u64>,
        fields: &[(&str, FieldValue)],
    ) {
        let Some(log) = &self.log else { return };
        let event = Event {
            t_us: self.now_us(),
            run: self.run_id.clone(),
            kind,
            phase: phase.to_string(),
            name: name.to_string(),
            worker,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        let mut line = event.to_jsonl();
        line.push('\n');
        let mut sink = log.lock().unwrap_or_else(|p| p.into_inner());
        let _ = sink.write_all(line.as_bytes());
    }

    /// Emits a point event.
    pub fn point(&self, phase: &str, name: &str, fields: &[(&str, FieldValue)]) {
        self.emit(EventKind::Point, phase, name, None, fields);
    }

    /// Emits a per-unit point event carrying the worker id and the unit's
    /// duration in microseconds (plus any extra fields).
    pub fn unit(
        &self,
        phase: &str,
        name: &str,
        worker: u64,
        dur: Duration,
        fields: &[(&str, FieldValue)],
    ) {
        if self.log.is_none() {
            return;
        }
        let mut all = vec![(
            "dur_us",
            FieldValue::U64(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX)),
        )];
        all.extend(fields.iter().cloned());
        self.emit(EventKind::Point, phase, name, Some(worker), &all);
    }

    /// Stops the ticker (printing a final progress line) and flushes the
    /// log sink. Idempotent; also run on drop.
    pub fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.ticker.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = handle.join();
        }
        if self.progress {
            let line = render_progress(&self.counters, self.start.elapsed());
            eprintln!("\r{line}");
        }
        if let Some(log) = &self.log {
            let _ = log.lock().unwrap_or_else(|p| p.into_inner()).flush();
        }
    }
}

impl Drop for Obs {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A phase span: emits `begin` on creation, `end` (with `dur_us`) on
/// drop. A `None` hub makes it a zero-cost no-op.
pub struct Span<'a> {
    obs: Option<&'a Obs>,
    phase: &'static str,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Opens a span over `phase` (emits the `begin` event now).
    pub fn begin(obs: Option<&'a Obs>, phase: &'static str) -> Self {
        if let Some(o) = obs {
            o.emit(EventKind::SpanBegin, phase, phase, None, &[]);
        }
        Span {
            obs,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(o) = self.obs {
            let dur = self.start.elapsed();
            o.emit(
                EventKind::SpanEnd,
                self.phase,
                self.phase,
                None,
                &[(
                    "dur_us",
                    FieldValue::U64(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX)),
                )],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Report (log replay)
// ---------------------------------------------------------------------------

/// One aggregated phase in a [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Phase name.
    pub name: String,
    /// Number of closed spans.
    pub spans: u64,
    /// Summed span duration.
    pub total: Duration,
}

/// One timeline entry (quarantine, failed flush, cancellation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Offset from run start.
    pub t: Duration,
    /// Human description.
    pub what: String,
}

/// A run summary reconstructed from a JSONL log alone — what
/// `memx report` renders. The counters are *recomputed from the per-unit
/// events* (not copied from a summary line), so they cross-check the
/// emitting sweep's own telemetry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Run id of the log's first event.
    pub run_id: String,
    /// Number of parsed events.
    pub events: usize,
    /// Largest timestamp seen.
    pub wall: Duration,
    /// Closed spans grouped by phase, in first-appearance order.
    pub phases: Vec<PhaseAgg>,
    /// Per-worker busy time summed from per-unit events, by worker id.
    pub worker_busy: Vec<(u64, Duration)>,
    /// Trace-group scan latencies (rebuilt, µs resolution).
    pub scan: LatencySummary,
    /// Per-design simulation latencies (rebuilt, µs resolution).
    pub sim: LatencySummary,
    /// Layout placement latencies (rebuilt, µs resolution).
    pub layout: LatencySummary,
    /// Checkpoint flush latencies (rebuilt, µs resolution).
    pub flush: LatencySummary,
    /// Designs completed (fresh scan members + lone simulations +
    /// resumed records).
    pub designs_done: u64,
    /// Records restored from a checkpoint.
    pub records_resumed: u64,
    /// Designs skipped by the pruner.
    pub pruned: u64,
    /// Designs quarantined by the supervisor.
    pub quarantined: u64,
    /// Per-design fallback retries after a fused bank panic.
    pub retried: u64,
    /// Checkpoint flushes that reached the sidecar.
    pub flushes_written: u64,
    /// Checkpoint flushes that failed.
    pub flushes_failed: u64,
    /// Whether a deadline cancelled the run.
    pub cancelled: bool,
    /// Quarantines, failed flushes, and cancellations in time order.
    pub timeline: Vec<TimelineEntry>,
    /// Serve jobs completed (from `job` point events).
    pub jobs_done: u64,
    /// Serve jobs that ended cancelled (deadline) rather than complete.
    pub jobs_cancelled: u64,
    /// Serve jobs answered from the result cache.
    pub cache_hits: u64,
    /// Serve jobs that simulated (cold cache miss).
    pub cache_misses: u64,
    /// Serve jobs coalesced onto a concurrent identical job (single-flight).
    pub cache_joins: u64,
    /// Deepest admission queue observed across serve jobs.
    pub queue_depth_max: u64,
    /// End-to-end serve job latencies (rebuilt, µs resolution).
    pub job: LatencySummary,
}

impl RunReport {
    /// Parses and aggregates a whole JSONL log.
    ///
    /// # Errors
    ///
    /// The first malformed line, with its 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<RunReport, String> {
        let mut report = RunReport::default();
        let scan = LatencyHistogram::new();
        let sim = LatencyHistogram::new();
        let layout = LatencyHistogram::new();
        let flush = LatencyHistogram::new();
        let job = LatencyHistogram::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = Event::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if report.events == 0 {
                report.run_id = event.run.clone();
            }
            report.events += 1;
            let t = Duration::from_micros(event.t_us);
            report.wall = report.wall.max(t);
            let dur = Duration::from_micros(event.u64_field("dur_us").unwrap_or(0));
            match event.kind {
                EventKind::SpanBegin => {}
                EventKind::SpanEnd => {
                    match report.phases.iter_mut().find(|p| p.name == event.phase) {
                        Some(p) => {
                            p.spans += 1;
                            p.total += dur;
                        }
                        None => report.phases.push(PhaseAgg {
                            name: event.phase.clone(),
                            spans: 1,
                            total: dur,
                        }),
                    }
                }
                EventKind::Point => {
                    if let Some(w) = event.worker {
                        match report.worker_busy.iter_mut().find(|(id, _)| *id == w) {
                            Some((_, busy)) => *busy += dur,
                            None => report.worker_busy.push((w, dur)),
                        }
                    }
                    match event.name.as_str() {
                        "scan" => {
                            scan.record(dur);
                            report.designs_done += event.u64_field("fresh").unwrap_or(0);
                        }
                        "sim" => {
                            sim.record(dur);
                            report.designs_done += 1;
                        }
                        "place" => layout.record(dur),
                        "flush" => {
                            flush.record(dur);
                            if event.u64_field("ok") == Some(1) {
                                report.flushes_written += 1;
                            } else {
                                report.flushes_failed += 1;
                                report.timeline.push(TimelineEntry {
                                    t,
                                    what: "checkpoint flush failed".to_string(),
                                });
                            }
                        }
                        "resume" => {
                            let n = event.u64_field("records").unwrap_or(0);
                            report.records_resumed += n;
                            report.designs_done += n;
                        }
                        "pruned" => report.pruned += event.u64_field("count").unwrap_or(0),
                        "retry" => report.retried += event.u64_field("count").unwrap_or(1),
                        "quarantine" => {
                            report.quarantined += 1;
                            report.timeline.push(TimelineEntry {
                                t,
                                what: format!(
                                    "design #{} quarantined on {} engine: {}",
                                    event.u64_field("design").unwrap_or(0),
                                    event.str_field("engine").unwrap_or("?"),
                                    event.str_field("message").unwrap_or(""),
                                ),
                            });
                        }
                        "job" => {
                            job.record(dur);
                            report.jobs_done += 1;
                            if event.str_field("status") == Some("cancelled") {
                                report.jobs_cancelled += 1;
                            }
                            match event.str_field("cache") {
                                Some("hit") => report.cache_hits += 1,
                                Some("miss") => report.cache_misses += 1,
                                Some("join") => report.cache_joins += 1,
                                _ => {}
                            }
                            report.queue_depth_max = report
                                .queue_depth_max
                                .max(event.u64_field("queue_depth").unwrap_or(0));
                        }
                        "deadline_cancel" => {
                            report.cancelled = true;
                            report.timeline.push(TimelineEntry {
                                t,
                                what: "deadline reached; sweep cancelled".to_string(),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        report.worker_busy.sort_by_key(|&(id, _)| id);
        report.timeline.sort_by_key(|e| e.t);
        report.scan = scan.summary();
        report.sim = sim.summary();
        report.layout = layout.summary();
        report.flush = flush.summary();
        report.job = job.summary();
        Ok(report)
    }

    /// Mean fraction of the simulate phase each seen worker spent inside
    /// units of work (1.0 when the log has no simulate span or workers).
    pub fn worker_utilization(&self) -> f64 {
        let wall = self
            .phases
            .iter()
            .find(|p| p.name == "simulate")
            .map(|p| p.total.as_secs_f64())
            .unwrap_or(0.0);
        if wall <= 0.0 || self.worker_busy.is_empty() {
            return 1.0;
        }
        let busy: f64 = self.worker_busy.iter().map(|(_, d)| d.as_secs_f64()).sum();
        busy / (wall * self.worker_busy.len() as f64)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run {}: {} events over {}",
            self.run_id,
            self.events,
            fmt_dur(self.wall)
        )?;
        writeln!(f, "phases:")?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<10}: {} span(s), {}",
                p.name,
                p.spans,
                fmt_dur(p.total)
            )?;
        }
        if !self.worker_busy.is_empty() {
            writeln!(
                f,
                "workers: {} seen, {:.0}% utilization (from unit events)",
                self.worker_busy.len(),
                (self.worker_utilization() * 100.0).min(100.0)
            )?;
        }
        writeln!(f, "latency:")?;
        for (name, s) in [
            ("scan", &self.scan),
            ("sim", &self.sim),
            ("layout", &self.layout),
            ("flush", &self.flush),
        ] {
            if s.count > 0 {
                writeln!(f, "  {name:<6}: {s}")?;
            } else {
                // No samples means no percentiles: `-`, not a fake 0.
                writeln!(f, "  {name:<6}: 0 samples, p50 -, p95 -, p99 -")?;
            }
        }
        if self.jobs_done > 0 {
            writeln!(
                f,
                "serve: {} job(s) ({} cancelled), cache {} hit / {} miss / {} join, \
                 max queue depth {}",
                self.jobs_done,
                self.jobs_cancelled,
                self.cache_hits,
                self.cache_misses,
                self.cache_joins,
                self.queue_depth_max
            )?;
            writeln!(f, "  job   : {}", self.job)?;
        }
        write!(
            f,
            "designs: {} completed ({} resumed), {} pruned, {} quarantined, {} retried",
            self.designs_done, self.records_resumed, self.pruned, self.quarantined, self.retried
        )?;
        if self.flushes_written > 0 || self.flushes_failed > 0 {
            write!(
                f,
                "\ncheckpoints: {} written, {} failed",
                self.flushes_written, self.flushes_failed
            )?;
        }
        if self.timeline.is_empty() {
            write!(f, "\ntimeline: clean run (no errors)")?;
        } else {
            write!(f, "\ntimeline:")?;
            for e in &self.timeline {
                write!(f, "\n  [{:>10}] {}", fmt_dur(e.t), e.what)?;
            }
        }
        if self.cancelled {
            write!(f, "\nresult: PARTIAL (deadline cancel)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(fields: Vec<(String, FieldValue)>) -> Event {
        Event {
            t_us: 1234,
            run: "r1-2".to_string(),
            kind: EventKind::Point,
            phase: "simulate".to_string(),
            name: "sim".to_string(),
            worker: Some(3),
            fields,
        }
    }

    #[test]
    fn event_round_trips_bit_identical() {
        let e = event(vec![
            ("dur_us".to_string(), FieldValue::U64(u64::MAX)),
            ("delta".to_string(), FieldValue::I64(-42)),
            ("ok".to_string(), FieldValue::Bool(true)),
            (
                "msg".to_string(),
                FieldValue::Str("a \"b\"\n\tc\\d".to_string()),
            ),
            ("ratio".to_string(), FieldValue::Num("0.125".to_string())),
        ]);
        let line = e.to_jsonl();
        let parsed = Event::parse(&line).expect("parse");
        assert_eq!(parsed, e);
        assert_eq!(parsed.to_jsonl(), line);
    }

    #[test]
    fn event_without_worker_round_trips() {
        let mut e = event(vec![]);
        e.worker = None;
        e.kind = EventKind::SpanEnd;
        let line = e.to_jsonl();
        assert_eq!(Event::parse(&line).expect("parse").to_jsonl(), line);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::parse("not json").is_err());
        assert!(Event::parse("{\"v\":1}").is_err());
        assert!(Event::parse("[1,2]").is_err());
        assert!(Event::parse(
            "{\"v\":99,\"t_us\":0,\"run\":\"r\",\"kind\":\"point\",\"phase\":\"p\",\"name\":\"n\"}"
        )
        .is_err());
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"xA\n"},"d":null,"e":false} "#;
        let v = parse_json(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Json::Arr(items) => items.first().and_then(Json::as_u64),
                _ => None,
            }),
            Some(1)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("xA\n")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn json_parser_preserves_large_u64() {
        let raw = format!("{{\"big\":{}}}", u64::MAX);
        let v = parse_json(&raw).expect("parse");
        assert_eq!(v.get("big").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn json_f64_guards_non_finite() {
        assert_eq!(json_f64(1.5, 3), "1.500");
        assert_eq!(json_f64(f64::NAN, 3), "null");
        assert_eq!(json_f64(f64::INFINITY, 6), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY, 6), "null");
    }

    #[test]
    fn empty_latency_summary_pins_null_json_and_dash_report() {
        let s = LatencySummary::default();
        assert_eq!(
            s.to_json(),
            "{\"count\":0,\"total_us\":0,\"p50_us\":null,\"p95_us\":null,\"p99_us\":null}"
        );
        let v = parse_json(&s.to_json()).expect("parse");
        assert_eq!(v.get("p50_us"), Some(&Json::Null));
        assert_eq!(v.get("p99_us"), Some(&Json::Null));

        let report = RunReport::default();
        let rendered = report.to_string();
        assert!(rendered.contains("scan  : 0 samples, p50 -, p95 -, p99 -"));
        assert!(rendered.contains("flush : 0 samples, p50 -, p95 -, p99 -"));
        assert!(!rendered.contains("p50_us: 0"));
    }

    #[test]
    fn histogram_percentiles_bound_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(900)); // bucket 9 (512..1024)
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(100)); // ~bucket 16
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), Duration::from_nanos(1024));
        assert!(s.p99() >= Duration::from_micros(100));
        assert!(s.p99() <= Duration::from_micros(200));
        // The summary parses as JSON.
        parse_json(&s.to_json()).expect("summary json");
    }

    #[test]
    fn summary_merge_accumulates() {
        let a = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        let b = LatencyHistogram::new();
        b.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(5));
        let mut m = a.summary();
        m.merge(&b.summary());
        assert_eq!(m.count, 3);
        assert_eq!(m.total, Duration::from_nanos(5200));
    }

    #[test]
    fn obs_emits_parseable_jsonl_and_report_aggregates() {
        use std::sync::mpsc;
        // In-memory sink: a writer that forwards into a channel.
        struct ChanWriter(mpsc::Sender<Vec<u8>>);
        impl Write for ChanWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let _ = self.0.send(buf.to_vec());
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = mpsc::channel();
        let obs = Obs::new(ObsConfig {
            log: Some(ObsSink::Writer(Box::new(ChanWriter(tx)))),
            progress: false,
            run_id: Some("rtest".to_string()),
        })
        .expect("obs");
        {
            let _run = Span::begin(Some(&obs), "run");
            {
                let _sim = Span::begin(Some(&obs), "simulate");
                obs.unit(
                    "simulate",
                    "scan",
                    0,
                    Duration::from_micros(40),
                    &[
                        ("events", FieldValue::U64(100)),
                        ("width", FieldValue::U64(5)),
                        ("fresh", FieldValue::U64(5)),
                    ],
                );
                obs.unit("simulate", "sim", 1, Duration::from_micros(7), &[]);
                obs.point(
                    "supervise",
                    "quarantine",
                    &[
                        ("design", FieldValue::U64(3)),
                        ("engine", FieldValue::Str("fused".to_string())),
                        ("message", FieldValue::Str("boom".to_string())),
                    ],
                );
                obs.point("supervise", "pruned", &[("count", FieldValue::U64(12))]);
                obs.point(
                    "checkpoint",
                    "flush",
                    &[("dur_us", FieldValue::U64(90)), ("ok", FieldValue::U64(1))],
                );
            }
        }
        obs.finish();
        let mut text = String::new();
        while let Ok(chunk) = rx.try_recv() {
            text.push_str(std::str::from_utf8(&chunk).expect("utf8"));
        }
        // Every line parses and re-emits identically.
        for line in text.lines() {
            let e = Event::parse(line).expect("line parses");
            assert_eq!(e.to_jsonl(), line);
            assert_eq!(e.run, "rtest");
        }
        let report = RunReport::from_jsonl(&text).expect("report");
        assert_eq!(report.run_id, "rtest");
        assert_eq!(report.designs_done, 6); // 5 fresh from the scan + 1 sim
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.pruned, 12);
        assert_eq!(report.flushes_written, 1);
        assert_eq!(report.scan.count, 1);
        assert_eq!(report.sim.count, 1);
        assert_eq!(report.flush.count, 1);
        assert!(!report.cancelled);
        assert_eq!(report.timeline.len(), 1);
        assert!(report.phases.iter().any(|p| p.name == "simulate"));
        // Utilization derived from unit events is a sane fraction here.
        let u = report.worker_utilization();
        assert!(u > 0.0);
        let rendered = report.to_string();
        assert!(rendered.contains("quarantined"));
        assert!(rendered.contains("phases:"));
    }

    #[test]
    fn report_rejects_malformed_line_with_position() {
        let good = event(vec![]).to_jsonl();
        let text = format!("{good}\nnot json\n");
        let err = RunReport::from_jsonl(&text).expect_err("must fail");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn progress_line_renders_counts() {
        let c = ProgressCounters::default();
        c.total.store(100, Ordering::Relaxed);
        c.done.store(25, Ordering::Relaxed);
        c.events.store(2_000_000, Ordering::Relaxed);
        c.pruned.store(7, Ordering::Relaxed);
        let line = render_progress(&c, Duration::from_secs(1));
        assert!(line.contains("25/100"), "{line}");
        assert!(line.contains("Me/s"), "{line}");
        assert!(line.contains("eta"), "{line}");
        assert!(line.contains("7 pruned"), "{line}");
    }
}
