//! Fault-tolerant sharding of a design-grid sweep across workers.
//!
//! The sweep over the paper's design grid is embarrassingly parallel:
//! every [`Record`] depends only on its own design point, so a worker
//! that sweeps the slice `designs[start..end]` produces exactly the
//! records a single-process sweep would have produced for those slots
//! (the property the resume tests already pin bit-exactly). This module
//! turns that observation into a coordinator/worker protocol:
//!
//! * [`partition`] splits the grid into contiguous [`ShardSpec`] ranges;
//! * a [`ShardExecutor`] launches one *attempt* of a shard and hands
//!   back a [`ShardHandle`] the coordinator can poll, probe for
//!   liveness, and cancel;
//! * [`run_sharded`] is the coordinator control loop: it dispatches
//!   shards into free slots, retries failed attempts with exponential
//!   backoff under a retry budget, speculatively re-dispatches
//!   stragglers whose heartbeat goes stale (first complete wins,
//!   duplicates are deduped by sweep id + entry index), degrades to
//!   coordinator-local execution when a shard exhausts its budget, and
//!   merges everything into slot order — byte-identical to the
//!   single-process sweep.
//!
//! The checkpoint sidecar ([`crate::checkpoint`]) is the durable wire
//! format: process workers stream their results into a per-shard
//! checkpoint file, which doubles as the crash-recovery journal — a
//! retried attempt resumes from whatever its predecessor flushed. A
//! corrupt stream surfaces as a typed [`CheckpointError`] and triggers
//! a fresh (non-resuming) re-dispatch, never merged garbage.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::fault::FaultPlan;
use crate::metrics::{CacheDesign, Record};
use crate::obs::{FieldValue, Obs};
use crate::supervisor::SweepError;
use crate::telemetry::SweepTelemetry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One contiguous slice of the design grid, assigned to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Position of this shard in the partition (0-based).
    pub index: usize,
    /// First global design index covered (inclusive).
    pub start: usize,
    /// One past the last global design index covered.
    pub end: usize,
    /// Sweep id of the slice `designs[start..end]`, used to reject a
    /// result stream that belongs to a different shard or workload and
    /// as half of the merge dedupe key. 0 disables the check (executors
    /// that cannot compute slice ids, e.g. synthetic tests).
    pub sweep_id: u64,
}

impl ShardSpec {
    /// Number of designs the shard covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard covers no designs.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `total` designs into at most `shards` contiguous, near-equal
/// ranges. The split is deterministic: the first `total % shards`
/// shards take the extra design, so any two coordinators partitioning
/// the same grid agree exactly. Empty shards are never produced — fewer
/// than `shards` specs come back when `total < shards`.
pub fn partition(total: usize, shards: usize) -> Vec<ShardSpec> {
    let shards = shards.max(1).min(total.max(1));
    let base = total / shards;
    let extra = total % shards;
    let mut specs = Vec::with_capacity(shards);
    let mut start = 0;
    for index in 0..shards {
        let len = base + usize::from(index < extra);
        if len == 0 {
            break;
        }
        specs.push(ShardSpec {
            index,
            start,
            end: start + len,
            sweep_id: 0,
        });
        start += len;
    }
    debug_assert_eq!(specs.iter().map(ShardSpec::len).sum::<usize>(), total);
    specs
}

/// What one shard attempt hands back to the coordinator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardOutput {
    /// Sweep id the worker computed for its slice; validated against
    /// [`ShardSpec::sweep_id`] when the spec carries one.
    pub sweep_id: u64,
    /// Completed records keyed by *local* index within the shard.
    pub entries: Vec<(usize, Record)>,
    /// Designs the worker quarantined, as `(local index, message)`.
    pub quarantined: Vec<(usize, String)>,
}

/// Why a shard attempt failed. Every variant is retryable; the
/// coordinator decides between resuming the attempt's checkpoint
/// (crash, timeout) and starting fresh (corrupt stream).
#[derive(Debug)]
pub enum ShardError {
    /// The worker process/thread died, was killed, or exited non-zero.
    WorkerLost {
        shard: usize,
        attempt: u32,
        message: String,
    },
    /// The result stream failed checkpoint validation — version skew,
    /// checksum mismatch, wrong sweep id, or out-of-range entries.
    CorruptStream {
        shard: usize,
        attempt: u32,
        message: String,
    },
    /// The attempt outlived its per-shard deadline and was cancelled.
    Timeout { shard: usize, attempt: u32 },
    /// The attempt could not even be launched.
    Launch {
        shard: usize,
        attempt: u32,
        message: String,
    },
}

impl ShardError {
    /// Shard the failure belongs to.
    pub fn shard(&self) -> usize {
        match self {
            Self::WorkerLost { shard, .. }
            | Self::CorruptStream { shard, .. }
            | Self::Timeout { shard, .. }
            | Self::Launch { shard, .. } => *shard,
        }
    }

    /// Short machine-stable reason, used for obs events.
    pub fn reason(&self) -> &'static str {
        match self {
            Self::WorkerLost { .. } => "worker_lost",
            Self::CorruptStream { .. } => "corrupt_stream",
            Self::Timeout { .. } => "timeout",
            Self::Launch { .. } => "launch",
        }
    }

    /// Whether a retry may resume the attempt's checkpoint file. False
    /// for corrupt streams: the sidecar itself is suspect, so the retry
    /// starts from a clean slate.
    pub fn resumable(&self) -> bool {
        !matches!(self, Self::CorruptStream { .. })
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerLost {
                shard,
                attempt,
                message,
            } => write!(f, "shard {shard} attempt {attempt}: worker lost: {message}"),
            Self::CorruptStream {
                shard,
                attempt,
                message,
            } => write!(
                f,
                "shard {shard} attempt {attempt}: corrupt result stream: {message}"
            ),
            Self::Timeout { shard, attempt } => {
                write!(f, "shard {shard} attempt {attempt}: deadline exceeded")
            }
            Self::Launch {
                shard,
                attempt,
                message,
            } => write!(
                f,
                "shard {shard} attempt {attempt}: launch failed: {message}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A single in-flight shard attempt, owned by the coordinator.
pub trait ShardHandle: Send {
    /// Non-blocking completion probe. `None` while running; the first
    /// `Some` is final (the coordinator drops the handle afterwards).
    fn poll(&mut self) -> Option<Result<ShardOutput, ShardError>>;

    /// Time since the attempt last showed signs of life (fresh process
    /// output, checkpoint growth, …). The coordinator treats ages above
    /// its straggler threshold as grounds for speculation.
    fn heartbeat_age(&self) -> Duration;

    /// Best-effort cancellation of a no-longer-needed attempt.
    fn cancel(&mut self);
}

/// Launches shard attempts. `slots` bounds how many attempts the
/// coordinator keeps in flight at once.
pub trait ShardExecutor {
    /// Starts one attempt of `spec`. `resume` asks the attempt to pick
    /// up its predecessor's checkpoint where it left off (crash
    /// recovery); executors without durable state may ignore it.
    fn launch(
        &self,
        spec: &ShardSpec,
        attempt: u32,
        resume: bool,
    ) -> Result<Box<dyn ShardHandle>, ShardError>;

    /// Concurrent attempt capacity.
    fn slots(&self) -> usize;
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Extra attempts allowed per shard after the first; once a shard
    /// has burned `1 + retry_budget` attempts it degrades to
    /// coordinator-local execution.
    pub retry_budget: u32,
    /// Base backoff before a retry; attempt `n` waits roughly
    /// `base * 2^(n-1)` plus deterministic jitter (see
    /// [`backoff_delay`]).
    pub backoff: Duration,
    /// Heartbeat age beyond which a lone running attempt is declared a
    /// straggler and a speculative twin is launched.
    pub straggler_after: Duration,
    /// Optional wall-clock cap per attempt; exceeding it cancels the
    /// attempt and counts as a failure.
    pub shard_deadline: Option<Duration>,
    /// Coordinator poll interval.
    pub poll: Duration,
    /// Seed mixed into the backoff jitter so coordinated retries from
    /// many shards do not synchronize.
    pub seed: u64,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        Self {
            retry_budget: 3,
            backoff: Duration::from_millis(100),
            straggler_after: Duration::from_secs(10),
            shard_deadline: None,
            poll: Duration::from_millis(2),
            seed: 0x6d65_6d78, // "memx"
        }
    }
}

/// Deterministic exponential backoff with jitter: attempt `n` (1-based
/// for retries) waits `base * 2^(n-1)` (exponent capped at 6) plus an
/// xorshift-derived jitter in `[0, base/2]`. Pure function of its
/// arguments, so tests can assert the exact schedule.
pub fn backoff_delay(base: Duration, seed: u64, shard: usize, attempt: u32) -> Duration {
    let exp = 1u32 << attempt.saturating_sub(1).min(6);
    let scaled = base.saturating_mul(exp);
    let mut x =
        seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 32);
    x |= 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let half = (base.as_micros() / 2) as u64;
    let jitter = if half == 0 { 0 } else { x % (half + 1) };
    scaled + Duration::from_micros(jitter)
}

/// Coordinator-side accounting of one distributed sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Shard attempts launched, counting retries and speculation.
    pub dispatched: usize,
    /// Attempts relaunched after a failure (loss, timeout, corruption).
    pub retried: usize,
    /// Speculative attempts launched against stale-heartbeat stragglers.
    pub redispatched: usize,
    /// Duplicate result entries discarded by first-complete-wins.
    pub deduped: u64,
    /// Shards that exhausted their retry budget and ran locally.
    pub degraded: usize,
    /// Worker slots still trusted at the end: the executor's slot count
    /// minus permanently failed shards (floor 0).
    pub workers_surviving: usize,
    /// Wall time spent validating and merging result streams.
    pub merge_time: Duration,
}

impl MergeStats {
    /// Copies the shard counters into a merged sweep's telemetry.
    pub fn fill(&self, t: &mut SweepTelemetry) {
        t.shards_dispatched = self.dispatched;
        t.shards_retried = self.retried;
        t.shards_redispatched = self.redispatched;
        t.shard_entries_deduped = self.deduped;
        t.workers_surviving = self.workers_surviving;
    }
}

/// Result of a coordinated sweep: records in grid slot order (a `None`
/// means the design was quarantined), quarantine errors in ascending
/// design order, and the coordinator's accounting.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// One slot per design in the grid.
    pub records: Vec<Option<Record>>,
    /// Quarantines propagated from workers (any worker quarantining a
    /// design quarantines it in the merged result).
    pub errors: Vec<SweepError>,
    /// Dispatch/retry/merge accounting.
    pub stats: MergeStats,
}

impl ShardedOutcome {
    /// True when every design produced a record.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// Records in sweep order, skipping quarantined slots.
    pub fn completed_records(&self) -> Vec<Record> {
        self.records.iter().filter_map(Clone::clone).collect()
    }
}

/// One in-flight attempt tracked by the coordinator.
struct Active {
    shard: usize,
    attempt: u32,
    handle: Box<dyn ShardHandle>,
    started: Instant,
}

/// Scheduling state of one shard.
enum SlotState {
    /// Waiting (or backing off) for its next launch.
    Pending { not_before: Instant, resume: bool },
    /// At least one attempt is running.
    Running,
    /// Merged.
    Done,
}

/// The coordinator control loop. Dispatches `specs` onto `executor`'s
/// slots, retries failures with exponential backoff under
/// `options.retry_budget`, speculatively re-dispatches stragglers, and
/// merges results first-complete-wins into grid slot order. A shard
/// that exhausts its budget is executed via `local` on the coordinator
/// itself (graceful degradation down to zero surviving workers); only a
/// failure of that last resort aborts the sweep.
pub fn run_sharded(
    executor: &dyn ShardExecutor,
    specs: &[ShardSpec],
    designs: &[CacheDesign],
    local: &dyn Fn(&ShardSpec) -> Result<ShardOutput, ShardError>,
    options: &CoordinatorOptions,
    obs: Option<&Obs>,
) -> Result<ShardedOutcome, ShardError> {
    let total: usize = specs.iter().map(ShardSpec::len).sum();
    debug_assert!(total <= designs.len());
    let slots = executor.slots();
    let mut records: Vec<Option<Record>> = vec![None; designs.len()];
    let mut quarantined: BTreeMap<usize, String> = BTreeMap::new();
    let mut stats = MergeStats::default();
    let mut states: Vec<SlotState> = specs
        .iter()
        .map(|_| SlotState::Pending {
            not_before: Instant::now(),
            resume: false,
        })
        .collect();
    // Attempts launched so far, per shard (also the next attempt number).
    let mut attempts: Vec<u32> = vec![0; specs.len()];
    let mut active: Vec<Active> = Vec::new();
    let mut done = 0usize;

    // Merges one attempt's validated output into the global slots.
    let merge = |spec: &ShardSpec,
                 out: ShardOutput,
                 records: &mut Vec<Option<Record>>,
                 quarantined: &mut BTreeMap<usize, String>,
                 stats: &mut MergeStats| {
        let t0 = Instant::now();
        let mut fresh = 0u64;
        for (local_idx, record) in out.entries {
            let slot = &mut records[spec.start + local_idx];
            if slot.is_some() {
                stats.deduped += 1;
            } else {
                *slot = Some(record);
                fresh += 1;
            }
        }
        for (local_idx, message) in out.quarantined {
            quarantined.entry(spec.start + local_idx).or_insert(message);
        }
        stats.merge_time += t0.elapsed();
        fresh
    };

    // Checks an output against its spec; any inconsistency is a corrupt
    // stream (retried fresh), never silent partial garbage.
    let validate = |spec: &ShardSpec, attempt: u32, out: &ShardOutput| -> Result<(), ShardError> {
        let corrupt = |message: String| ShardError::CorruptStream {
            shard: spec.index,
            attempt,
            message,
        };
        if spec.sweep_id != 0 && out.sweep_id != spec.sweep_id {
            return Err(corrupt(format!(
                "sweep id {:#018x} does not match shard sweep id {:#018x}",
                out.sweep_id, spec.sweep_id
            )));
        }
        for (local_idx, _) in &out.entries {
            if *local_idx >= spec.len() {
                return Err(corrupt(format!(
                    "entry index {local_idx} outside shard of {} designs",
                    spec.len()
                )));
            }
        }
        for (local_idx, _) in &out.quarantined {
            if *local_idx >= spec.len() {
                return Err(corrupt(format!(
                    "quarantine index {local_idx} outside shard of {} designs",
                    spec.len()
                )));
            }
        }
        Ok(())
    };

    while done < specs.len() {
        let now = Instant::now();

        // Fill free slots with due pending shards, in index order.
        for (s, spec) in specs.iter().enumerate() {
            if active.len() >= slots {
                break;
            }
            let SlotState::Pending { not_before, resume } = &states[s] else {
                continue;
            };
            if *not_before > now {
                continue;
            }
            let resume = *resume;
            let attempt = attempts[s];
            attempts[s] += 1;
            stats.dispatched += 1;
            if let Some(o) = obs {
                o.point(
                    "shard",
                    "dispatch",
                    &[
                        ("shard", FieldValue::U64(s as u64)),
                        ("attempt", FieldValue::U64(u64::from(attempt))),
                        ("start", FieldValue::U64(spec.start as u64)),
                        ("end", FieldValue::U64(spec.end as u64)),
                        ("resume", FieldValue::U64(u64::from(resume))),
                    ],
                );
            }
            match executor.launch(spec, attempt, resume) {
                Ok(handle) => {
                    states[s] = SlotState::Running;
                    active.push(Active {
                        shard: s,
                        attempt,
                        handle,
                        started: now,
                    });
                }
                Err(e) => {
                    // A launch failure is an attempt failure: back off
                    // and retry like any other loss.
                    schedule_retry(
                        s,
                        &e,
                        specs,
                        options,
                        &mut states,
                        &attempts,
                        &mut stats,
                        obs,
                    );
                    if matches!(states[s], SlotState::Done) {
                        let out = local(spec)?;
                        validate(spec, attempts[s], &out)?;
                        merge(spec, out, &mut records, &mut quarantined, &mut stats);
                        done += 1;
                    }
                }
            }
        }

        // Poll in-flight attempts.
        let mut i = 0;
        while i < active.len() {
            let timed_out = options
                .shard_deadline
                .is_some_and(|d| active[i].started.elapsed() > d);
            let polled = if timed_out {
                active[i].handle.cancel();
                Some(Err(ShardError::Timeout {
                    shard: specs[active[i].shard].index,
                    attempt: active[i].attempt,
                }))
            } else {
                active[i].handle.poll()
            };
            let Some(result) = polled else {
                i += 1;
                continue;
            };
            let finished = active.swap_remove(i);
            let s = finished.shard;
            let spec = &specs[s];
            match result.and_then(|out| {
                validate(spec, finished.attempt, &out)?;
                Ok(out)
            }) {
                Ok(out) => {
                    if matches!(states[s], SlotState::Done) {
                        // A late twin of an already-merged shard: every
                        // entry is a duplicate by construction.
                        stats.deduped += out.entries.len() as u64;
                        continue;
                    }
                    let entries = out.entries.len() as u64;
                    let quarantines = out.quarantined.len() as u64;
                    let fresh = merge(spec, out, &mut records, &mut quarantined, &mut stats);
                    states[s] = SlotState::Done;
                    done += 1;
                    // First complete wins: cancel any surviving twin.
                    for twin in active.iter_mut().filter(|a| a.shard == s) {
                        twin.handle.cancel();
                    }
                    active.retain(|a| a.shard != s);
                    if let Some(o) = obs {
                        o.point(
                            "shard",
                            "complete",
                            &[
                                ("shard", FieldValue::U64(s as u64)),
                                ("attempt", FieldValue::U64(u64::from(finished.attempt))),
                                ("entries", FieldValue::U64(entries)),
                                ("fresh", FieldValue::U64(fresh)),
                                ("quarantined", FieldValue::U64(quarantines)),
                            ],
                        );
                    }
                }
                Err(e) => {
                    if matches!(states[s], SlotState::Done) {
                        continue; // losing twin died after the winner merged
                    }
                    if active.iter().any(|a| a.shard == s) {
                        // A twin is still running; let it race rather
                        // than burning another attempt immediately.
                        continue;
                    }
                    schedule_retry(
                        s,
                        &e,
                        specs,
                        options,
                        &mut states,
                        &attempts,
                        &mut stats,
                        obs,
                    );
                    if matches!(states[s], SlotState::Done) {
                        // Degraded to coordinator-local execution.
                        let out = local(spec)?;
                        validate(spec, attempts[s], &out)?;
                        merge(spec, out, &mut records, &mut quarantined, &mut stats);
                        done += 1;
                    }
                }
            }
        }

        if done >= specs.len() {
            break;
        }

        // Speculative re-dispatch: a lone attempt whose heartbeat went
        // stale gets a fresh twin while it keeps running.
        if active.len() < slots {
            let stragglers: Vec<usize> = active
                .iter()
                .filter(|a| a.handle.heartbeat_age() > options.straggler_after)
                .map(|a| a.shard)
                .filter(|s| active.iter().filter(|a| a.shard == *s).count() == 1)
                .filter(|s| attempts[*s] <= options.retry_budget)
                .collect();
            for s in stragglers {
                if active.len() >= slots {
                    break;
                }
                let attempt = attempts[s];
                attempts[s] += 1;
                stats.dispatched += 1;
                stats.redispatched += 1;
                if let Some(o) = obs {
                    o.point(
                        "shard",
                        "redispatch",
                        &[
                            ("shard", FieldValue::U64(s as u64)),
                            ("attempt", FieldValue::U64(u64::from(attempt))),
                        ],
                    );
                }
                // Speculative twins never resume the straggler's
                // checkpoint: two writers on one file would race.
                if let Ok(handle) = executor.launch(&specs[s], attempt, false) {
                    active.push(Active {
                        shard: s,
                        attempt,
                        handle,
                        started: Instant::now(),
                    });
                }
            }
        }

        thread::sleep(options.poll);
    }

    stats.workers_surviving = slots.saturating_sub(stats.degraded);
    let errors: Vec<SweepError> = quarantined
        .iter()
        .filter(|(idx, _)| records[**idx].is_none())
        .map(|(idx, message)| SweepError {
            design_index: *idx,
            design: designs[*idx],
            engine: "worker",
            message: message.clone(),
        })
        .collect();
    if let Some(o) = obs {
        o.point(
            "shard",
            "merge",
            &[
                (
                    "records",
                    FieldValue::U64(records.iter().flatten().count() as u64),
                ),
                ("deduped", FieldValue::U64(stats.deduped)),
                ("quarantined", FieldValue::U64(errors.len() as u64)),
                (
                    "merge_us",
                    FieldValue::U64(
                        u64::try_from(stats.merge_time.as_micros()).unwrap_or(u64::MAX),
                    ),
                ),
            ],
        );
    }
    Ok(ShardedOutcome {
        records,
        errors,
        stats,
    })
}

/// Books a failed attempt: schedules the next try with exponential
/// backoff, or — budget exhausted — marks the shard `Done` so the
/// caller degrades it to coordinator-local execution.
#[allow(clippy::too_many_arguments)]
fn schedule_retry(
    s: usize,
    error: &ShardError,
    specs: &[ShardSpec],
    options: &CoordinatorOptions,
    states: &mut [SlotState],
    attempts: &[u32],
    stats: &mut MergeStats,
    obs: Option<&Obs>,
) {
    let next = attempts[s];
    if next > options.retry_budget {
        stats.degraded += 1;
        if let Some(o) = obs {
            o.point(
                "shard",
                "degrade",
                &[
                    ("shard", FieldValue::U64(s as u64)),
                    ("attempts", FieldValue::U64(u64::from(next))),
                    ("reason", FieldValue::Str(error.reason().to_string())),
                ],
            );
        }
        states[s] = SlotState::Done;
        return;
    }
    let delay = backoff_delay(options.backoff, options.seed ^ specs[s].sweep_id, s, next);
    stats.retried += 1;
    if let Some(o) = obs {
        o.point(
            "shard",
            "retry",
            &[
                ("shard", FieldValue::U64(s as u64)),
                ("attempt", FieldValue::U64(u64::from(next))),
                (
                    "delay_us",
                    FieldValue::U64(u64::try_from(delay.as_micros()).unwrap_or(u64::MAX)),
                ),
                ("reason", FieldValue::Str(error.reason().to_string())),
            ],
        );
    }
    states[s] = SlotState::Pending {
        not_before: Instant::now() + delay,
        resume: error.resumable(),
    };
}

/// Closure type executed by [`ThreadExecutor`] workers.
pub type ShardFn = dyn Fn(&ShardSpec) -> Result<ShardOutput, ShardError> + Send + Sync;

/// In-process executor: each attempt runs `run` on its own thread.
/// Used by `memx serve --distribute`, `bench_shard`, and the suite's
/// deterministic fault tests. Heartbeats are always fresh (an
/// in-process thread cannot silently wedge between polls) unless a
/// [`FaultPlan::stall_heartbeat`] fault forces staleness.
pub struct ThreadExecutor {
    run: Arc<ShardFn>,
    slots: usize,
    fault: FaultPlan,
}

impl ThreadExecutor {
    /// Executor with `slots` concurrent worker threads.
    pub fn new(slots: usize, run: Arc<ShardFn>) -> Self {
        Self {
            run,
            slots: slots.max(1),
            fault: FaultPlan::none(),
        }
    }

    /// Installs a deterministic fault plan (no-op without the
    /// `fault-injection` feature).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

struct ThreadHandle {
    rx: mpsc::Receiver<Result<ShardOutput, ShardError>>,
    started: Instant,
    stalled: bool,
    cancelled: bool,
    shard: usize,
    attempt: u32,
}

impl ShardHandle for ThreadHandle {
    fn poll(&mut self) -> Option<Result<ShardOutput, ShardError>> {
        if self.cancelled {
            return None;
        }
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ShardError::WorkerLost {
                shard: self.shard,
                attempt: self.attempt,
                message: "worker thread died without a result".into(),
            })),
        }
    }

    fn heartbeat_age(&self) -> Duration {
        if self.stalled {
            // The injected straggler: report a hopelessly stale
            // heartbeat so the coordinator's speculation must fire.
            self.started.elapsed() + Duration::from_secs(3600)
        } else {
            Duration::ZERO
        }
    }

    fn cancel(&mut self) {
        // Threads cannot be killed; detach and discard the result.
        self.cancelled = true;
    }
}

impl ShardExecutor for ThreadExecutor {
    fn launch(
        &self,
        spec: &ShardSpec,
        attempt: u32,
        _resume: bool,
    ) -> Result<Box<dyn ShardHandle>, ShardError> {
        let (tx, rx) = mpsc::channel();
        let run = Arc::clone(&self.run);
        let fault = self.fault.clone();
        let spec_owned = spec.clone();
        let stalled = fault.should_stall_heartbeat(spec.index, attempt);
        thread::spawn(move || {
            let spec = spec_owned;
            if fault.should_drop_worker(spec.index, attempt) {
                let _ = tx.send(Err(ShardError::WorkerLost {
                    shard: spec.index,
                    attempt,
                    message: "injected worker drop".into(),
                }));
                return;
            }
            if stalled {
                // Dawdle so the speculative twin launched against this
                // straggler deterministically wins the race.
                thread::sleep(Duration::from_millis(200));
            }
            let mut result = run(&spec);
            if fault.should_corrupt_stream(spec.index, attempt) {
                if let Ok(out) = &result {
                    // Round-trip through the real wire format with one
                    // payload byte flipped, so the typed checkpoint
                    // validation (not a synthetic error) rejects it.
                    let ckpt = Checkpoint {
                        sweep_id: out.sweep_id,
                        entries: out.entries.clone(),
                    };
                    let mut bytes = ckpt.to_bytes();
                    if let Some(last) = bytes.last_mut() {
                        *last ^= 0xFF;
                    }
                    let err: CheckpointError = Checkpoint::from_bytes(&bytes)
                        .expect_err("flipped payload byte must fail validation");
                    result = Err(ShardError::CorruptStream {
                        shard: spec.index,
                        attempt,
                        message: err.to_string(),
                    });
                }
            }
            let _ = tx.send(result);
        });
        Ok(Box::new(ThreadHandle {
            rx,
            started: Instant::now(),
            stalled,
            cancelled: false,
            shard: spec.index,
            attempt,
        }))
    }

    fn slots(&self) -> usize {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn design(i: usize) -> CacheDesign {
        CacheDesign::new(64 << (i % 4), 4 << (i % 3), 1 + i % 2, 1 + (i as u64 % 8))
    }

    fn record(designs: &[CacheDesign], global: usize) -> Record {
        Record {
            design: designs[global],
            miss_rate: global as f64 * 0.25 + 0.125,
            cycles: 1000.0 + global as f64,
            energy_nj: 42.5 * (global as f64 + 1.0),
            trip_count: 31 * (global as u64 + 1),
            conflict_free: global.is_multiple_of(2),
        }
    }

    fn grid(n: usize) -> Vec<CacheDesign> {
        (0..n).map(design).collect()
    }

    /// A well-behaved worker closure over the synthetic grid.
    fn worker(designs: Vec<CacheDesign>) -> Arc<ShardFn> {
        Arc::new(move |spec: &ShardSpec| {
            Ok(ShardOutput {
                sweep_id: spec.sweep_id,
                entries: (0..spec.len())
                    .map(|l| (l, record(&designs, spec.start + l)))
                    .collect(),
                quarantined: Vec::new(),
            })
        })
    }

    fn fast_options() -> CoordinatorOptions {
        CoordinatorOptions {
            backoff: Duration::from_millis(1),
            poll: Duration::from_micros(200),
            ..CoordinatorOptions::default()
        }
    }

    fn fail_local(spec: &ShardSpec) -> Result<ShardOutput, ShardError> {
        panic!("local fallback must not run for shard {}", spec.index)
    }

    #[test]
    fn partition_covers_the_grid_contiguously() {
        for total in [0usize, 1, 7, 95, 425, 1000] {
            for shards in [1usize, 2, 3, 8, 97] {
                let specs = partition(total, shards);
                assert!(specs.len() <= shards.max(1));
                let mut next = 0;
                for (i, s) in specs.iter().enumerate() {
                    assert_eq!(s.index, i);
                    assert_eq!(s.start, next);
                    assert!(!s.is_empty());
                    next = s.end;
                }
                assert_eq!(next, total);
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    specs.iter().map(ShardSpec::len).max(),
                    specs.iter().map(ShardSpec::len).min(),
                ) {
                    assert!(max - min <= 1, "total {total} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let base = Duration::from_millis(100);
        for shard in 0..8 {
            for attempt in 1..6u32 {
                let a = backoff_delay(base, 7, shard, attempt);
                let b = backoff_delay(base, 7, shard, attempt);
                assert_eq!(a, b, "deterministic");
                let floor = base * (1 << (attempt - 1));
                assert!(a >= floor, "attempt {attempt}: {a:?} < {floor:?}");
                assert!(a <= floor + base / 2 + Duration::from_micros(1));
            }
        }
        // Jitter decorrelates shards: not every shard shares a delay.
        let delays: Vec<Duration> = (0..16).map(|s| backoff_delay(base, 7, s, 1)).collect();
        assert!(delays.iter().any(|d| *d != delays[0]));
        // The exponent caps instead of overflowing.
        let capped = backoff_delay(base, 7, 0, 60);
        assert!(capped >= base * 64 && capped < base * 65);
    }

    #[test]
    fn sharded_run_merges_bit_identically() {
        let designs = grid(95);
        let expected: Vec<Record> = (0..designs.len()).map(|i| record(&designs, i)).collect();
        for shards in [1usize, 2, 3, 7] {
            let executor = ThreadExecutor::new(4, worker(designs.clone()));
            let specs = partition(designs.len(), shards);
            let outcome = run_sharded(
                &executor,
                &specs,
                &designs,
                &fail_local,
                &fast_options(),
                None,
            )
            .expect("sweep completes");
            assert!(outcome.is_complete());
            assert!(outcome.errors.is_empty());
            assert_eq!(outcome.stats.dispatched, specs.len());
            assert_eq!(outcome.stats.retried, 0);
            assert_eq!(outcome.stats.workers_surviving, 4);
            let merged = outcome.completed_records();
            assert_eq!(merged.len(), expected.len());
            for (m, e) in merged.iter().zip(&expected) {
                assert_eq!(m.design, e.design);
                assert_eq!(m.miss_rate.to_bits(), e.miss_rate.to_bits());
                assert_eq!(m.cycles.to_bits(), e.cycles.to_bits());
                assert_eq!(m.energy_nj.to_bits(), e.energy_nj.to_bits());
                assert_eq!(m.trip_count, e.trip_count);
                assert_eq!(m.conflict_free, e.conflict_free);
            }
        }
    }

    #[test]
    fn quarantines_propagate_to_the_merged_outcome() {
        let designs = grid(20);
        let victim = 13usize;
        let d = designs.clone();
        let run: Arc<ShardFn> = Arc::new(move |spec: &ShardSpec| {
            let mut out = ShardOutput {
                sweep_id: spec.sweep_id,
                ..ShardOutput::default()
            };
            for l in 0..spec.len() {
                let g = spec.start + l;
                if g == victim {
                    out.quarantined.push((l, "injected fault: design".into()));
                } else {
                    out.entries.push((l, record(&d, g)));
                }
            }
            Ok(out)
        });
        let executor = ThreadExecutor::new(2, run);
        let specs = partition(designs.len(), 4);
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("sweep completes");
        assert!(!outcome.is_complete());
        assert!(outcome.records[victim].is_none());
        assert_eq!(outcome.errors.len(), 1);
        let e = &outcome.errors[0];
        assert_eq!(e.design_index, victim);
        assert_eq!(e.design, designs[victim]);
        assert_eq!(e.engine, "worker");
        assert!(e.message.contains("injected"));
    }

    /// Scripted executor for failure-path tests: `script(shard, attempt)`
    /// decides what each attempt does.
    enum Behavior {
        Ok,
        Fail(&'static str),
        /// Never completes and reports a stale heartbeat.
        Hang,
    }

    struct MockExecutor {
        designs: Vec<CacheDesign>,
        script: Box<dyn Fn(usize, u32) -> Behavior>,
        slots: usize,
        launches: RefCell<Vec<(usize, u32, bool)>>,
    }

    struct MockHandle {
        result: Option<Result<ShardOutput, ShardError>>,
        hang: bool,
    }

    impl ShardHandle for MockHandle {
        fn poll(&mut self) -> Option<Result<ShardOutput, ShardError>> {
            if self.hang {
                None
            } else {
                self.result.take()
            }
        }
        fn heartbeat_age(&self) -> Duration {
            if self.hang {
                Duration::from_secs(3600)
            } else {
                Duration::ZERO
            }
        }
        fn cancel(&mut self) {}
    }

    impl ShardExecutor for MockExecutor {
        fn launch(
            &self,
            spec: &ShardSpec,
            attempt: u32,
            resume: bool,
        ) -> Result<Box<dyn ShardHandle>, ShardError> {
            self.launches
                .borrow_mut()
                .push((spec.index, attempt, resume));
            let behavior = (self.script)(spec.index, attempt);
            Ok(Box::new(match behavior {
                Behavior::Ok => MockHandle {
                    result: Some(Ok(ShardOutput {
                        sweep_id: spec.sweep_id,
                        entries: (0..spec.len())
                            .map(|l| (l, record(&self.designs, spec.start + l)))
                            .collect(),
                        quarantined: Vec::new(),
                    })),
                    hang: false,
                },
                Behavior::Fail(msg) => MockHandle {
                    result: Some(Err(ShardError::WorkerLost {
                        shard: spec.index,
                        attempt,
                        message: msg.into(),
                    })),
                    hang: false,
                },
                Behavior::Hang => MockHandle {
                    result: None,
                    hang: true,
                },
            }))
        }
        fn slots(&self) -> usize {
            self.slots
        }
    }

    #[test]
    fn failed_attempts_retry_with_backoff_and_resume() {
        let designs = grid(12);
        let executor = MockExecutor {
            designs: designs.clone(),
            script: Box::new(|shard, attempt| {
                if shard == 1 && attempt < 2 {
                    Behavior::Fail("killed")
                } else {
                    Behavior::Ok
                }
            }),
            slots: 2,
            launches: RefCell::new(Vec::new()),
        };
        let specs = partition(designs.len(), 3);
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("sweep completes");
        assert!(outcome.is_complete());
        assert_eq!(outcome.stats.retried, 2);
        assert_eq!(outcome.stats.dispatched, 5);
        assert_eq!(outcome.stats.degraded, 0);
        assert_eq!(outcome.stats.workers_surviving, 2);
        // Crash retries ask to resume the shard checkpoint.
        let launches = executor.launches.borrow();
        assert!(launches.contains(&(1, 1, true)));
        assert!(launches.contains(&(1, 2, true)));
    }

    #[test]
    fn exhausted_budget_degrades_to_local_execution() {
        let designs = grid(10);
        let executor = MockExecutor {
            designs: designs.clone(),
            script: Box::new(|shard, _| {
                if shard == 0 {
                    Behavior::Fail("dead slot")
                } else {
                    Behavior::Ok
                }
            }),
            slots: 2,
            launches: RefCell::new(Vec::new()),
        };
        let specs = partition(designs.len(), 2);
        let d = designs.clone();
        let local = move |spec: &ShardSpec| {
            Ok(ShardOutput {
                sweep_id: spec.sweep_id,
                entries: (0..spec.len())
                    .map(|l| (l, record(&d, spec.start + l)))
                    .collect(),
                quarantined: Vec::new(),
            })
        };
        let options = CoordinatorOptions {
            retry_budget: 2,
            ..fast_options()
        };
        let outcome =
            run_sharded(&executor, &specs, &designs, &local, &options, None).expect("completes");
        assert!(outcome.is_complete());
        assert_eq!(outcome.stats.degraded, 1);
        assert_eq!(outcome.stats.workers_surviving, 1);
        // initial + 2 retries for shard 0, then local; shard 1 once.
        assert_eq!(outcome.stats.dispatched, 4);
        assert_eq!(outcome.stats.retried, 2);
    }

    #[test]
    fn stragglers_are_speculatively_redispatched() {
        let designs = grid(8);
        let executor = MockExecutor {
            designs: designs.clone(),
            script: Box::new(|shard, attempt| {
                if shard == 0 && attempt == 0 {
                    Behavior::Hang
                } else {
                    Behavior::Ok
                }
            }),
            slots: 3,
            launches: RefCell::new(Vec::new()),
        };
        let specs = partition(designs.len(), 2);
        let options = CoordinatorOptions {
            straggler_after: Duration::from_millis(1),
            ..fast_options()
        };
        let outcome = run_sharded(&executor, &specs, &designs, &fail_local, &options, None)
            .expect("completes");
        assert!(outcome.is_complete());
        assert_eq!(outcome.stats.redispatched, 1);
        assert_eq!(outcome.stats.retried, 0);
        // Speculative twins never resume the straggler's checkpoint.
        assert!(executor.launches.borrow().contains(&(0, 1, false)));
    }

    #[test]
    fn sweep_id_mismatch_is_rejected_as_corrupt_and_retried_fresh() {
        let designs = grid(6);
        let d = designs.clone();
        let run: Arc<ShardFn> = Arc::new(move |spec: &ShardSpec| {
            Ok(ShardOutput {
                // Wrong id on the first shard only.
                sweep_id: if spec.index == 0 && spec.sweep_id != 0 {
                    spec.sweep_id ^ 0xDEAD
                } else {
                    spec.sweep_id
                },
                entries: (0..spec.len())
                    .map(|l| (l, record(&d, spec.start + l)))
                    .collect(),
                quarantined: Vec::new(),
            })
        });
        let executor = ThreadExecutor::new(2, run);
        let mut specs = partition(designs.len(), 2);
        specs[0].sweep_id = 0x1111;
        // Shard 0 always returns a bad id, so it degrades to local.
        let d2 = designs.clone();
        let local = move |spec: &ShardSpec| {
            Ok(ShardOutput {
                sweep_id: spec.sweep_id,
                entries: (0..spec.len())
                    .map(|l| (l, record(&d2, spec.start + l)))
                    .collect(),
                quarantined: Vec::new(),
            })
        };
        let options = CoordinatorOptions {
            retry_budget: 1,
            ..fast_options()
        };
        let outcome =
            run_sharded(&executor, &specs, &designs, &local, &options, None).expect("completes");
        assert!(outcome.is_complete());
        assert!(outcome.stats.retried >= 1);
        assert_eq!(outcome.stats.degraded, 1);
    }

    #[test]
    fn duplicate_results_are_deduped_first_complete_wins() {
        // A worker redundantly re-reports every entry, as a resumed
        // attempt re-flushing its full checkpoint does; the merge must
        // keep the first copy and count the rest as deduped.
        let designs = grid(5);
        let specs = partition(designs.len(), 1);
        let d = designs.clone();
        let run: Arc<ShardFn> = Arc::new(move |spec: &ShardSpec| {
            Ok(ShardOutput {
                sweep_id: spec.sweep_id,
                entries: (0..spec.len())
                    .map(|l| (l, record(&d, spec.start + l)))
                    // The worker redundantly re-reports every entry, as a
                    // resumed attempt re-flushing its full checkpoint does.
                    .chain((0..spec.len()).map(|l| (l, record(&d, spec.start + l))))
                    .collect(),
                quarantined: Vec::new(),
            })
        });
        let executor = ThreadExecutor::new(1, run);
        let outcome = run_sharded(
            &executor,
            &specs,
            &designs,
            &fail_local,
            &fast_options(),
            None,
        )
        .expect("completes");
        assert!(outcome.is_complete());
        assert_eq!(outcome.stats.deduped, designs.len() as u64);
    }

    #[test]
    fn merge_stats_fill_telemetry() {
        let stats = MergeStats {
            dispatched: 9,
            retried: 2,
            redispatched: 1,
            deduped: 7,
            degraded: 1,
            workers_surviving: 3,
            merge_time: Duration::from_millis(1),
        };
        let mut t = SweepTelemetry::default();
        stats.fill(&mut t);
        assert_eq!(t.shards_dispatched, 9);
        assert_eq!(t.shards_retried, 2);
        assert_eq!(t.shards_redispatched, 1);
        assert_eq!(t.shard_entries_deduped, 7);
        assert_eq!(t.workers_surviving, 3);
    }

    #[cfg(feature = "fault-injection")]
    mod faulted {
        use super::*;

        #[test]
        fn dropped_worker_is_retried_and_merges_identically() {
            let designs = grid(30);
            let expected: Vec<Record> = (0..designs.len()).map(|i| record(&designs, i)).collect();
            let executor = ThreadExecutor::new(2, worker(designs.clone())).with_fault(FaultPlan {
                drop_worker: Some((1, 0)),
                ..FaultPlan::none()
            });
            let specs = partition(designs.len(), 3);
            let outcome = run_sharded(
                &executor,
                &specs,
                &designs,
                &fail_local,
                &fast_options(),
                None,
            )
            .expect("completes");
            assert!(outcome.is_complete());
            assert_eq!(outcome.stats.retried, 1);
            let merged = outcome.completed_records();
            for (m, e) in merged.iter().zip(&expected) {
                assert_eq!(m.miss_rate.to_bits(), e.miss_rate.to_bits());
            }
        }

        #[test]
        fn corrupt_stream_is_typed_and_redispatched_fresh() {
            let designs = grid(16);
            let executor = ThreadExecutor::new(2, worker(designs.clone())).with_fault(FaultPlan {
                corrupt_stream: Some((0, 0)),
                ..FaultPlan::none()
            });
            let specs = partition(designs.len(), 2);
            let outcome = run_sharded(
                &executor,
                &specs,
                &designs,
                &fail_local,
                &fast_options(),
                None,
            )
            .expect("completes");
            assert!(outcome.is_complete());
            assert_eq!(outcome.stats.retried, 1);
        }

        #[test]
        fn stalled_heartbeat_triggers_speculation_and_the_twin_wins() {
            let designs = grid(16);
            let executor = ThreadExecutor::new(3, worker(designs.clone())).with_fault(FaultPlan {
                stall_heartbeat: Some((0, 0)),
                ..FaultPlan::none()
            });
            let specs = partition(designs.len(), 2);
            let options = CoordinatorOptions {
                straggler_after: Duration::from_millis(5),
                ..fast_options()
            };
            let outcome = run_sharded(&executor, &specs, &designs, &fail_local, &options, None)
                .expect("completes");
            assert!(outcome.is_complete());
            assert_eq!(outcome.stats.redispatched, 1);
        }
    }
}
